//! Cross-crate integration tests: full protocol rounds over both media,
//! sessions, and the evaluation pipeline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thinair::netsim::{IidMedium, Medium, TracedMedium};
use thinair::protocol::round::{run_group_round, Construction, RoundConfig, XSchedule};
use thinair::protocol::unicast::run_unicast_round;
use thinair::protocol::{Estimator, Session, Tuning};
use thinair::testbed::experiment::{build_medium, pick_coordinator, TestbedConfig};
use thinair::testbed::{run_experiment, Placement};

fn oracle_cfg(n_packets: usize) -> RoundConfig {
    RoundConfig {
        schedule: XSchedule::CoordinatorOnly(n_packets),
        payload_len: 32,
        estimator: Estimator::Oracle { eve_known: Default::default() },
        ..RoundConfig::default()
    }
}

#[test]
fn group_round_over_iid_medium_is_correct_and_secret() {
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(seed);
        let medium = IidMedium::symmetric(5, 0.45, seed * 7 + 1);
        let out = run_group_round(medium, 4, 0, &oracle_cfg(50), &mut rng).unwrap();
        if out.l == 0 {
            continue;
        }
        assert!(out.all_terminals_agree(), "seed {seed}");
        assert_eq!(out.secret().len(), out.l);
        assert_eq!(out.reliability(), 1.0, "oracle estimator must be airtight");
        assert!(out.efficiency() > 0.0 && out.efficiency() < 1.0);
    }
}

#[test]
fn group_round_over_geometric_testbed() {
    let placement = Placement { terminal_cells: vec![0, 2, 4, 6, 8], eve_cell: 1 };
    let cfg = TestbedConfig { seed: 5, ..TestbedConfig::default() };
    let result = run_experiment(&cfg, &placement).unwrap();
    assert!((0.0..=1.0).contains(&result.reliability));
    assert!(result.total_bits > 0);
}

#[test]
fn every_terminal_can_coordinate() {
    let cfg = oracle_cfg(40);
    for coordinator in 0..4 {
        let mut rng = StdRng::seed_from_u64(coordinator as u64);
        let medium = IidMedium::symmetric(5, 0.5, 99);
        let out = run_group_round(medium, 4, coordinator, &cfg, &mut rng).unwrap();
        if out.l > 0 {
            assert!(out.all_terminals_agree(), "coordinator {coordinator}");
        }
    }
}

#[test]
fn session_accumulates_and_derives_keys() {
    let cfg = oracle_cfg(40);
    let mut session = Session::new(3, cfg, IidMedium::symmetric(4, 0.5, 3), 1);
    let rounds = session.run_rotation().unwrap();
    assert_eq!(rounds.len(), 3);
    assert!(session.pool_len() > 0, "three rounds at p=0.5 must yield material");
    let k1 = session.derive_key("k1").unwrap();
    let k2 = session.derive_key("k2").unwrap();
    assert_ne!(k1, k2);
    assert!(session.efficiency() > 0.0);
}

#[test]
fn unicast_and_group_agree_on_correctness_but_not_cost() {
    let cfg = oracle_cfg(60);
    let mut rng = StdRng::seed_from_u64(11);
    let group = run_group_round(IidMedium::symmetric(7, 0.5, 42), 6, 0, &cfg, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let unicast =
        run_unicast_round(IidMedium::symmetric(7, 0.5, 42), 6, 0, &cfg, &mut rng).unwrap();
    assert!(group.l > 0 && unicast.l > 0);
    assert!(group.all_terminals_agree());
    assert!(unicast.all_terminals_agree());
    assert_eq!(group.reliability(), 1.0);
    assert_eq!(unicast.reliability(), 1.0);
    // The whole point of phase 2: group beats unicast at n = 6.
    assert!(group.efficiency() > unicast.efficiency());
}

#[test]
fn naive_construction_leaks_against_tight_eve_while_aligned_does_not() {
    // Deterministic comparison over several seeds: aligned with oracle is
    // always perfectly secret; naive blocks leak in at least one seed.
    let mut naive_leaked = false;
    for seed in 0..10 {
        let cfg_a = RoundConfig { construction: Construction::Aligned, ..oracle_cfg(40) };
        let cfg_n = RoundConfig { construction: Construction::NaiveBlocks, ..oracle_cfg(40) };
        let mut rng = StdRng::seed_from_u64(seed);
        let a =
            run_group_round(IidMedium::symmetric(5, 0.6, seed), 4, 0, &cfg_a, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let n =
            run_group_round(IidMedium::symmetric(5, 0.6, seed), 4, 0, &cfg_n, &mut rng).unwrap();
        if a.l > 0 {
            assert_eq!(a.reliability(), 1.0, "aligned leaked at seed {seed}");
        }
        if n.l > 0 && n.reliability() < 1.0 {
            naive_leaked = true;
        }
    }
    assert!(naive_leaked, "naive blocks should leak somewhere in 10 seeds");
}

#[test]
fn traced_medium_observes_protocol_traffic() {
    let inner = IidMedium::symmetric(4, 0.3, 8);
    let mut traced = TracedMedium::new(inner, 4096);
    let mut rng = StdRng::seed_from_u64(2);
    let out = run_group_round(&mut traced, 3, 0, &oracle_cfg(30), &mut rng).unwrap();
    // All x-packets plus reports / plan / z traffic are recorded.
    assert!(traced.recorded >= 30 + 3);
    assert!(traced.events().any(|e| e.tx == 0));
    // Reports come from every terminal.
    assert!(traced.events().any(|e| e.tx == 1));
    assert!(traced.events().any(|e| e.tx == 2));
    let _ = out;
}

#[test]
fn deterministic_experiments_reproduce_bit_for_bit() {
    let placement = Placement { terminal_cells: vec![1, 3, 5, 7], eve_cell: 4 };
    let cfg = TestbedConfig { seed: 1234, ..TestbedConfig::default() };
    let a = run_experiment(&cfg, &placement).unwrap();
    let b = run_experiment(&cfg, &placement).unwrap();
    assert_eq!(a, b);
    // And the medium construction itself is deterministic.
    let m1 = build_medium(&cfg, &placement);
    let m2 = build_medium(&cfg, &placement);
    assert_eq!(m1.node_count(), m2.node_count());
}

#[test]
fn coordinator_choice_is_central() {
    // In a corner-heavy placement the central terminal must coordinate.
    let placement = Placement { terminal_cells: vec![0, 2, 4, 6, 8], eve_cell: 1 };
    let coord = pick_coordinator(&placement);
    assert_eq!(placement.terminal_cells[coord], 4, "centre cell wins");
}

#[test]
fn leave_one_out_round_end_to_end_with_rotation_schedule() {
    // The §3.2 mitigation: every terminal transmits x-packets.
    let cfg = RoundConfig {
        schedule: XSchedule::Uniform(12),
        payload_len: 16,
        estimator: Estimator::LeaveOneOut(Tuning { scale: 0.75, slack: 0 }),
        ..RoundConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(6);
    let out = run_group_round(IidMedium::symmetric(6, 0.45, 77), 5, 2, &cfg, &mut rng).unwrap();
    assert_eq!(out.pool.n_packets, 60);
    // Packets come from every owner.
    for t in 0..5 {
        assert!(out.pool.owner.contains(&t), "terminal {t} never transmitted");
    }
    if out.l > 0 {
        assert!(out.all_terminals_agree());
        assert!((0.0..=1.0).contains(&out.reliability()));
    }
}

#[test]
fn zero_capability_eve_means_perfect_reliability() {
    // Eve's antenna is unreachable (erasure 1.0 on her links): with the
    // oracle estimator the budget equals the shared sets and r = 1.
    let n = 4;
    let mut matrix = vec![vec![0.35; n + 1]; n + 1];
    for row in matrix.iter_mut() {
        row[n] = 1.0; // nobody reaches Eve
    }
    let medium = IidMedium::from_matrix(matrix, 21);
    let mut rng = StdRng::seed_from_u64(3);
    let out = run_group_round(medium, n, 0, &oracle_cfg(40), &mut rng).unwrap();
    assert!(out.l > 0);
    assert_eq!(out.eve.received().len(), 0);
    assert_eq!(out.reliability(), 1.0);
}

#[test]
fn omniscient_eve_means_no_secret() {
    let n = 3;
    let mut matrix = vec![vec![0.4; n + 1]; n + 1];
    for row in matrix.iter_mut() {
        row[n] = 0.0; // Eve hears everything
    }
    let medium = IidMedium::from_matrix(matrix, 5);
    let mut rng = StdRng::seed_from_u64(4);
    let out = run_group_round(medium, n, 0, &oracle_cfg(30), &mut rng).unwrap();
    assert_eq!(out.l, 0, "no secret can exist against an omniscient Eve");
    assert_eq!(out.reliability(), 1.0, "empty secrets leak nothing");
}
