//! Property-based tests of the protocol's core invariants, end to end.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use thinair::gf::{rank_increase, Gf256, Matrix};
use thinair::netsim::IidMedium;
use thinair::protocol::construct::{build_plan, PlanParams};
use thinair::protocol::round::{run_group_round, RoundConfig, XSchedule};
use thinair::protocol::{Estimator, Tuning};

fn eve_knowledge(plan: &thinair::protocol::Plan, eve: &BTreeSet<usize>) -> Matrix {
    let mut k = Matrix::zero(0, plan.n_packets);
    for &j in eve {
        let mut row = vec![Gf256::ZERO; plan.n_packets];
        row[j] = Gf256::ONE;
        k.push_row(&row);
    }
    k.vstack(&plan.z_rows_x())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant: with ground-truth knowledge of Eve's
    /// receptions, the constructed secret is *always* perfectly secret —
    /// whatever the reception patterns.
    #[test]
    fn oracle_plans_never_leak(
        seed in any::<u64>(),
        n_terminals in 2usize..6,
        n_packets in 8usize..40,
        density in 0.3f64..0.9,
        eve_density in 0.1f64..0.9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut known: Vec<BTreeSet<usize>> = Vec::new();
        known.push((0..n_packets).collect()); // coordinator knows all
        for _ in 1..n_terminals {
            known.push((0..n_packets).filter(|_| rng.gen_bool(density)).collect());
        }
        let eve: BTreeSet<usize> =
            (0..n_packets).filter(|_| rng.gen_bool(eve_density)).collect();
        let est = Estimator::Oracle { eve_known: eve.clone() };
        let plan = build_plan(&known, 0, n_packets, &est, &mut rng, PlanParams::exact())
            .unwrap();
        if plan.l > 0 {
            let dims = rank_increase(&eve_knowledge(&plan, &eve), &plan.secret_rows_x());
            prop_assert_eq!(dims, plan.l, "oracle plan leaked");
        }
    }

    /// Agreement: every terminal always derives the identical secret,
    /// under any medium conditions the round survives.
    #[test]
    fn all_terminals_always_agree(
        seed in any::<u64>(),
        n_terminals in 2usize..6,
        p in 0.05f64..0.8,
    ) {
        let cfg = RoundConfig {
            schedule: XSchedule::CoordinatorOnly(30),
            payload_len: 12,
            estimator: Estimator::Oracle { eve_known: Default::default() },
            ..RoundConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let medium = IidMedium::symmetric(n_terminals + 1, p, seed ^ 0xA5A5);
        let out = run_group_round(medium, n_terminals, 0, &cfg, &mut rng).unwrap();
        prop_assert!(out.all_terminals_agree());
        // Reliability is a probability-like quantity.
        let r = out.reliability();
        prop_assert!((0.0..=1.0).contains(&r));
        // Secret bits and efficiency are consistent.
        prop_assert_eq!(out.secret_bits(), (out.l * 12 * 8) as u64);
        if out.l > 0 {
            prop_assert!(out.efficiency() > 0.0);
        }
    }

    /// The leave-one-out estimator may err, but the *measured* secrecy
    /// must never exceed L (sanity of the accounting itself), and the
    /// plan must respect every terminal's decodability.
    #[test]
    fn accounting_and_decodability_are_consistent(
        seed in any::<u64>(),
        n_terminals in 3usize..6,
        p in 0.2f64..0.7,
    ) {
        let cfg = RoundConfig {
            schedule: XSchedule::Uniform(10),
            payload_len: 8,
            estimator: Estimator::LeaveOneOut(Tuning::default()),
            ..RoundConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let medium = IidMedium::symmetric(n_terminals + 1, p, seed ^ 0x3C3C);
        let out = run_group_round(medium, n_terminals, 0, &cfg, &mut rng).unwrap();
        let plan = &out.plan;
        prop_assert!(plan.l <= plan.m());
        for t in 0..n_terminals {
            for &r in &plan.decodable[t] {
                // A decodable row's support lies inside the terminal's
                // known set.
                for j in &plan.rows[r].support {
                    prop_assert!(
                        t == plan.coordinator || out.pool.known[t].contains(j),
                        "row {r} not actually decodable by terminal {t}"
                    );
                }
            }
        }
        let dims = out.eve.secret_dims(&out.secret_rows_x());
        prop_assert!(dims <= plan.l);
    }

    /// Rows never exceed the x-pool dimension and all supports are valid
    /// packet indices.
    #[test]
    fn plan_shape_invariants(
        seed in any::<u64>(),
        n_packets in 6usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let known: Vec<BTreeSet<usize>> = vec![
            (0..n_packets).collect(),
            (0..n_packets).filter(|_| rng.gen_bool(0.6)).collect(),
            (0..n_packets).filter(|_| rng.gen_bool(0.6)).collect(),
        ];
        let est = Estimator::Oracle {
            eve_known: (0..n_packets).filter(|_| rng.gen_bool(0.4)).collect(),
        };
        let plan = build_plan(&known, 0, n_packets, &est, &mut rng, PlanParams::exact())
            .unwrap();
        prop_assert!(plan.m() <= n_packets, "more rows than pool dimensions");
        prop_assert_eq!(plan.w.rows(), plan.m());
        prop_assert_eq!(plan.w.cols(), n_packets);
        if plan.m() > 0 {
            prop_assert_eq!(plan.w.rank(), plan.m(), "y-rows must be independent");
        }
        for row in &plan.rows {
            prop_assert!(row.support.iter().all(|&j| j < n_packets));
            prop_assert_eq!(row.support.len(), row.coeffs.len());
            prop_assert!(row.support.windows(2).all(|w| w[0] < w[1]), "support sorted");
        }
        prop_assert_eq!(plan.c_mat.rows() + plan.d_mat.rows(), plan.m());
    }
}
