//! The jamming-aware estimator: position-based candidate Eves.
//!
//! §3.3's first idea is to "artificially create channel conditions that
//! are favorable to our protocol": the terminals *operate* the
//! interferers, so they know the rotation schedule and can reason about
//! every position the adversary could occupy. Combined with the paper's
//! minimum-distance rule ("require from each of them to stand at least
//! some minimum distance away from any other wireless node" — i.e. Eve
//! sits in some unoccupied cell), this yields a candidate reception set
//! per free cell: an eavesdropper there can at most have received the
//! packets transmitted while her cell was not inside an active beam.
//!
//! This estimator is sound against any single-antenna Eve obeying the
//! distance rule *up to jamming leakage*: packets that survive the
//! jammer (deep-fade coincidences, or a receiver whose within-cell
//! position partially escapes a beam). The conservatism `scale` must
//! absorb that leakage — in the calibrated testbed, `scale = 0.65`
//! drives the measured minimum reliability to 1.0 at every `n`, where
//! the report-driven leave-one-out estimator dips to ~0.5 in the worst
//! placements. The price is a smaller secret per round; the
//! `ablation_estimators` bench quantifies the trade.

use std::collections::BTreeSet;

use thinair_core::estimate::{Estimator, Tuning};

use crate::grid::{cell_col, cell_row, NUM_CELLS};
use crate::placement::Placement;

/// Which pattern (0..9, row-major `(r, c)` pairs) was active when packet
/// `id` was transmitted, given the per-pattern packet budget.
pub fn pattern_of_packet(id: usize, packets_per_pattern: u64) -> usize {
    ((id as u64 / packets_per_pattern.max(1)) % 9) as usize
}

/// Whether pattern `k` jams cell `cell` (the cell's row or column is the
/// active one).
pub fn pattern_jams_cell(k: usize, cell: usize) -> bool {
    let (r, c) = (k / 3, k % 3);
    cell_row(cell) == r || cell_col(cell) == c
}

/// Builds the candidate reception set for an Eve in `cell`: every packet
/// transmitted while her cell was *not* jammed (conservatively assuming
/// she received all of those).
pub fn candidate_for_cell(
    cell: usize,
    n_packets: usize,
    packets_per_pattern: u64,
) -> BTreeSet<usize> {
    (0..n_packets)
        .filter(|&id| !pattern_jams_cell(pattern_of_packet(id, packets_per_pattern), cell))
        .collect()
}

/// The jamming-aware estimator for a placement: one candidate per free
/// cell (Eve cannot share a cell with a terminal).
pub fn jamming_aware_estimator(
    placement: &Placement,
    n_packets: usize,
    packets_per_pattern: u64,
    tuning: Tuning,
) -> Estimator {
    let candidates: Vec<BTreeSet<usize>> = (0..NUM_CELLS)
        .filter(|c| !placement.terminal_cells.contains(c))
        .map(|c| candidate_for_cell(c, n_packets, packets_per_pattern))
        .collect();
    Estimator::Custom { label: "jamming-aware".into(), candidates, tuning }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_arithmetic() {
        assert_eq!(pattern_of_packet(0, 10), 0);
        assert_eq!(pattern_of_packet(9, 10), 0);
        assert_eq!(pattern_of_packet(10, 10), 1);
        assert_eq!(pattern_of_packet(89, 10), 8);
        assert_eq!(pattern_of_packet(90, 10), 0); // wraps
    }

    #[test]
    fn every_cell_is_jammed_in_exactly_five_patterns() {
        for cell in 0..NUM_CELLS {
            let jammed = (0..9).filter(|&k| pattern_jams_cell(k, cell)).count();
            assert_eq!(jammed, 5, "cell {cell}");
        }
    }

    #[test]
    fn candidate_set_contains_only_clear_pattern_packets() {
        let ppp = 4;
        let n_packets = 36; // exactly one rotation
        let cand = candidate_for_cell(4, n_packets, ppp); // centre: row 1, col 1
                                                          // Clear patterns for the centre: (r, c) with r != 1 and c != 1:
                                                          // (0,0), (0,2), (2,0), (2,2) = patterns 0, 2, 6, 8.
        let expect: BTreeSet<usize> =
            (0..n_packets).filter(|&id| [0usize, 2, 6, 8].contains(&(id / ppp as usize))).collect();
        assert_eq!(cand, expect);
        assert_eq!(cand.len(), 16); // 4 patterns x 4 packets
    }

    #[test]
    fn estimator_has_one_candidate_per_free_cell() {
        let p = Placement { terminal_cells: vec![0, 1, 2, 3, 5, 6, 7, 8], eve_cell: 4 };
        let est = jamming_aware_estimator(&p, 36, 4, Tuning::default());
        match &est {
            Estimator::Custom { candidates, .. } => assert_eq!(candidates.len(), 1),
            _ => panic!("wrong estimator kind"),
        }
        let p3 = Placement { terminal_cells: vec![0, 4, 8], eve_cell: 2 };
        let est = jamming_aware_estimator(&p3, 36, 4, Tuning::default());
        match &est {
            Estimator::Custom { candidates, .. } => assert_eq!(candidates.len(), 6),
            _ => panic!("wrong estimator kind"),
        }
    }

    #[test]
    fn budget_respects_position_worst_case() {
        // Shared set entirely inside one candidate's clear window -> that
        // candidate drives the budget to 0.
        let ppp = 4u64;
        let cand_center = candidate_for_cell(4, 36, ppp);
        let est = Estimator::Custom {
            label: "t".into(),
            candidates: vec![cand_center.clone()],
            tuning: Tuning::default(),
        };
        let shared: BTreeSet<usize> = cand_center.iter().copied().take(8).collect();
        assert_eq!(est.pair_budget(&shared, &[], 0, 1), 0);
    }
}
