//! The 14 m² arena and its 3×3 logical cells.

use thinair_netsim::Point;

/// Side of the square arena in metres (`√14` — "a square area of 14 m²").
pub const SIDE_M: f64 = 3.7416573867739413;

/// Cells per side of the logical grid.
pub const CELLS_PER_SIDE: usize = 3;

/// Total logical cells.
pub const NUM_CELLS: usize = CELLS_PER_SIDE * CELLS_PER_SIDE;

/// Side of one logical cell in metres.
pub const CELL_SIDE_M: f64 = SIDE_M / CELLS_PER_SIDE as f64;

/// Diagonal of one logical cell — the paper's minimum node separation
/// ("this minimum distance is 1.75 m (the diagonal of a logical cell)").
pub fn cell_diagonal_m() -> f64 {
    CELL_SIDE_M * std::f64::consts::SQRT_2
}

/// Row (0 = bottom) of a cell index (row-major).
pub const fn cell_row(cell: usize) -> usize {
    cell / CELLS_PER_SIDE
}

/// Column (0 = left) of a cell index.
pub const fn cell_col(cell: usize) -> usize {
    cell % CELLS_PER_SIDE
}

/// The centre of a logical cell; nodes are placed at cell centres.
///
/// # Panics
/// Panics when `cell >= NUM_CELLS`.
pub fn cell_center(cell: usize) -> Point {
    assert!(cell < NUM_CELLS, "cell index out of range");
    Point::new(
        (cell_col(cell) as f64 + 0.5) * CELL_SIDE_M,
        (cell_row(cell) as f64 + 0.5) * CELL_SIDE_M,
    )
}

/// The y-coordinate of the centre line of grid row `r`.
pub fn row_center_y(r: usize) -> f64 {
    (r as f64 + 0.5) * CELL_SIDE_M
}

/// The x-coordinate of the centre line of grid column `c`.
pub fn col_center_x(c: usize) -> f64 {
    (c as f64 + 0.5) * CELL_SIDE_M
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_fourteen_square_metres() {
        assert!((SIDE_M * SIDE_M - 14.0).abs() < 1e-9);
    }

    #[test]
    fn cell_diagonal_matches_paper() {
        // The paper rounds to 1.75 m.
        assert!((cell_diagonal_m() - 1.75).abs() < 0.02, "{}", cell_diagonal_m());
    }

    #[test]
    fn cell_centers_are_inside_and_distinct() {
        let mut centers = Vec::new();
        for c in 0..NUM_CELLS {
            let p = cell_center(c);
            assert!(p.x > 0.0 && p.x < SIDE_M);
            assert!(p.y > 0.0 && p.y < SIDE_M);
            centers.push(p);
        }
        for i in 0..NUM_CELLS {
            for j in i + 1..NUM_CELLS {
                assert!(centers[i].distance(&centers[j]) > 1.0);
            }
        }
    }

    #[test]
    fn row_col_decomposition() {
        assert_eq!((cell_row(0), cell_col(0)), (0, 0));
        assert_eq!((cell_row(5), cell_col(5)), (1, 2));
        assert_eq!((cell_row(8), cell_col(8)), (2, 2));
    }

    #[test]
    fn diagonal_neighbours_respect_min_distance() {
        // Cells diagonal to each other are exactly one cell diagonal
        // apart.
        let d = cell_center(0).distance(&cell_center(4));
        assert!((d - cell_diagonal_m()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cell_panics() {
        let _ = cell_center(9);
    }
}
