//! Summary statistics matching Figure 2's markers.
//!
//! For each `n` the paper reports, across all placements: the minimum
//! (diamonds), the average (circles), "the minimum reliability achieved
//! during 95% of the experiments" (triangles — i.e. the 5th percentile)
//! and "during 50% of the experiments" (squares — the median).

/// Summary of a sample of measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 5th percentile — the "95% of experiments achieve at least this"
    /// marker.
    pub p05: f64,
    /// Median — the "50% of experiments achieve at least this" marker.
    pub p50: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
        let count = sorted.len();
        Some(Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean: sorted.iter().sum::<f64>() / count as f64,
            p05: quantile(&sorted, 0.05),
            p50: quantile(&sorted, 0.50),
        })
    }
}

/// Lower empirical quantile of an already-sorted sample: the largest value
/// `v` such that at least `(1 − q)` of the sample is `≥ v` — the paper's
/// "minimum achieved during (1 − q) of the experiments".
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let idx = ((sorted.len() as f64 - 1.0) * q).floor() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::of(&[1.0; 10]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.p05, 1.0);
        assert_eq!(s.p50, 1.0);
        assert_eq!(s.count, 10);
    }

    #[test]
    fn summary_orders_correctly() {
        // min <= p05 <= p50 <= mean-ish <= max
        let samples: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1.0);
        assert!((s.mean - 0.5).abs() < 1e-9);
        assert!(s.min <= s.p05 && s.p05 <= s.p50);
        assert!((s.p05 - 0.04).abs() < 0.02);
        assert!((s.p50 - 0.49).abs() < 0.02);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[0.7]).unwrap();
        assert_eq!(s.min, 0.7);
        assert_eq!(s.p05, 0.7);
        assert_eq!(s.p50, 0.7);
    }

    #[test]
    fn quantile_is_conservative_low() {
        let sorted = vec![0.0, 0.5, 1.0];
        assert_eq!(quantile(&sorted, 0.0), 0.0);
        assert_eq!(quantile(&sorted, 0.5), 0.5);
        assert_eq!(quantile(&sorted, 1.0), 1.0);
        // Between points: floor (lower value).
        assert_eq!(quantile(&sorted, 0.4), 0.0);
    }

    #[test]
    fn figure2_semantics() {
        // 9 perfect experiments and one disaster: min exposes the
        // disaster, p50 stays perfect — the paper's exact reading.
        let mut samples = vec![1.0; 9];
        samples.push(0.2);
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.min, 0.2);
        assert_eq!(s.p50, 1.0);
        assert!(s.mean > 0.9);
    }
}
