//! Output helpers for the bench harness: CSV rows and ASCII plots.

use std::fmt::Write as _;

/// Renders a CSV table: header plus one row per record.
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// A simple ASCII scatter/line plot for terminal output: one labelled
/// series over an x grid. Values are clamped into `[y_min, y_max]`.
pub struct AsciiPlot {
    width: usize,
    height: usize,
    y_min: f64,
    y_max: f64,
    grid: Vec<Vec<char>>,
}

impl AsciiPlot {
    /// Creates an empty plot canvas.
    pub fn new(width: usize, height: usize, y_min: f64, y_max: f64) -> Self {
        assert!(width >= 2 && height >= 2, "plot too small");
        assert!(y_max > y_min, "empty y range");
        AsciiPlot { width, height, y_min, y_max, grid: vec![vec![' '; width]; height] }
    }

    /// Plots a series of `(x_fraction, y)` points (x_fraction in `[0,1]`)
    /// with the given marker character.
    pub fn series(&mut self, points: &[(f64, f64)], marker: char) {
        for &(xf, y) in points {
            let x = ((xf.clamp(0.0, 1.0)) * (self.width - 1) as f64).round() as usize;
            let yf = ((y.clamp(self.y_min, self.y_max) - self.y_min) / (self.y_max - self.y_min))
                .clamp(0.0, 1.0);
            let row = self.height - 1 - (yf * (self.height - 1) as f64).round() as usize;
            self.grid[row][x] = marker;
        }
    }

    /// Renders the canvas with a y-axis.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, row) in self.grid.iter().enumerate() {
            let y = self.y_max - (self.y_max - self.y_min) * i as f64 / (self.height - 1) as f64;
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{y:7.3} |{line}");
        }
        let _ = writeln!(out, "        +{}", "-".repeat(self.width));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape() {
        let text = csv(
            &["n", "min", "mean"],
            &[
                vec!["3".into(), "0.2".into(), "0.9".into()],
                vec!["8".into(), "1.0".into(), "1.0".into()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "n,min,mean");
        assert_eq!(lines[2], "8,1.0,1.0");
    }

    #[test]
    fn plot_places_markers() {
        let mut p = AsciiPlot::new(21, 11, 0.0, 1.0);
        p.series(&[(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)], '*');
        let text = p.render();
        assert_eq!(text.matches('*').count(), 3);
        // Top-right corner holds the (1.0, 1.0) marker.
        let first_line = text.lines().next().unwrap();
        assert!(first_line.ends_with('*'));
    }

    #[test]
    fn plot_clamps_out_of_range() {
        let mut p = AsciiPlot::new(10, 5, 0.0, 1.0);
        p.series(&[(2.0, 7.0), (-1.0, -3.0)], 'x');
        let text = p.render();
        assert_eq!(text.matches('x').count(), 2);
    }

    #[test]
    #[should_panic(expected = "empty y range")]
    fn bad_range_panics() {
        let _ = AsciiPlot::new(10, 5, 1.0, 1.0);
    }
}
