//! Parallel placement sweeps.
//!
//! Figure 2 needs every placement of `n` terminals and Eve (up to 630
//! experiments per `n`); experiments are independent, so they fan out
//! over worker threads with `crossbeam`'s scoped threads (the workspace's
//! one concession to parallelism — the protocol itself is synchronous).

use crossbeam::thread;

use crate::experiment::{run_experiment, ExperimentResult, TestbedConfig};
use crate::placement::{enumerate_placements, Placement};

/// Runs `run_experiment` on every placement of `n` terminals, in
/// parallel. Results are returned in placement-enumeration order.
///
/// # Panics
/// Panics when an experiment fails (reliable broadcast exhaustion etc. —
/// with the default attempt budgets this indicates a configuration error,
/// not bad luck).
pub fn sweep_all_placements(n: usize, cfg: &TestbedConfig) -> Vec<ExperimentResult> {
    let placements = enumerate_placements(n);
    sweep_placements(&placements, cfg)
}

/// Runs the given placements in parallel (chunked over available
/// parallelism).
pub fn sweep_placements(placements: &[Placement], cfg: &TestbedConfig) -> Vec<ExperimentResult> {
    parallel_map(placements, |placement| {
        run_experiment(cfg, placement).expect("experiment failed; configuration error")
    })
}

/// Applies `f` to every item across worker threads (chunked over
/// available parallelism) and returns the results in input order — the
/// generic fan-out behind [`sweep_placements`] and the scenario engine's
/// config sharding. Items are independent, so this is deterministic
/// whenever `f` is.
///
/// # Panics
/// Panics when a worker thread panics (i.e. when `f` does), re-raising
/// the **worker's own panic payload** after every thread has joined —
/// the assertion message from the failing closure reaches the caller
/// intact. (The previous implementation leaned on the scope's implicit
/// join, which swallows the payload and panics with an opaque "a
/// scoped thread panicked"; the caller saw *that* a shard died but
/// never *why*, and the surviving shards' results were discarded
/// undiagnosed.)
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let chunk = items.len().div_ceil(workers).max(1);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let f = &f;
    let first_panic = thread::scope(|s| {
        let handles: Vec<_> = results
            .chunks_mut(chunk)
            .zip(items.chunks(chunk))
            .map(|(slot_chunk, item_chunk)| {
                s.spawn(move |_| {
                    for (slot, item) in slot_chunk.iter_mut().zip(item_chunk.iter()) {
                        *slot = Some(f(item));
                    }
                })
            })
            .collect();
        // Join every worker before deciding the outcome, keeping the
        // first panic payload (input order) to re-raise.
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        first_panic
    })
    .unwrap_or_else(Some);
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TestbedConfig {
        TestbedConfig { x_per_terminal: 9, payload_len: 10, seed: 3, ..TestbedConfig::default() }
    }

    #[test]
    fn sweep_returns_one_result_per_placement() {
        let placements = enumerate_placements(7); // 72 placements
        let results = sweep_placements(&placements[..8], &tiny_cfg());
        assert_eq!(results.len(), 8);
        for (r, p) in results.iter().zip(placements.iter()) {
            assert_eq!(&r.placement, p);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let placements = enumerate_placements(8);
        let cfg = tiny_cfg();
        let parallel = sweep_placements(&placements, &cfg);
        let serial: Vec<_> = placements.iter().map(|p| run_experiment(&cfg, p).unwrap()).collect();
        assert_eq!(parallel, serial);
    }

    /// The panic-propagation regression pin: one panicking closure must
    /// fail the whole map — promptly, with the *original* panic message
    /// (not a generic "a scoped thread panicked"), never a hang or a
    /// silently truncated result vector.
    #[test]
    fn one_panicking_closure_fails_the_whole_map() {
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, |&i| {
                if i == 13 {
                    panic!("boom on item {i}");
                }
                i * 2
            })
        })
        .expect_err("the map must panic");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message");
        assert!(msg.contains("boom on item 13"), "original payload lost: {msg:?}");
    }

    /// Panics in several workers at once still produce exactly one
    /// propagated panic (the first in input order), after all threads
    /// joined — no abort from a double panic, no lost join.
    #[test]
    fn multiple_panics_propagate_one_payload() {
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, |&i| {
                if i % 7 == 3 {
                    panic!("boom {i}");
                }
                i
            })
        })
        .expect_err("the map must panic");
        let msg = caught.downcast_ref::<String>().cloned().expect("message payload");
        assert!(msg.starts_with("boom "), "unexpected payload: {msg:?}");
    }
}
