//! The WARP interferer bank: 12 directional antennas, 9 rotation
//! patterns.
//!
//! Six WARP nodes carry two antennas each. We arrange them so that every
//! grid row has a pair of antennas firing along it from both ends, and
//! every grid column likewise from top and bottom (12 antennas total). A
//! *pattern* activates one row pair plus one column pair ("one pair of
//! antennas creates noise along a row, while another pair creates noise
//! along a column"), giving the 3 × 3 = 9 patterns the paper rotates
//! through per experiment.

use thinair_netsim::interference::{Beam, InterferenceSchedule, Pattern};

use crate::grid::{col_center_x, row_center_y, CELLS_PER_SIDE, SIDE_M};

/// Default effective radiated power of a jamming antenna (dBm). Chosen so
/// that an in-beam receiver's SINR falls well below the 802.11b 1 Mbps
/// decoding threshold while out-of-beam receivers (side lobes, 20 dB
/// down) stay mostly decodable — the regime the paper's deployment
/// achieves by construction.
pub const DEFAULT_JAMMER_EIRP_DBM: f64 = 10.0;

/// Beamwidth of the WARP directional antennas ("narrow 3-dB 22-degree
/// beam").
pub const BEAMWIDTH_DEG: f64 = 22.0;

/// How far outside the arena edge the antennas sit (metres).
const STANDOFF_M: f64 = 0.3;

/// Builds the 12-antenna bank and the 9-pattern rotation schedule.
///
/// Beams `2r` / `2r + 1` fire along row `r` (east / west); beams
/// `6 + 2c` / `6 + 2c + 1` fire along column `c` (north / south).
/// Pattern `k` (row-major: `r = k / 3`, `c = k % 3`) activates row `r`'s
/// pair and column `c`'s pair, and stays active for
/// `packets_per_pattern` transmissions.
pub fn paper_interference(eirp_dbm: f64, packets_per_pattern: u64) -> InterferenceSchedule {
    let mut beams = Vec::with_capacity(12);
    // Row pairs.
    for r in 0..CELLS_PER_SIDE {
        let y = row_center_y(r);
        beams.push(Beam {
            origin: thinair_netsim::Point::new(-STANDOFF_M, y),
            azimuth_deg: 0.0,
            beamwidth_deg: BEAMWIDTH_DEG,
            eirp_dbm,
        });
        beams.push(Beam {
            origin: thinair_netsim::Point::new(SIDE_M + STANDOFF_M, y),
            azimuth_deg: 180.0,
            beamwidth_deg: BEAMWIDTH_DEG,
            eirp_dbm,
        });
    }
    // Column pairs.
    for c in 0..CELLS_PER_SIDE {
        let x = col_center_x(c);
        beams.push(Beam {
            origin: thinair_netsim::Point::new(x, -STANDOFF_M),
            azimuth_deg: 90.0,
            beamwidth_deg: BEAMWIDTH_DEG,
            eirp_dbm,
        });
        beams.push(Beam {
            origin: thinair_netsim::Point::new(x, SIDE_M + STANDOFF_M),
            azimuth_deg: 270.0,
            beamwidth_deg: BEAMWIDTH_DEG,
            eirp_dbm,
        });
    }
    let patterns = (0..9)
        .map(|k| {
            let r = k / 3;
            let c = k % 3;
            Pattern { active: vec![2 * r, 2 * r + 1, 6 + 2 * c, 6 + 2 * c + 1] }
        })
        .collect();
    InterferenceSchedule { beams, patterns, packets_per_pattern }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::cell_center;
    use thinair_netsim::pathloss::PathLoss;

    #[test]
    fn twelve_antennas_nine_patterns() {
        let s = paper_interference(DEFAULT_JAMMER_EIRP_DBM, 10);
        assert_eq!(s.beams.len(), 12);
        assert_eq!(s.patterns.len(), 9);
        for p in &s.patterns {
            assert_eq!(p.active.len(), 4, "one row pair + one column pair");
        }
    }

    #[test]
    fn every_beam_index_is_used() {
        let s = paper_interference(DEFAULT_JAMMER_EIRP_DBM, 1);
        let mut used = vec![false; 12];
        for p in &s.patterns {
            for &b in &p.active {
                used[b] = true;
            }
        }
        assert!(used.iter().all(|&u| u), "{used:?}");
    }

    #[test]
    fn row_beams_cover_their_rows_cell_centres() {
        let s = paper_interference(DEFAULT_JAMMER_EIRP_DBM, 1);
        for r in 0..3 {
            for c in 0..3 {
                let cell = r * 3 + c;
                let p = cell_center(cell);
                assert!(
                    s.beams[2 * r].covers(&p) || s.beams[2 * r + 1].covers(&p),
                    "row {r} beams must cover cell {cell}"
                );
            }
        }
    }

    #[test]
    fn jammed_cells_receive_much_more_interference() {
        let s = paper_interference(DEFAULT_JAMMER_EIRP_DBM, 1);
        let pl = PathLoss { shadowing_sigma_db: 0.0, ..PathLoss::default() };
        // Pattern 0 jams row 0 and column 0. Cell 0 (row 0, col 0) is in
        // both; cell 4 (centre) is in neither.
        let jammed = s.power_at(&cell_center(0), 0, &pl);
        let clear = s.power_at(&cell_center(4), 0, &pl);
        assert!(jammed - clear > 15.0, "jammed {jammed} dBm vs clear {clear} dBm");
    }

    #[test]
    fn rotation_covers_every_cell() {
        // Every cell must be jammed in exactly 5 of 9 patterns (its row: 3
        // patterns; its column: 3; overlap 1).
        let s = paper_interference(DEFAULT_JAMMER_EIRP_DBM, 1);
        let pl = PathLoss { shadowing_sigma_db: 0.0, ..PathLoss::default() };
        for cell in 0..9 {
            let p = cell_center(cell);
            let mut jammed_patterns = 0;
            for k in 0..9u64 {
                let power = s.power_at(&p, k, &pl);
                // "Jammed" = in some active beam's main lobe: power well
                // above the side-lobe floor.
                if power > -40.0 {
                    jammed_patterns += 1;
                }
            }
            assert_eq!(jammed_patterns, 5, "cell {cell}");
        }
    }
}
