//! Placement enumeration.
//!
//! "When we refer to an 'experiment,' we mean that we place n terminals
//! and Eve on our testbed area, such that each cell is occupied by at most
//! one node, and we run one round of our protocol. We run one such
//! experiment for each possible positioning of n terminals and Eve."
//!
//! Terminals are interchangeable (the protocol rotates roles), so a
//! placement is a set of `n` cells for the terminals plus one distinct
//! cell for Eve: `C(9, n) · (9 − n)` placements for each `n`.

use crate::grid::NUM_CELLS;

/// One positioning of the terminals and Eve on the 3×3 grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Cells occupied by terminals (sorted, distinct).
    pub terminal_cells: Vec<usize>,
    /// Eve's cell (distinct from all terminal cells).
    pub eve_cell: usize,
}

/// Enumerates every placement of `n` terminals plus Eve.
///
/// # Panics
/// Panics unless `1 <= n <= 8` (Eve needs a free cell).
pub fn enumerate_placements(n: usize) -> Vec<Placement> {
    assert!((1..NUM_CELLS).contains(&n), "need 1..=8 terminals");
    let mut out = Vec::new();
    // All n-subsets of the 9 cells, bitmask-style.
    for mask in 0u32..(1 << NUM_CELLS) {
        if mask.count_ones() as usize != n {
            continue;
        }
        let cells: Vec<usize> = (0..NUM_CELLS).filter(|&c| mask & (1 << c) != 0).collect();
        for eve in 0..NUM_CELLS {
            if mask & (1 << eve) == 0 {
                out.push(Placement { terminal_cells: cells.clone(), eve_cell: eve });
            }
        }
    }
    out
}

/// Number of placements for `n` terminals: `C(9, n) · (9 − n)`.
pub fn placement_count(n: usize) -> usize {
    fn binom(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut acc = 1usize;
        for i in 0..k {
            acc = acc * (n - i) / (i + 1);
        }
        acc
    }
    binom(NUM_CELLS, n) * (NUM_CELLS - n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        for n in 1..=8 {
            let placements = enumerate_placements(n);
            assert_eq!(placements.len(), placement_count(n), "n={n}");
        }
        // Known values.
        assert_eq!(placement_count(8), 9); // C(9,8)*1
        assert_eq!(placement_count(3), 504); // 84 * 6
        assert_eq!(placement_count(6), 252); // 84 * 3
    }

    #[test]
    fn no_cell_shared() {
        for p in enumerate_placements(4) {
            assert!(!p.terminal_cells.contains(&p.eve_cell));
            let mut cells = p.terminal_cells.clone();
            cells.dedup();
            assert_eq!(cells.len(), 4);
        }
    }

    #[test]
    fn placements_are_distinct() {
        let ps = enumerate_placements(7);
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i], ps[j]);
            }
        }
    }

    #[test]
    fn full_house_has_nine_eve_rotations() {
        let ps = enumerate_placements(8);
        assert_eq!(ps.len(), 9);
        // Each placement leaves exactly the Eve cell free.
        for p in &ps {
            assert_eq!(p.terminal_cells.len(), 8);
            assert!((0..9).all(|c| p.terminal_cells.contains(&c) || c == p.eve_cell));
        }
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn nine_terminals_rejected() {
        let _ = enumerate_placements(9);
    }
}
