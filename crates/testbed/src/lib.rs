//! The paper's §4 deployment, reproduced in simulation.
//!
//! "We set up a small indoor wireless testbed that covers a square area of
//! 14 m². We deployed n = 8 terminals and one adversary. ... We divide the
//! testbed area in 9 logical cells, place Eve in one of them, and the
//! terminals in various positions around her, but not in the same cell.
//! ... To generate interference, we use 6 WARP nodes, each with two
//! directional antennas, each with a narrow 3-dB 22-degree beam. ... we
//! turn them on and off, such that, at any point in time, one pair of
//! antennas creates noise along a row, while another pair creates noise
//! along a column."
//!
//! * [`grid`] — the √14 m × √14 m arena and its 3×3 logical cells
//!   (diagonal ≈ 1.75 m, the paper's minimum-distance rule).
//! * [`jammers`] — the 12 directional antennas (6 WARP nodes × 2) on the
//!   perimeter and the 9-pattern (row, column) rotation schedule.
//! * [`placement`] — exhaustive enumeration of node placements ("one such
//!   experiment for each possible positioning of n terminals and Eve").
//! * [`experiment`] — one experiment = one protocol round on a
//!   [`thinair_netsim::GeoMedium`] built from a placement.
//! * [`sweep`] — run every placement (in parallel) and aggregate.
//! * [`stats`] — min / mean / percentile summaries matching Figure 2's
//!   markers.
//! * [`report`] — CSV and ASCII-plot emitters for the bench harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod grid;
pub mod jamaware;
pub mod jammers;
pub mod placement;
pub mod report;
pub mod stats;
pub mod sweep;

pub use experiment::{run_experiment, ExperimentResult, TestbedConfig};
pub use jamaware::jamming_aware_estimator;
pub use placement::{enumerate_placements, Placement};
pub use stats::Summary;
pub use sweep::{parallel_map, sweep_all_placements};
