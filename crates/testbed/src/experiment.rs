//! One experiment: a placement, a medium, one protocol round.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thinair_core::construct::PlanParams;
use thinair_core::estimate::{Estimator, Tuning};
use thinair_core::round::{run_group_round, Construction, RoundConfig, XSchedule};
use thinair_core::ProtocolError;
use thinair_netsim::channel::{GeoMedium, GeoMediumConfig};
use thinair_netsim::fading::Fading;
use thinair_netsim::interference::InterferenceSchedule;
use thinair_netsim::pathloss::PathLoss;
use thinair_netsim::per::PerModel;
use thinair_netsim::Point;

use crate::grid::cell_center;
use crate::jammers::{paper_interference, DEFAULT_JAMMER_EIRP_DBM};
use crate::placement::Placement;

/// Configuration of one testbed experiment (paper §4 defaults).
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// x-packets each terminal transmits during phase 1 (role rotation:
    /// every terminal contributes).
    pub x_per_terminal: usize,
    /// Payload length in bytes/symbols (paper: 100).
    pub payload_len: usize,
    /// The Eve-erasure estimator.
    pub estimator: Estimator,
    /// When true, ignore `estimator` and build the position-based
    /// jamming-aware estimator for each placement (see
    /// [`crate::jamaware`]).
    pub jamming_aware: bool,
    /// Which y-construction to run.
    pub construction: Construction,
    /// Jammer EIRP in dBm; `None` disables artificial interference (the
    /// ablation of §3.3's "especially crafted interference").
    pub jammer_eirp_dbm: Option<f64>,
    /// Additional cells carrying extra Eve antennas (multi-antenna
    /// adversary, §6). Must not collide with terminal cells.
    pub extra_eve_cells: Vec<usize>,
    /// Transmit power of terminals, dBm (paper: 3 dBm).
    pub tx_power_dbm: f64,
    /// Log-normal shadowing sigma, dB.
    pub shadowing_sigma_db: f64,
    /// Effective noise floor at the receivers, dBm. The default (−62 dBm)
    /// is far above thermal noise: it models the residual interference of
    /// the busy room (side lobes of the always-on jammers, co-channel
    /// traffic), putting clear-pattern links at 10–23 dB SNR where
    /// Rayleigh fading produces the 3–50% independent packet loss an
    /// 802.11g testbed at 1 Mbps actually exhibits. Without this
    /// statistical loss, receptions are a deterministic function of
    /// geometry and the leave-one-out estimator has nothing to average
    /// over.
    pub noise_floor_dbm: f64,
    /// Within-cell placement jitter as a fraction of the cell side
    /// (nodes stand anywhere in their cell, not at its exact centre; the
    /// paper places nodes "in various positions"). 0.0 pins nodes to cell
    /// centres; 0.25 (default) keeps them within the central half of the
    /// cell, comfortably inside the jamming pairs' combined beam
    /// footprint.
    pub position_jitter: f64,
    /// RNG seed for the whole experiment.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            x_per_terminal: 18,
            payload_len: 100,
            estimator: Estimator::LeaveOneOut(Tuning { scale: 0.75, slack: 0 }),
            jamming_aware: false,
            construction: Construction::Aligned,
            jammer_eirp_dbm: Some(DEFAULT_JAMMER_EIRP_DBM),
            extra_eve_cells: Vec::new(),
            tx_power_dbm: 3.0,
            shadowing_sigma_db: 2.0,
            noise_floor_dbm: -65.0,
            position_jitter: 0.25,
            seed: 0,
        }
    }
}

/// What one experiment measured.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentResult {
    /// The placement that was run.
    pub placement: Placement,
    /// Reliability `r ∈ [0, 1]` (1 = Eve learned nothing).
    pub reliability: f64,
    /// Efficiency = secret bits / all transmitted bits.
    pub efficiency: f64,
    /// Secret length in packets.
    pub l: usize,
    /// Number of y-packets.
    pub m: usize,
    /// Secret size in bits.
    pub secret_bits: u64,
    /// Total bits transmitted by the terminals.
    pub total_bits: u64,
}

/// Builds the geometric medium for a placement.
pub fn build_medium(cfg: &TestbedConfig, placement: &Placement) -> GeoMedium {
    let n = placement.terminal_cells.len();
    // Deterministic per-placement jitter: nodes stand somewhere inside
    // their cell, not at its centre.
    let mut jitter_rng = StdRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(placement.eve_cell as u64)
            .wrapping_add(
                placement
                    .terminal_cells
                    .iter()
                    .fold(0u64, |a, &c| a.wrapping_mul(31).wrapping_add(c as u64)),
            ),
    );
    let mut place = |cell: usize| -> Point {
        let c = cell_center(cell);
        let j = cfg.position_jitter * crate::grid::CELL_SIDE_M;
        if j == 0.0 {
            return c;
        }
        Point::new(c.x + jitter_rng.gen_range(-j..=j), c.y + jitter_rng.gen_range(-j..=j))
    };
    let mut positions: Vec<Point> = placement.terminal_cells.iter().map(|&c| place(c)).collect();
    positions.push(place(placement.eve_cell));
    for &c in &cfg.extra_eve_cells {
        assert!(
            !placement.terminal_cells.contains(&c),
            "extra Eve antenna collides with a terminal cell"
        );
        positions.push(place(c));
    }
    // The x-phase must rotate through all 9 patterns: each pattern stays
    // active for (total x-packets)/9 transmissions.
    let total_x = (n * cfg.x_per_terminal) as u64;
    let packets_per_pattern = (total_x / 9).max(1);
    let interference = match cfg.jammer_eirp_dbm {
        Some(eirp) => paper_interference(eirp, packets_per_pattern),
        None => InterferenceSchedule::off(),
    };
    GeoMedium::new(GeoMediumConfig {
        positions,
        tx_power_dbm: cfg.tx_power_dbm,
        noise_floor_dbm: cfg.noise_floor_dbm,
        pathloss: PathLoss {
            exponent: 2.0,
            shadowing_sigma_db: cfg.shadowing_sigma_db,
            ..PathLoss::default()
        },
        fading: Fading::Rayleigh,
        per_model: PerModel::BpskBer,
        interference,
        seed: cfg.seed,
    })
}

/// Picks the coordinator: the most central terminal (minimum worst-case
/// distance to the others). With a corner coordinator the weakest
/// diagonal pair starves the whole group secret; the paper's terminals
/// rotate roles, which averages to the same effect.
pub fn pick_coordinator(placement: &Placement) -> usize {
    let centers: Vec<_> = placement.terminal_cells.iter().map(|&c| cell_center(c)).collect();
    (0..centers.len())
        .min_by(|&a, &b| {
            let worst = |i: usize| -> f64 {
                centers.iter().map(|p| centers[i].distance(p)).fold(0.0f64, f64::max)
            };
            worst(a).partial_cmp(&worst(b)).expect("distances are finite")
        })
        .expect("at least one terminal")
}

/// Runs one experiment (one protocol round on the placement's medium).
pub fn run_experiment(
    cfg: &TestbedConfig,
    placement: &Placement,
) -> Result<ExperimentResult, ProtocolError> {
    let n = placement.terminal_cells.len();
    let medium = build_medium(cfg, placement);
    let estimator = if cfg.jamming_aware {
        let total_x = n * cfg.x_per_terminal;
        crate::jamaware::jamming_aware_estimator(
            placement,
            total_x,
            (total_x as u64 / 9).max(1),
            cfg.estimator.tuning(),
        )
    } else {
        cfg.estimator.clone()
    };
    let round_cfg = RoundConfig {
        schedule: XSchedule::Uniform(cfg.x_per_terminal),
        payload_len: cfg.payload_len,
        estimator,
        construction: cfg.construction,
        plan_params: PlanParams::default(),
        max_attempts: 1_000_000,
    };
    // Per-experiment RNG: derived from the seed and the placement so every
    // experiment is independent and reproducible.
    let mut hasher_seed = cfg.seed ^ (placement.eve_cell as u64) << 32;
    for &c in &placement.terminal_cells {
        hasher_seed = hasher_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(c as u64);
    }
    let mut rng = StdRng::seed_from_u64(hasher_seed);
    // Decorrelate protocol randomness from channel randomness.
    let _burn: u64 = rng.gen();
    let coordinator = pick_coordinator(placement);
    let outcome = run_group_round(medium, n, coordinator, &round_cfg, &mut rng)?;
    Ok(ExperimentResult {
        placement: placement.clone(),
        reliability: outcome.reliability(),
        efficiency: outcome.efficiency(),
        l: outcome.l,
        m: outcome.m,
        secret_bits: outcome.secret_bits(),
        total_bits: outcome.stats.total(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinair_netsim::Medium;

    fn small_cfg() -> TestbedConfig {
        TestbedConfig { x_per_terminal: 9, payload_len: 20, seed: 7, ..TestbedConfig::default() }
    }

    #[test]
    fn medium_has_terminals_plus_eves() {
        let p = Placement { terminal_cells: vec![0, 2, 6], eve_cell: 4 };
        let cfg = small_cfg();
        let m = build_medium(&cfg, &p);
        assert_eq!(m.node_count(), 4);
        let cfg2 = TestbedConfig { extra_eve_cells: vec![8], ..small_cfg() };
        let m2 = build_medium(&cfg2, &p);
        assert_eq!(m2.node_count(), 5);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn extra_antenna_collision_panics() {
        let p = Placement { terminal_cells: vec![0, 2], eve_cell: 4 };
        let cfg = TestbedConfig { extra_eve_cells: vec![2], ..small_cfg() };
        let _ = build_medium(&cfg, &p);
    }

    #[test]
    fn experiment_produces_sane_metrics() {
        let p = Placement { terminal_cells: vec![0, 2, 6, 8], eve_cell: 4 };
        let r = run_experiment(&small_cfg(), &p).unwrap();
        assert!((0.0..=1.0).contains(&r.reliability), "{r:?}");
        assert!(r.efficiency >= 0.0 && r.efficiency < 1.0);
        assert!(r.total_bits > 0);
        if r.l > 0 {
            assert_eq!(r.secret_bits, (r.l * 20 * 8) as u64);
        }
    }

    #[test]
    fn experiments_are_deterministic() {
        let p = Placement { terminal_cells: vec![1, 3, 5, 7], eve_cell: 4 };
        let a = run_experiment(&small_cfg(), &p).unwrap();
        let b = run_experiment(&small_cfg(), &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_placements_differ() {
        let cfg = small_cfg();
        let a = run_experiment(&cfg, &Placement { terminal_cells: vec![0, 1, 2, 3], eve_cell: 8 })
            .unwrap();
        let b = run_experiment(&cfg, &Placement { terminal_cells: vec![0, 2, 6, 8], eve_cell: 4 })
            .unwrap();
        // Extremely unlikely to coincide bit-for-bit.
        assert!(a.total_bits != b.total_bits || a.l != b.l || a.reliability != b.reliability);
    }

    #[test]
    fn interference_creates_erasures_for_eve() {
        // With jammers on, Eve in the centre cell must miss packets; with
        // jammers off in a clean line-of-sight room she hears nearly
        // everything, starving the secret.
        let p = Placement { terminal_cells: vec![0, 2, 6, 8], eve_cell: 4 };
        let with = run_experiment(&small_cfg(), &p).unwrap();
        let without =
            run_experiment(&TestbedConfig { jammer_eirp_dbm: None, ..small_cfg() }, &p).unwrap();
        // The jammed run should extract a bigger secret.
        assert!(
            with.l >= without.l,
            "interference should enable secrecy: with={} without={}",
            with.l,
            without.l
        );
    }
}
