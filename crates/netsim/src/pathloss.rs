//! Large-scale propagation: log-distance path loss with log-normal
//! shadowing.
//!
//! Received power for a link of length `d` metres:
//!
//! ```text
//! P_rx(dBm) = P_tx + G - PL(d0) - 10·n·log10(d/d0) - X_sigma(link)
//! ```
//!
//! where `PL(d0)` is the free-space loss at the reference distance
//! (1 m at 2.472 GHz ≈ 40.3 dB), `n` the path-loss exponent (≈ 2 for the
//! paper's line-of-sight room), and `X_sigma` a zero-mean Gaussian in dB
//! drawn **once per ordered link** and frozen: the testbed is static, so
//! shadowing is a property of the geometry, not of time. (This matters for
//! fidelity: the paper contrasts itself with key-extraction schemes that
//! need channel *variation*; our large-scale channel must therefore not
//! vary.)

use rand::Rng;
use rand_distr_normal::sample_standard_normal;

/// Free-space path loss at 1 m for 2.472 GHz (dB):
/// `20·log10(4π·d·f/c)` with d = 1 m.
pub const FSPL_1M_2472MHZ_DB: f64 = 40.32;

/// Parameters of the log-distance path-loss model.
#[derive(Clone, Copy, Debug)]
pub struct PathLoss {
    /// Path-loss exponent (2.0 = free space; indoor LOS ≈ 1.8–2.2).
    pub exponent: f64,
    /// Reference loss at 1 m, dB.
    pub ref_loss_db: f64,
    /// Standard deviation of per-link log-normal shadowing, dB.
    pub shadowing_sigma_db: f64,
    /// Below this distance the loss is clamped to the reference loss
    /// (avoids the model diverging to -inf loss at d -> 0).
    pub min_distance_m: f64,
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss {
            exponent: 2.0,
            ref_loss_db: FSPL_1M_2472MHZ_DB,
            shadowing_sigma_db: 3.0,
            min_distance_m: 0.1,
        }
    }
}

impl PathLoss {
    /// Deterministic (median) path loss in dB for a link of `d` metres.
    pub fn median_loss_db(&self, d: f64) -> f64 {
        let d = d.max(self.min_distance_m);
        self.ref_loss_db + 10.0 * self.exponent * (d / 1.0).log10()
    }

    /// Draws the frozen shadowing term for one link, in dB.
    pub fn draw_shadowing_db(&self, rng: &mut impl Rng) -> f64 {
        self.shadowing_sigma_db * sample_standard_normal(rng)
    }
}

/// Minimal normal sampling (Box–Muller) so we do not need an extra
/// dependency: `rand` provides uniforms; the pair trick gives exact
/// standard normals.
mod rand_distr_normal {
    use rand::Rng;

    /// One standard-normal sample via Box–Muller (uses two uniforms).
    pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
        // Guard against log(0).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

pub use rand_distr_normal::sample_standard_normal as standard_normal;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_loss_at_one_metre() {
        let pl = PathLoss::default();
        assert!((pl.median_loss_db(1.0) - FSPL_1M_2472MHZ_DB).abs() < 1e-9);
    }

    #[test]
    fn loss_increases_with_distance() {
        let pl = PathLoss::default();
        let mut prev = pl.median_loss_db(0.5);
        for d in [1.0, 2.0, 3.742, 10.0] {
            let l = pl.median_loss_db(d);
            assert!(l >= prev, "loss must be monotone at d={d}");
            prev = l;
        }
    }

    #[test]
    fn exponent_two_means_6db_per_doubling() {
        let pl = PathLoss { exponent: 2.0, ..PathLoss::default() };
        let l1 = pl.median_loss_db(1.0);
        let l2 = pl.median_loss_db(2.0);
        assert!((l2 - l1 - 20.0 * 2f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn short_distances_clamped() {
        let pl = PathLoss::default();
        assert_eq!(pl.median_loss_db(0.0), pl.median_loss_db(pl.min_distance_m));
    }

    #[test]
    fn testbed_link_budget_sanity() {
        // Across the full diagonal of the paper's room (≈ 5.3 m) at 3 dBm:
        // the received power must sit far above the ~-94 dBm noise floor —
        // the paper's terminals are all in line of sight and naturally
        // lose almost nothing, which is why artificial interference is
        // needed at all.
        let pl = PathLoss::default();
        let rx_dbm = 3.0 - pl.median_loss_db(5.3);
        assert!(rx_dbm > -60.0, "got {rx_dbm} dBm");
    }

    #[test]
    fn shadowing_statistics() {
        let pl = PathLoss { shadowing_sigma_db: 4.0, ..PathLoss::default() };
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| pl.draw_shadowing_db(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.15, "sigma {}", var.sqrt());
    }

    #[test]
    fn standard_normal_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let mut within_1sigma = 0;
        for _ in 0..n {
            if standard_normal(&mut rng).abs() < 1.0 {
                within_1sigma += 1;
            }
        }
        let frac = within_1sigma as f64 / n as f64;
        assert!((frac - 0.6827).abs() < 0.02, "P(|Z|<1) = {frac}");
    }
}
