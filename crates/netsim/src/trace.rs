//! A bounded event log for medium activity.
//!
//! [`TracedMedium`] wraps any [`Medium`] and records every transmission —
//! who sent, how many bits, who received — in a ring buffer, in the spirit
//! of the packet-dump (`--pcap`) facilities the networking guides attach
//! to their examples. Experiments use it to debug surprising erasure
//! patterns without perturbing determinism (the wrapper consumes no
//! randomness).

use std::collections::VecDeque;

use crate::medium::{Delivery, Medium, NodeId};

/// One recorded transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Medium time when the packet was sent.
    pub at: u64,
    /// Transmitter.
    pub tx: NodeId,
    /// Payload size in bits.
    pub bits: u64,
    /// Delivery flags per node.
    pub received: Vec<bool>,
}

/// A [`Medium`] wrapper that records transmissions into a bounded ring.
#[derive(Clone, Debug)]
pub struct TracedMedium<M> {
    inner: M,
    events: VecDeque<TraceEvent>,
    capacity: usize,
    /// Total events ever recorded (including evicted ones).
    pub recorded: u64,
}

impl<M: Medium> TracedMedium<M> {
    /// Wraps `inner`, keeping at most `capacity` most-recent events.
    pub fn new(inner: M, capacity: usize) -> Self {
        TracedMedium { inner, events: VecDeque::new(), capacity, recorded: 0 }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The wrapped medium.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Renders a compact textual dump (one line per event):
    /// `t=3 tx=0 bits=800 -> 1,2`.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let rx: Vec<String> = e
                .received
                .iter()
                .enumerate()
                .filter(|(_, &r)| r)
                .map(|(i, _)| i.to_string())
                .collect();
            out.push_str(&format!(
                "t={} tx={} bits={} -> {}\n",
                e.at,
                e.tx,
                e.bits,
                if rx.is_empty() { "(nobody)".to_string() } else { rx.join(",") }
            ));
        }
        out
    }
}

impl<M: Medium> Medium for TracedMedium<M> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn transmit(&mut self, tx: NodeId, bits: u64) -> Delivery {
        let at = self.inner.now();
        let d = self.inner.transmit(tx, bits);
        if self.capacity > 0 {
            if self.events.len() == self.capacity {
                self.events.pop_front();
            }
            self.events.push_back(TraceEvent { at, tx, bits, received: d.received.clone() });
        }
        self.recorded += 1;
        d
    }

    fn tick(&mut self) {
        self.inner.tick()
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iid::IidMedium;

    #[test]
    fn records_events_in_order() {
        let mut m = TracedMedium::new(IidMedium::symmetric(3, 0.0, 1), 16);
        m.transmit(0, 800);
        m.transmit(1, 64);
        let evs: Vec<&TraceEvent> = m.events().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].tx, evs[0].bits), (0, 800));
        assert_eq!((evs[1].tx, evs[1].bits), (1, 64));
        assert!(evs[0].received[1] && evs[0].received[2]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut m = TracedMedium::new(IidMedium::symmetric(2, 0.0, 1), 2);
        for i in 0..5 {
            m.transmit(0, i + 1);
        }
        assert_eq!(m.len(), 2);
        assert_eq!(m.recorded, 5);
        let bits: Vec<u64> = m.events().map(|e| e.bits).collect();
        assert_eq!(bits, vec![4, 5]);
    }

    #[test]
    fn transparent_to_inner_behaviour() {
        let mut plain = IidMedium::symmetric(3, 0.5, 77);
        let mut traced = TracedMedium::new(IidMedium::symmetric(3, 0.5, 77), 8);
        for _ in 0..100 {
            assert_eq!(plain.transmit(0, 8), traced.transmit(0, 8));
        }
    }

    #[test]
    fn dump_is_readable() {
        let mut m = TracedMedium::new(IidMedium::symmetric(2, 0.0, 1), 4);
        m.transmit(0, 800);
        let text = m.dump();
        assert!(text.contains("tx=0"));
        assert!(text.contains("bits=800"));
        assert!(text.contains("-> 1"));
    }

    #[test]
    fn zero_capacity_records_nothing_but_counts() {
        let mut m = TracedMedium::new(IidMedium::symmetric(2, 0.0, 1), 0);
        m.transmit(0, 8);
        assert!(m.is_empty());
        assert_eq!(m.recorded, 1);
    }
}
