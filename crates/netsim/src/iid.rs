//! The idealized independent-erasure medium.
//!
//! Figure 1 of the paper compares algorithm efficiencies "under simplifying
//! assumptions: ... the packet erasure probability between Alice and each
//! terminal, as well as Alice and Eve, is the same". [`IidMedium`] is that
//! abstraction: every ordered link `tx → rx` drops each packet
//! independently with a fixed probability, with no geometry, fading or
//! interference involved.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::medium::{Delivery, Medium, NodeId};

/// A broadcast medium whose links are independent packet-erasure channels.
#[derive(Clone, Debug)]
pub struct IidMedium {
    /// `erasure[tx][rx]`: probability that a packet from `tx` is lost at
    /// `rx`.
    erasure: Vec<Vec<f64>>,
    rng: StdRng,
    t: u64,
}

impl IidMedium {
    /// All links share the same erasure probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn symmetric(nodes: usize, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "erasure probability out of range");
        IidMedium { erasure: vec![vec![p; nodes]; nodes], rng: StdRng::seed_from_u64(seed), t: 0 }
    }

    /// Fully general per-link erasure probabilities.
    ///
    /// # Panics
    /// Panics when the matrix is not square or probabilities are out of
    /// range.
    pub fn from_matrix(erasure: Vec<Vec<f64>>, seed: u64) -> Self {
        let n = erasure.len();
        assert!(erasure.iter().all(|row| row.len() == n), "erasure matrix must be square");
        assert!(
            erasure.iter().flatten().all(|p| (0.0..=1.0).contains(p)),
            "erasure probability out of range"
        );
        IidMedium { erasure, rng: StdRng::seed_from_u64(seed), t: 0 }
    }

    /// The configured erasure probability of the link `tx → rx`.
    pub fn erasure_prob(&self, tx: NodeId, rx: NodeId) -> f64 {
        self.erasure[tx][rx]
    }
}

impl Medium for IidMedium {
    fn node_count(&self) -> usize {
        self.erasure.len()
    }

    fn transmit(&mut self, tx: NodeId, _bits: u64) -> Delivery {
        assert!(tx < self.node_count(), "unknown transmitter {tx}");
        let n = self.node_count();
        let mut received = vec![false; n];
        for (rx, slot) in received.iter_mut().enumerate() {
            if rx != tx {
                *slot = self.rng.gen::<f64>() >= self.erasure[tx][rx];
            }
        }
        self.t += 1;
        Delivery::new(received)
    }

    fn tick(&mut self) {
        self.t += 1;
    }

    fn now(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erasure_rate_matches_configuration() {
        let mut m = IidMedium::symmetric(3, 0.3, 7);
        let n = 20_000;
        let mut got = [0usize; 3];
        for _ in 0..n {
            let d = m.transmit(0, 800);
            for (rx, count) in got.iter_mut().enumerate().skip(1) {
                if d.got(rx) {
                    *count += 1;
                }
            }
        }
        for (rx, &count) in got.iter().enumerate().skip(1) {
            let rate = count as f64 / n as f64;
            assert!((rate - 0.7).abs() < 0.02, "rx {rx} receive rate {rate}");
        }
    }

    #[test]
    fn p_zero_and_one_are_deterministic() {
        let mut lossless = IidMedium::symmetric(2, 0.0, 1);
        let mut dead = IidMedium::symmetric(2, 1.0, 1);
        for _ in 0..100 {
            assert!(lossless.transmit(0, 8).got(1));
            assert!(!dead.transmit(0, 8).got(1));
        }
    }

    #[test]
    fn per_link_probabilities() {
        // Link 0->1 perfect, 0->2 dead.
        let m = vec![vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0]];
        let mut m = IidMedium::from_matrix(m, 3);
        for _ in 0..50 {
            let d = m.transmit(0, 8);
            assert!(d.got(1));
            assert!(!d.got(2));
        }
    }

    #[test]
    fn independence_across_receivers() {
        // With p = 0.5 the four (got1, got2) outcomes should each appear
        // about a quarter of the time.
        let mut m = IidMedium::symmetric(3, 0.5, 11);
        let n = 40_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            let d = m.transmit(0, 8);
            let idx = (d.got(1) as usize) << 1 | d.got(2) as usize;
            counts[idx] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let frac = *c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.02, "outcome {i} frequency {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_rejected() {
        let _ = IidMedium::symmetric(2, 1.5, 0);
    }

    #[test]
    fn determinism_under_seed() {
        let mut a = IidMedium::symmetric(4, 0.4, 123);
        let mut b = IidMedium::symmetric(4, 0.4, 123);
        for tx in [0usize, 1, 2, 3, 0, 2] {
            assert_eq!(a.transmit(tx, 8), b.transmit(tx, 8));
        }
    }
}
