//! The broadcast-medium abstraction consumed by the protocol.
//!
//! Terminals and Eve are identified by dense indices. The protocol only
//! ever asks the medium one question: *if node `tx` transmits one packet of
//! `bits` bits now, who receives it?* Everything the paper measures
//! (erasure patterns, efficiency denominators) derives from the answers.

/// Index of a node attached to the medium. Terminals occupy `0..n`; by
/// convention in this workspace the eavesdropper is the last node.
pub type NodeId = usize;

/// The outcome of a single packet transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// `received[i]` is true iff node `i` decoded the packet. The
    /// transmitter's own entry is always `false` (a half-duplex radio does
    /// not hear itself).
    pub received: Vec<bool>,
}

impl Delivery {
    /// Convenience constructor.
    pub fn new(received: Vec<bool>) -> Self {
        Delivery { received }
    }

    /// Whether node `i` received the packet.
    pub fn got(&self, i: NodeId) -> bool {
        self.received.get(i).copied().unwrap_or(false)
    }

    /// Number of receivers that got the packet.
    pub fn count(&self) -> usize {
        self.received.iter().filter(|&&r| r).count()
    }
}

/// A broadcast wireless medium: one transmission reaches a random subset of
/// the other nodes.
///
/// Implementations must be deterministic given their construction seed so
/// that experiments are reproducible.
pub trait Medium {
    /// Total number of nodes attached (terminals + eavesdropper).
    fn node_count(&self) -> usize;

    /// Transmit a single packet of `bits` bits from `tx`; returns who
    /// received it. Advances the medium's internal packet clock (e.g. for
    /// interference rotation).
    fn transmit(&mut self, tx: NodeId, bits: u64) -> Delivery;

    /// Advances the medium to the next time slot without transmitting
    /// (e.g. to force an interference-pattern change between protocol
    /// phases).
    fn tick(&mut self);

    /// The current slot counter (implementation-defined granularity);
    /// exposed for traces and tests.
    fn now(&self) -> u64;
}

/// Blanket impl so `&mut M` can be passed where `impl Medium` is expected.
impl<M: Medium + ?Sized> Medium for &mut M {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn transmit(&mut self, tx: NodeId, bits: u64) -> Delivery {
        (**self).transmit(tx, bits)
    }
    fn tick(&mut self) {
        (**self).tick()
    }
    fn now(&self) -> u64 {
        (**self).now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_accessors() {
        let d = Delivery::new(vec![false, true, true, false]);
        assert!(!d.got(0));
        assert!(d.got(1));
        assert!(!d.got(9)); // out of range is "not received"
        assert_eq!(d.count(), 2);
    }
}
