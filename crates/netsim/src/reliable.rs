//! Reliable broadcast: deliver a packet to *all* listed targets, whatever
//! the channel does.
//!
//! The paper distinguishes plain transmissions ("broadcasts the packet
//! once") from *reliable* broadcasts ("ensures that all other terminals
//! receive it, e.g., through acknowledgments and retransmissions") and
//! conservatively assumes Eve receives every reliably-broadcast packet.
//! This module implements the retransmission loop with exact bit
//! accounting; the *Eve hears everything reliable* assumption is enforced
//! one layer up, in `thinair-core` (her knowledge set is updated from the
//! payload irrespective of her channel).

use crate::medium::{Medium, NodeId};
use crate::stats::{TxClass, TxStats};

/// Size of a link-layer acknowledgment in bits (an 802.11 ACK frame is 14
/// bytes).
pub const ACK_BITS: u64 = 14 * 8;

/// Outcome of a reliable broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReliableOutcome {
    /// Number of transmission attempts used (≥ 1).
    pub attempts: u32,
    /// Bits the transmitter spent (attempts × payload bits).
    pub payload_bits_sent: u64,
    /// Bits the receivers spent acknowledging.
    pub ack_bits_sent: u64,
}

/// Reliable broadcast failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReliableError {
    /// Some target never received the packet within the attempt budget;
    /// carries the stuck targets.
    Unreachable {
        /// Targets still missing the packet when the budget ran out.
        missing: Vec<NodeId>,
        /// The attempt budget that was exhausted.
        attempts: u32,
    },
}

impl std::fmt::Display for ReliableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReliableError::Unreachable { missing, attempts } => write!(
                f,
                "reliable broadcast gave up after {attempts} attempts; nodes {missing:?} never received"
            ),
        }
    }
}

impl std::error::Error for ReliableError {}

/// Retransmits a `bits`-bit packet from `tx` until every node in `targets`
/// has received at least one copy (or `max_attempts` is exhausted).
///
/// Every attempt is charged to `stats` as `class` bits from `tx`; each
/// target that receives a copy of an attempt answers with one ACK
/// ([`ACK_BITS`], charged as [`TxClass::Ack`]). Duplicate receptions are
/// ACKed too (the transmitter cannot know the ACK would be redundant).
pub fn reliable_broadcast(
    mut medium: impl Medium,
    stats: &mut TxStats,
    tx: NodeId,
    bits: u64,
    targets: &[NodeId],
    class: TxClass,
    max_attempts: u32,
) -> Result<ReliableOutcome, ReliableError> {
    assert!(!targets.contains(&tx), "transmitter cannot be its own target");
    assert!(max_attempts > 0, "need at least one attempt");
    let mut missing: Vec<NodeId> = targets.to_vec();
    let mut attempts = 0u32;
    let mut payload_bits_sent = 0u64;
    let mut ack_bits_sent = 0u64;
    while !missing.is_empty() {
        if attempts >= max_attempts {
            missing.sort_unstable();
            return Err(ReliableError::Unreachable { missing, attempts });
        }
        attempts += 1;
        let delivery = medium.transmit(tx, bits);
        stats.record(tx, class, bits);
        payload_bits_sent += bits;
        // Everyone still waiting that received this attempt ACKs it.
        missing.retain(|&node| {
            if delivery.got(node) {
                stats.record(node, TxClass::Ack, ACK_BITS);
                ack_bits_sent += ACK_BITS;
                false
            } else {
                true
            }
        });
    }
    Ok(ReliableOutcome { attempts, payload_bits_sent, ack_bits_sent })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iid::IidMedium;

    #[test]
    fn lossless_needs_one_attempt() {
        let mut m = IidMedium::symmetric(4, 0.0, 1);
        let mut stats = TxStats::new(4);
        let out = reliable_broadcast(&mut m, &mut stats, 0, 800, &[1, 2, 3], TxClass::Control, 10)
            .unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.payload_bits_sent, 800);
        assert_eq!(out.ack_bits_sent, 3 * ACK_BITS);
        assert_eq!(stats.of(0, TxClass::Control), 800);
        assert_eq!(stats.class_total(TxClass::Ack), 3 * ACK_BITS);
    }

    #[test]
    fn lossy_channel_retransmits_until_done() {
        let mut m = IidMedium::symmetric(3, 0.6, 7);
        let mut stats = TxStats::new(3);
        let out = reliable_broadcast(&mut m, &mut stats, 0, 800, &[1, 2], TxClass::Control, 10_000)
            .unwrap();
        assert!(out.attempts > 1, "0.6 erasure should need retries");
        assert_eq!(out.payload_bits_sent, out.attempts as u64 * 800);
        // Exactly one ACK per target (each leaves `missing` once).
        assert_eq!(out.ack_bits_sent, 2 * ACK_BITS);
    }

    #[test]
    fn dead_channel_reports_unreachable() {
        let mut m = IidMedium::symmetric(2, 1.0, 3);
        let mut stats = TxStats::new(2);
        let err =
            reliable_broadcast(&mut m, &mut stats, 0, 100, &[1], TxClass::Data, 5).unwrap_err();
        assert_eq!(err, ReliableError::Unreachable { missing: vec![1], attempts: 5 });
        // All five attempts are still charged: the bits went on air.
        assert_eq!(stats.of(0, TxClass::Data), 500);
    }

    #[test]
    fn empty_target_list_costs_nothing() {
        let mut m = IidMedium::symmetric(2, 0.5, 5);
        let mut stats = TxStats::new(2);
        let out =
            reliable_broadcast(&mut m, &mut stats, 0, 800, &[], TxClass::Control, 10).unwrap();
        assert_eq!(out.attempts, 0);
        assert_eq!(stats.total(), 0);
    }

    #[test]
    #[should_panic(expected = "own target")]
    fn self_target_rejected() {
        let mut m = IidMedium::symmetric(2, 0.0, 0);
        let mut stats = TxStats::new(2);
        let _ = reliable_broadcast(&mut m, &mut stats, 0, 8, &[0, 1], TxClass::Data, 1);
    }

    #[test]
    fn partial_progress_tracked() {
        // rx 1 perfect, rx 2 dead: error must name only node 2.
        let m = vec![vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0]];
        let mut m = IidMedium::from_matrix(m, 2);
        let mut stats = TxStats::new(3);
        let err = reliable_broadcast(&mut m, &mut stats, 0, 64, &[1, 2], TxClass::Control, 4)
            .unwrap_err();
        assert_eq!(err, ReliableError::Unreachable { missing: vec![2], attempts: 4 });
        // Node 1 ACKed once.
        assert_eq!(stats.of(1, TxClass::Ack), ACK_BITS);
    }
}
