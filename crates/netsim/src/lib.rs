//! A slotted broadcast wireless network simulator.
//!
//! This crate replaces the physical testbed of the HotNets'12 paper
//! ("Creating Shared Secrets out of Thin Air"): Asus WL-500gP routers
//! running 802.11g at 1 Mbps in a 14 m² room, jammed by WARP boards with
//! 22° directional antennas. The secret-agreement protocol in
//! `thinair-core` consumes exactly two things from the radio environment —
//! *which nodes received which packet* and *how many bits went over the
//! air* — so the simulator's contract is the small [`Medium`] trait, and
//! everything else here exists to produce physically plausible erasure
//! patterns:
//!
//! * [`geom`] — 2D positions and dB arithmetic.
//! * [`pathloss`] — log-distance path loss with per-link log-normal
//!   shadowing (frozen per link: the testbed is static, which is precisely
//!   why the paper's approach differs from channel-reciprocity schemes).
//! * [`fading`] — per-packet Rayleigh fading (small-scale variation).
//! * [`per`] — SINR → packet-error-rate curves (BPSK/DSSS BER-based, or a
//!   logistic/step approximation).
//! * [`interference`] — directional jamming beams, the 3-rows × 3-columns
//!   pattern set, and the rotation schedule of §4.
//! * [`channel`] — [`channel::GeoMedium`], the geometric medium tying the
//!   above together.
//! * [`iid`] — [`iid::IidMedium`], the idealized independent-erasure medium
//!   used for Figure 1 ("the packet erasure probability between Alice and
//!   each terminal, as well as Alice and Eve, is the same").
//! * [`erasure`] — pluggable per-link erasure models behind the
//!   [`erasure::ErasureProcess`] trait (iid, Gilbert-Elliott burst loss),
//!   consumable as deterministic patterns or as [`erasure::ErasureMedium`];
//!   the loss abstraction the `thinair-scenario` experiment engine sweeps.
//! * [`fault`] — fault injection: the legacy lossy-medium wrapper plus
//!   [`fault::FaultPlan`], the composable chaos-layer specification
//!   (drop, corrupt, duplicate, reorder, delay jitter, burst partitions,
//!   terminal crash / late join) whose every decision is a pure
//!   [`splitmix64`] function of `(seed, link, session, frame index)` —
//!   consumed by `thinair-net`'s simulated transport.
//! * [`reliable`] — reliable broadcast (ACK + retransmission) with exact
//!   bit accounting, the primitive the paper writes as "reliably
//!   broadcasts".
//! * [`stats`] — per-node transmitted-bit counters (the efficiency
//!   denominator).
//! * [`step`] — [`StepQueue`], the stable-id pending-delivery set behind
//!   the stepped transport mode: an external scheduler (the exhaustive
//!   interleaving explorer) enumerates in-flight frames and picks which
//!   fires next instead of FIFO delivery.
//! * [`trace`] — a bounded event log for debugging experiments.
//!
//! The simulator is deliberately synchronous and deterministic: every run
//! is a pure function of its configuration and RNG seed. (The tokio guide
//! this workspace follows is explicit that CPU-bound simulation does not
//! want an async runtime.)
//!
//! ```
//! use thinair_netsim::{ErasureMedium, ErasureModel, Medium};
//!
//! // Three nodes on independent Gilbert-Elliott burst-loss links.
//! let model = ErasureModel::GilbertElliott {
//!     p_good: 0.05,
//!     p_bad: 0.9,
//!     good_to_bad: 0.1,
//!     bad_to_good: 0.3,
//! };
//! let mut medium = ErasureMedium::symmetric(3, model, 42);
//! let delivery = medium.transmit(0, 800);
//! assert!(!delivery.got(0)); // half-duplex: no self-reception
//! assert_eq!(medium.now(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod erasure;
pub mod fading;
pub mod fault;
pub mod geom;
pub mod iid;
pub mod interference;
pub mod medium;
pub mod pathloss;
pub mod per;
pub mod reliable;
pub mod stats;
pub mod step;
pub mod trace;

pub use channel::{GeoMedium, GeoMediumConfig};
pub use erasure::{splitmix64, ErasureMedium, ErasureModel, ErasureProcess};
pub use fault::{
    AckBurstSpec, CrashSpec, DelaySpec, FaultPlan, FaultyMedium, FrameClass, FrameFaults, JoinSpec,
};
pub use geom::Point;
pub use iid::IidMedium;
pub use medium::{Delivery, Medium, NodeId};
pub use reliable::{reliable_broadcast, ReliableError, ReliableOutcome, ACK_BITS};
pub use stats::TxStats;
pub use step::StepQueue;
pub use trace::TracedMedium;
