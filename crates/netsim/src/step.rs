//! The stepped-delivery primitive behind exhaustive interleaving
//! exploration.
//!
//! A [`StepQueue`] holds in-flight items (frame deliveries, in the
//! `thinair-net` stepped transport) under **stable ids**: each `push`
//! mints a monotonically increasing id that survives arbitrary
//! removals, so an external scheduler can enumerate the pending set,
//! pick any element to fire next — or drop it, modelling an erasure —
//! and later name the same choice again when replaying or shrinking a
//! schedule. Iteration order is FIFO (insertion order), which doubles
//! as the deterministic default policy when no explicit choice is made.

use std::collections::VecDeque;

/// An id-addressable FIFO of pending items with stable ids.
///
/// ```
/// use thinair_netsim::step::StepQueue;
///
/// let mut q = StepQueue::new();
/// let a = q.push("to t1");
/// let b = q.push("to t2");
/// assert_eq!(q.remove(b), Some("to t2")); // out-of-order removal
/// assert_eq!(q.pop_front(), Some((a, "to t1")));
/// assert!(q.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct StepQueue<T> {
    entries: VecDeque<(u64, T)>,
    next_id: u64,
}

impl<T> Default for StepQueue<T> {
    fn default() -> Self {
        StepQueue::new()
    }
}

impl<T> StepQueue<T> {
    /// An empty queue; the first pushed item gets id 0.
    pub fn new() -> Self {
        StepQueue { entries: VecDeque::new(), next_id: 0 }
    }

    /// Appends `item` and returns its id. Ids are unique for the
    /// lifetime of the queue and strictly increase in push order.
    pub fn push(&mut self, item: T) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push_back((id, item));
        id
    }

    /// Removes and returns the item with `id`, preserving the relative
    /// order of everything else. `None` if it was already taken.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let pos = self.entries.iter().position(|(i, _)| *i == id)?;
        self.entries.remove(pos).map(|(_, item)| item)
    }

    /// Removes and returns the oldest entry (FIFO head) with its id.
    pub fn pop_front(&mut self) -> Option<(u64, T)> {
        self.entries.pop_front()
    }

    /// The item with `id`, if still pending.
    pub fn get(&self, id: u64) -> Option<&T> {
        self.entries.iter().find(|(i, _)| *i == id).map(|(_, item)| item)
    }

    /// Pending `(id, item)` pairs in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.entries.iter().map(|(id, item)| (*id, item))
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total items ever pushed (== the next id to be minted).
    pub fn pushed(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_across_removals() {
        let mut q = StepQueue::new();
        let a = q.push('a');
        let b = q.push('b');
        let c = q.push('c');
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(q.remove(b), Some('b'));
        assert_eq!(q.remove(b), None, "an id is spent once taken");
        // Survivors keep their ids and order; new pushes never reuse ids.
        let d = q.push('d');
        assert_eq!(d, 3);
        let order: Vec<_> = q.iter().map(|(id, &it)| (id, it)).collect();
        assert_eq!(order, vec![(a, 'a'), (c, 'c'), (d, 'd')]);
        assert_eq!(q.get(c), Some(&'c'));
        assert_eq!(q.get(b), None);
    }

    #[test]
    fn fifo_default_order() {
        let mut q = StepQueue::new();
        for i in 0..5u8 {
            q.push(i);
        }
        let mut drained = Vec::new();
        while let Some((id, item)) = q.pop_front() {
            drained.push((id, item));
        }
        assert_eq!(drained, (0..5).map(|i| (i as u64, i)).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.pushed(), 5);
    }
}
