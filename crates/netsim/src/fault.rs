//! Fault injection: from a blunt lossy wrapper to a composable plan.
//!
//! Two generations live here:
//!
//! * [`FaultyMedium`] — the original wrapper that degrades an inner
//!   [`Medium`] with extra drop/corrupt probabilities (the
//!   `--drop-chance` / `--corrupt-chance` knobs the networking guides
//!   recommend every stack expose). Corruption is treated as an erasure
//!   above the MAC, exactly like a failed 802.11 FCS.
//! * [`FaultPlan`] — the chaos-layer specification consumed by
//!   `thinair-net`'s simulated transport. A plan composes per-frame
//!   faults (drop, bit-corrupt, duplicate, reorder, delay jitter),
//!   per-link burst partitions, and per-node lifecycle faults (crash
//!   mid-session, late join). Like [`crate::erasure::ErasureModel`], a
//!   plan is a pure *specification*: every decision is a
//!   [`splitmix64`] hash of `(seed, link, session, frame index)` — the
//!   frame index being the frame's position in its sender's sequence —
//!   so a fault schedule is reproducible bit-for-bit, independent of
//!   task scheduling, and *consistent across retransmissions* (a frame
//!   the plan kills stays killed; that is what makes a dropped control
//!   frame behave like a burst partition instead of averaging out).
//!
//! The class taxonomy ([`FrameClass`]) gates which faults apply where:
//!
//! * `X` (phase-1 data plane): drop/corrupt/duplicate, never delay —
//!   x receptions must stay a pure function of the configuration, and a
//!   delayed x-packet racing the reception-report cut would make the
//!   outcome timing-dependent.
//! * `Z` (phase-2 fountain): all frame faults — the fountain absorbs
//!   loss and reordering by construction.
//! * `Control` / `Ack`: all frame faults — the reliable layer must
//!   absorb duplication, reordering and jitter, and permanently killed
//!   frames must surface as clean structured aborts, never hangs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::erasure::splitmix64;
use crate::medium::{Delivery, Medium, NodeId};

// ---------------------------------------------------------------------------
// The chaos-layer specification
// ---------------------------------------------------------------------------

/// What kind of frame a fault decision applies to (the injector's
/// abstraction of the `thinair-net` payload kinds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameClass {
    /// Reliable control plane (start barrier, reports, plan, done, fin).
    Control,
    /// Acknowledgement frames (keyed by the sequence they acknowledge).
    Ack,
    /// Phase-1 x-packets (plain broadcast data plane).
    X,
    /// Phase-2 z-fountain combos.
    Z,
}

/// Per-frame fault verdict for one `(link, frame)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameFaults {
    /// Suppress delivery entirely.
    pub drop: bool,
    /// Flip bits in the encoded frame before delivery (the receiver's
    /// CRC/decode must reject it — asserted by tests, never assumed).
    pub corrupt: bool,
    /// Deliver a second copy.
    pub duplicate: bool,
    /// Hold the frame back for this many subsequent transmissions
    /// (0 = deliver immediately; 1 = classic reordering swap).
    pub delay: u32,
}

/// Delay-jitter knob: with probability `prob`, hold a frame back by
/// `1..=max_frames` transmissions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelaySpec {
    /// Probability that a frame is jittered.
    pub prob: f64,
    /// Maximum hold-back, in subsequent transmissions.
    pub max_frames: u32,
}

/// Terminal-crash knob: a selected node goes permanently silent (sends
/// swallowed, deliveries suppressed) for one session, the moment it
/// transmits its frame with sequence number `after_seq` — a protocol
/// milestone, so the crash point is scheduler-independent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashSpec {
    /// Probability that a given `(session, terminal)` crashes.
    pub prob: f64,
    /// Restrict the fault to one node id (`None`: any terminal, chosen
    /// by hash).
    pub node: Option<usize>,
    /// The sender-sequence number whose transmission triggers the crash
    /// (must be `>= 1`; acks carry seq 0 and never trigger).
    pub after_seq: u32,
}

/// Late-join knob: a selected node is deaf (deliveries suppressed) for
/// the first `after_frames` frames addressed to it in that session,
/// then wakes. Because the coordinator's start barrier blocks all other
/// traffic until the sleeper acknowledges `Start`, the suppressed
/// frames are retransmitted `Start` copies — so a late join is a
/// *survivable* fault (the barrier brings the node up to speed and the
/// session completes), unlike a crash.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinSpec {
    /// Probability that a given `(session, terminal)` joins late.
    pub prob: f64,
    /// Restrict the fault to one node id (`None`: any terminal).
    pub node: Option<usize>,
    /// How many deliveries to the node are suppressed before it wakes.
    pub after_frames: u32,
}

/// ACK-loss burst knob: with probability `prob` per `(session, link)`,
/// the first `len` acknowledgement frames delivered over that directed
/// link are suppressed — the data got through, the receipts did not.
/// This is the adversarial case for the sender's closed loop: Karn's
/// rule forbids RTT samples from the retransmissions the burst forces,
/// and the backoff must re-arm (not keep compounding) once the burst
/// ends and ACKs flow again.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AckBurstSpec {
    /// Probability that a given `(session, link)` suffers the burst.
    pub prob: f64,
    /// How many ACK deliveries are suppressed before the link heals.
    pub len: u32,
}

/// A composable adversarial fault schedule.
///
/// All probabilities are per-frame (or per `(session, link)` /
/// `(session, node)` for partitions and lifecycle faults). The default
/// plan injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-frame permanent drop probability. Keyed by frame identity,
    /// so retransmissions of a dropped frame are dropped too — a killed
    /// control frame becomes a deterministic abort, not noise.
    pub drop: f64,
    /// Per-frame bit-corruption probability (same permanence as `drop`;
    /// exercises the CRC/decode rejection path on every copy).
    pub corrupt: f64,
    /// Per-frame duplication probability.
    pub duplicate: f64,
    /// Per-frame probability of a one-slot reorder (hold behind the
    /// next transmission). Not applied to [`FrameClass::X`].
    pub reorder: f64,
    /// Delay jitter. Not applied to [`FrameClass::X`].
    pub delay: Option<DelaySpec>,
    /// Per-`(session, link)` burst-partition probability: a partitioned
    /// directed link delivers nothing for that entire session.
    pub partition: f64,
    /// Terminal crash mid-session.
    pub crash: Option<CrashSpec>,
    /// Terminal joining late.
    pub late_join: Option<JoinSpec>,
    /// A burst of pure ACK loss at the start of a directed link.
    pub ack_burst: Option<AckBurstSpec>,
}

// Distinct salts per fault dimension so the decisions are independent.
const SALT_DROP: u64 = 0xD0;
const SALT_CORRUPT: u64 = 0xC0;
const SALT_DUP: u64 = 0xD7;
const SALT_REORDER: u64 = 0x0E;
const SALT_DELAY: u64 = 0xDE;
const SALT_PARTITION: u64 = 0xBA;
const SALT_CRASH: u64 = 0xCA;
const SALT_JOIN: u64 = 0x10;
const SALT_ACK_BURST: u64 = 0xAB;

/// Mixes a fault-decision key. `index` is the frame's position in its
/// sender's stream (its sequence number; for acks, the acked sequence).
fn key(seed: u64, salt: u64, link: (usize, usize), session: u64, index: u64) -> u64 {
    splitmix64(
        seed ^ salt.wrapping_mul(0x9FB2_1C65_1E98_DF25)
            ^ (link.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (link.1 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ session.rotate_left(17)
            ^ index.wrapping_mul(0xA24B_AED4_963E_E407),
    )
}

impl FrameClass {
    /// A per-class discriminant folded into every verdict key, so a
    /// z-combo with index `k` and a control frame with seq `k` on the
    /// same link draw independent fates.
    fn salt(self) -> u64 {
        match self {
            FrameClass::Control => 0x11,
            FrameClass::Ack => 0x22,
            FrameClass::X => 0x33,
            FrameClass::Z => 0x44,
        }
    }
}

/// Uniform draw in `[0, 1)` from a mixed key.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic randomness for *which bit* an injector flips in a
/// frame whose corrupt verdict fired — kept here, next to the verdict's
/// own key mixing, so the two streams can never drift apart. The
/// caller reduces the value modulo the frame's bit length.
pub fn corrupt_bit_seed(seed: u64, link: (usize, usize), session: u64, index: u64) -> u64 {
    key(seed, SALT_CORRUPT ^ 0xB1_7500, link, session, index)
}

impl FaultPlan {
    /// The no-fault plan (also [`Default`]).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Checks every probability and spec parameter.
    pub fn validate(&self) -> Result<(), &'static str> {
        let unit_ok = |p: f64| (0.0..=1.0).contains(&p);
        if ![self.drop, self.corrupt, self.duplicate, self.reorder, self.partition]
            .iter()
            .all(|&p| unit_ok(p))
        {
            return Err("fault probability out of range");
        }
        if let Some(d) = self.delay {
            if !unit_ok(d.prob) {
                return Err("delay probability out of range");
            }
            if d.max_frames == 0 {
                return Err("delay max_frames must be >= 1");
            }
        }
        if let Some(c) = self.crash {
            if !unit_ok(c.prob) {
                return Err("crash probability out of range");
            }
            if c.after_seq == 0 {
                return Err("crash after_seq must be >= 1 (seq 0 is reserved for acks)");
            }
        }
        if let Some(j) = self.late_join {
            if !unit_ok(j.prob) {
                return Err("late-join probability out of range");
            }
            if j.after_frames == 0 {
                return Err("late-join after_frames must be >= 1");
            }
        }
        if let Some(a) = self.ack_burst {
            if !unit_ok(a.prob) {
                return Err("ack-burst probability out of range");
            }
            if a.len == 0 {
                return Err("ack-burst len must be >= 1");
            }
        }
        Ok(())
    }

    /// A short stable tag for scenario names (`"clean"` for no faults).
    pub fn tag(&self) -> String {
        if self.is_none() {
            return "clean".into();
        }
        let mut parts = Vec::new();
        if self.drop > 0.0 {
            parts.push(format!("dr{:.2}", self.drop));
        }
        if self.corrupt > 0.0 {
            parts.push(format!("co{:.2}", self.corrupt));
        }
        if self.duplicate > 0.0 {
            parts.push(format!("du{:.2}", self.duplicate));
        }
        if self.reorder > 0.0 {
            parts.push(format!("re{:.2}", self.reorder));
        }
        if let Some(d) = self.delay {
            parts.push(format!("je{:.2}x{}", d.prob, d.max_frames));
        }
        if self.partition > 0.0 {
            parts.push(format!("pa{:.2}", self.partition));
        }
        if let Some(c) = self.crash {
            parts.push(format!("cr{:.2}@{}", c.prob, c.after_seq));
        }
        if let Some(j) = self.late_join {
            parts.push(format!("lj{:.2}@{}", j.prob, j.after_frames));
        }
        if let Some(a) = self.ack_burst {
            parts.push(format!("ab{:.2}x{}", a.prob, a.len));
        }
        parts.join("_")
    }

    /// The plan's parameters as a fixed-order list (for digests and the
    /// soak artifact).
    pub fn params(&self) -> Vec<f64> {
        let d = self.delay.unwrap_or(DelaySpec { prob: 0.0, max_frames: 0 });
        let c = self.crash.unwrap_or(CrashSpec { prob: 0.0, node: None, after_seq: 0 });
        let j = self.late_join.unwrap_or(JoinSpec { prob: 0.0, node: None, after_frames: 0 });
        let a = self.ack_burst.unwrap_or(AckBurstSpec { prob: 0.0, len: 0 });
        // New axes append at the end: digests of older plans stay stable.
        vec![
            self.drop,
            self.corrupt,
            self.duplicate,
            self.reorder,
            d.prob,
            d.max_frames as f64,
            self.partition,
            c.prob,
            c.node.map(|n| n as f64).unwrap_or(-1.0),
            c.after_seq as f64,
            j.prob,
            j.node.map(|n| n as f64).unwrap_or(-1.0),
            j.after_frames as f64,
            a.prob,
            a.len as f64,
        ]
    }

    /// The fault verdict for one frame instance on one directed link.
    ///
    /// Pure function of `(seed, link, session, index, class)`: the same
    /// frame retransmitted over the same link draws the identical
    /// verdict. `index` is the frame's sender-sequence number (for
    /// acks: the acknowledged sequence), i.e. its index in the sender's
    /// frame stream.
    pub fn frame_faults(
        &self,
        seed: u64,
        link: (usize, usize),
        session: u64,
        index: u64,
        class: FrameClass,
    ) -> FrameFaults {
        let mut f = FrameFaults::default();
        let ck = |salt: u64| key(seed, salt ^ class.salt().rotate_left(40), link, session, index);
        if self.drop > 0.0 && unit(ck(SALT_DROP)) < self.drop {
            f.drop = true;
            return f;
        }
        if self.corrupt > 0.0 && unit(ck(SALT_CORRUPT)) < self.corrupt {
            f.corrupt = true;
        }
        if self.duplicate > 0.0 && unit(ck(SALT_DUP)) < self.duplicate {
            f.duplicate = true;
        }
        // Delay-class faults never touch x-packets (see module docs).
        if class != FrameClass::X {
            if self.reorder > 0.0 && unit(ck(SALT_REORDER)) < self.reorder {
                f.delay = 1;
            }
            if let Some(d) = self.delay {
                let h = ck(SALT_DELAY);
                if unit(h) < d.prob {
                    f.delay = f.delay.max(1 + (h >> 33) as u32 % d.max_frames);
                }
            }
        }
        f
    }

    /// Whether the directed link is blacked out for the whole session.
    pub fn partitioned(&self, seed: u64, link: (usize, usize), session: u64) -> bool {
        self.partition > 0.0 && unit(key(seed, SALT_PARTITION, link, session, 0)) < self.partition
    }

    /// If `(session, node)` is scheduled to crash, the sender-sequence
    /// number whose transmission triggers it.
    pub fn crash_after(&self, seed: u64, session: u64, node: usize) -> Option<u32> {
        let c = self.crash?;
        if let Some(only) = c.node {
            if only != node {
                return None;
            }
        }
        let h = key(seed, SALT_CRASH, (node, node), session, 0);
        (unit(h) < c.prob).then_some(c.after_seq)
    }

    /// If `(session, node)` is scheduled to join late, the number of
    /// deliveries suppressed before it wakes.
    pub fn join_after(&self, seed: u64, session: u64, node: usize) -> Option<u32> {
        let j = self.late_join?;
        if let Some(only) = j.node {
            if only != node {
                return None;
            }
        }
        let h = key(seed, SALT_JOIN, (node, node), session, 0);
        (unit(h) < j.prob).then_some(j.after_frames)
    }

    /// If the directed link draws the ACK-loss burst for this session,
    /// how many ACK deliveries are suppressed before the link heals.
    pub fn ack_burst_len(&self, seed: u64, link: (usize, usize), session: u64) -> Option<u32> {
        let a = self.ack_burst?;
        let h = key(seed, SALT_ACK_BURST, link, session, 0);
        (unit(h) < a.prob).then_some(a.len)
    }
}

// ---------------------------------------------------------------------------
// The legacy medium wrapper
// ---------------------------------------------------------------------------

/// A [`Medium`] wrapper that injects extra packet loss.
#[derive(Clone, Debug)]
pub struct FaultyMedium<M> {
    inner: M,
    /// Extra probability that a delivered packet is dropped anyway.
    pub drop_chance: f64,
    /// Extra probability that a delivered packet is corrupted (FCS fails →
    /// counted in `corrupted`, delivered as lost).
    pub corrupt_chance: f64,
    rng: StdRng,
    /// Number of deliveries suppressed by `drop_chance`.
    pub dropped: u64,
    /// Number of deliveries suppressed by `corrupt_chance`.
    pub corrupted: u64,
}

impl<M: Medium> FaultyMedium<M> {
    /// Wraps `inner` with the given fault probabilities.
    ///
    /// # Panics
    /// Panics when a probability is outside `[0, 1]`.
    pub fn new(inner: M, drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance), "drop_chance out of range");
        assert!((0.0..=1.0).contains(&corrupt_chance), "corrupt_chance out of range");
        FaultyMedium {
            inner,
            drop_chance,
            corrupt_chance,
            rng: StdRng::seed_from_u64(seed),
            dropped: 0,
            corrupted: 0,
        }
    }

    /// The wrapped medium.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The wrapped medium, mutably.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }
}

impl<M: Medium> Medium for FaultyMedium<M> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn transmit(&mut self, tx: NodeId, bits: u64) -> Delivery {
        let mut d = self.inner.transmit(tx, bits);
        for got in d.received.iter_mut() {
            if *got {
                let roll: f64 = self.rng.gen();
                if roll < self.drop_chance {
                    *got = false;
                    self.dropped += 1;
                } else if roll < self.drop_chance + self.corrupt_chance {
                    *got = false;
                    self.corrupted += 1;
                }
            }
        }
        d
    }

    fn tick(&mut self) {
        self.inner.tick()
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iid::IidMedium;

    #[test]
    fn zero_faults_is_transparent() {
        let mut plain = IidMedium::symmetric(3, 0.2, 5);
        let mut wrapped = FaultyMedium::new(IidMedium::symmetric(3, 0.2, 5), 0.0, 0.0, 9);
        for _ in 0..200 {
            assert_eq!(plain.transmit(0, 8), wrapped.transmit(0, 8));
        }
        assert_eq!(wrapped.dropped, 0);
        assert_eq!(wrapped.corrupted, 0);
    }

    #[test]
    fn drop_chance_thins_deliveries() {
        let mut m = FaultyMedium::new(IidMedium::symmetric(2, 0.0, 1), 0.5, 0.0, 2);
        let n = 10_000;
        let got = (0..n).filter(|_| m.transmit(0, 8).got(1)).count();
        let rate = got as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
        assert_eq!(m.dropped + got as u64, n as u64);
        assert_eq!(m.corrupted, 0);
    }

    #[test]
    fn corruption_counted_separately() {
        let mut m = FaultyMedium::new(IidMedium::symmetric(2, 0.0, 1), 0.0, 0.3, 3);
        let n = 10_000;
        let got = (0..n).filter(|_| m.transmit(0, 8).got(1)).count();
        assert_eq!(m.corrupted + got as u64, n as u64);
        assert!(m.corrupted > 2_000, "corrupted {}", m.corrupted);
        assert_eq!(m.dropped, 0);
    }

    #[test]
    fn total_loss_blocks_everything() {
        let mut m = FaultyMedium::new(IidMedium::symmetric(2, 0.0, 1), 1.0, 0.0, 4);
        for _ in 0..50 {
            assert!(!m.transmit(0, 8).got(1));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_chance_rejected() {
        let _ = FaultyMedium::new(IidMedium::symmetric(2, 0.0, 1), -0.1, 0.0, 0);
    }

    // -- FaultPlan ----------------------------------------------------------

    fn busy_plan() -> FaultPlan {
        FaultPlan {
            drop: 0.2,
            corrupt: 0.1,
            duplicate: 0.3,
            reorder: 0.2,
            delay: Some(DelaySpec { prob: 0.25, max_frames: 4 }),
            partition: 0.1,
            crash: Some(CrashSpec { prob: 0.5, node: None, after_seq: 1 }),
            late_join: Some(JoinSpec { prob: 0.5, node: None, after_frames: 5 }),
            ack_burst: Some(AckBurstSpec { prob: 0.5, len: 6 }),
        }
    }

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert_eq!(p.validate(), Ok(()));
        for idx in 0..200u64 {
            let f = p.frame_faults(1, (0, 1), 9, idx, FrameClass::Control);
            assert_eq!(f, FrameFaults::default());
        }
        assert!(!p.partitioned(1, (0, 1), 9));
        assert_eq!(p.crash_after(1, 9, 2), None);
        assert_eq!(p.join_after(1, 9, 2), None);
        assert_eq!(p.ack_burst_len(1, (0, 1), 9), None);
        assert_eq!(p.tag(), "clean");
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(FaultPlan { drop: 1.5, ..FaultPlan::none() }.validate().is_err());
        assert!(FaultPlan {
            delay: Some(DelaySpec { prob: 0.5, max_frames: 0 }),
            ..FaultPlan::none()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            crash: Some(CrashSpec { prob: 0.5, node: None, after_seq: 0 }),
            ..FaultPlan::none()
        }
        .validate()
        .is_err());
        assert!(busy_plan().validate().is_ok());
    }

    #[test]
    fn verdicts_are_deterministic_and_seed_sensitive() {
        let p = busy_plan();
        let a: Vec<FrameFaults> =
            (0..500).map(|i| p.frame_faults(7, (0, 2), 3, i, FrameClass::Control)).collect();
        let b: Vec<FrameFaults> =
            (0..500).map(|i| p.frame_faults(7, (0, 2), 3, i, FrameClass::Control)).collect();
        assert_eq!(a, b, "same key, same verdicts");
        let c: Vec<FrameFaults> =
            (0..500).map(|i| p.frame_faults(8, (0, 2), 3, i, FrameClass::Control)).collect();
        assert_ne!(a, c, "a different seed reshuffles the schedule");
        let d: Vec<FrameFaults> =
            (0..500).map(|i| p.frame_faults(7, (0, 1), 3, i, FrameClass::Control)).collect();
        assert_ne!(a, d, "links draw independent schedules");
    }

    #[test]
    fn fault_rates_are_plausible() {
        let p = FaultPlan { drop: 0.3, duplicate: 0.2, ..FaultPlan::none() };
        let n = 20_000u64;
        let mut drops = 0;
        let mut dups = 0;
        for i in 0..n {
            let f = p.frame_faults(11, (1, 0), 5, i, FrameClass::Z);
            drops += f.drop as u64;
            dups += f.duplicate as u64;
        }
        let dr = drops as f64 / n as f64;
        let du = dups as f64 / n as f64;
        assert!((dr - 0.3).abs() < 0.02, "drop rate {dr}");
        // Duplication is only evaluated for non-dropped frames.
        assert!((du - 0.2 * 0.7).abs() < 0.02, "dup rate {du}");
    }

    #[test]
    fn frame_classes_draw_independent_verdicts() {
        // z-combos carry their combo index as frame seq, so a z frame
        // and a control frame can share (link, session, index); their
        // fates must still be independent.
        let p = FaultPlan { drop: 0.5, ..FaultPlan::none() };
        let control: Vec<bool> =
            (0..500).map(|i| p.frame_faults(5, (0, 1), 2, i, FrameClass::Control).drop).collect();
        let z: Vec<bool> =
            (0..500).map(|i| p.frame_faults(5, (0, 1), 2, i, FrameClass::Z).drop).collect();
        assert_ne!(control, z, "classes must not share drop schedules");
        let agree = control.iter().zip(z.iter()).filter(|(a, b)| a == b).count();
        assert!((150..350).contains(&agree), "correlated schedules: {agree}/500 agree");
    }

    #[test]
    fn x_frames_are_never_delayed() {
        let p = FaultPlan {
            reorder: 1.0,
            delay: Some(DelaySpec { prob: 1.0, max_frames: 8 }),
            ..FaultPlan::none()
        };
        for i in 0..100 {
            assert_eq!(p.frame_faults(3, (0, 1), 2, i, FrameClass::X).delay, 0);
            assert!(p.frame_faults(3, (0, 1), 2, i, FrameClass::Z).delay >= 1);
        }
    }

    #[test]
    fn delay_bounds_respect_the_spec() {
        let p =
            FaultPlan { delay: Some(DelaySpec { prob: 1.0, max_frames: 5 }), ..FaultPlan::none() };
        let mut seen_max = 0;
        for i in 0..2_000 {
            let d = p.frame_faults(9, (2, 1), 4, i, FrameClass::Control).delay;
            assert!((1..=5).contains(&d), "delay {d}");
            seen_max = seen_max.max(d);
        }
        assert_eq!(seen_max, 5, "the full jitter range should be exercised");
    }

    #[test]
    fn lifecycle_faults_select_nodes_deterministically() {
        let p = busy_plan();
        for node in 0..6 {
            for session in 1..40u64 {
                assert_eq!(p.crash_after(5, session, node), p.crash_after(5, session, node));
                assert_eq!(p.join_after(5, session, node), p.join_after(5, session, node));
            }
        }
        // prob 0.5 over 40 sessions: both outcomes must occur.
        let crashed = (1..=40u64).filter(|&s| p.crash_after(5, s, 1).is_some()).count();
        assert!(crashed > 5 && crashed < 35, "crashed {crashed}/40");
        // The node filter restricts the fault to one id.
        let only2 = FaultPlan {
            crash: Some(CrashSpec { prob: 1.0, node: Some(2), after_seq: 3 }),
            ..FaultPlan::none()
        };
        assert_eq!(only2.crash_after(1, 1, 2), Some(3));
        assert_eq!(only2.crash_after(1, 1, 1), None);
    }

    #[test]
    fn partitions_are_per_session_per_link() {
        let p = FaultPlan { partition: 0.5, ..FaultPlan::none() };
        let hits = (1..=200u64).filter(|&s| p.partitioned(3, (0, 1), s)).count();
        assert!(hits > 60 && hits < 140, "partition rate {hits}/200");
        // Directionality matters.
        let fwd: Vec<bool> = (1..=50).map(|s| p.partitioned(3, (0, 1), s)).collect();
        let rev: Vec<bool> = (1..=50).map(|s| p.partitioned(3, (1, 0), s)).collect();
        assert_ne!(fwd, rev);
    }

    #[test]
    fn tags_name_the_active_axes() {
        let t = busy_plan().tag();
        let needles =
            ["dr0.20", "co0.10", "du0.30", "re0.20", "je0.25x4", "pa0.10", "cr", "lj", "ab0.50x6"];
        for needle in needles {
            assert!(t.contains(needle), "{t} missing {needle}");
        }
    }

    #[test]
    fn ack_bursts_are_per_session_per_link() {
        let p =
            FaultPlan { ack_burst: Some(AckBurstSpec { prob: 0.5, len: 4 }), ..FaultPlan::none() };
        for session in 1..=50u64 {
            assert_eq!(p.ack_burst_len(3, (0, 1), session), p.ack_burst_len(3, (0, 1), session));
        }
        let hits = (1..=200u64).filter(|&s| p.ack_burst_len(3, (0, 1), s).is_some()).count();
        assert!(hits > 60 && hits < 140, "ack-burst rate {hits}/200");
        // Directionality matters: the receipts die on one leg only.
        let fwd: Vec<bool> = (1..=50).map(|s| p.ack_burst_len(3, (0, 1), s).is_some()).collect();
        let rev: Vec<bool> = (1..=50).map(|s| p.ack_burst_len(3, (1, 0), s).is_some()).collect();
        assert_ne!(fwd, rev);
        // Certainty heals after exactly `len` suppressions.
        let sure =
            FaultPlan { ack_burst: Some(AckBurstSpec { prob: 1.0, len: 4 }), ..FaultPlan::none() };
        assert_eq!(sure.ack_burst_len(9, (2, 0), 7), Some(4));
    }
}
