//! Fault injection on top of any medium.
//!
//! Mirrors the `--drop-chance` / `--corrupt-chance` knobs that the
//! networking guides (smoltcp's examples) recommend every stack expose:
//! a wrapper that degrades an inner [`Medium`] so tests can exercise
//! adverse conditions without touching the physical model. Corrupted
//! packets are counted separately but treated as erasures — a real 802.11
//! receiver drops frames whose FCS fails, so above the MAC a corruption
//! *is* a loss.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::medium::{Delivery, Medium, NodeId};

/// A [`Medium`] wrapper that injects extra packet loss.
#[derive(Clone, Debug)]
pub struct FaultyMedium<M> {
    inner: M,
    /// Extra probability that a delivered packet is dropped anyway.
    pub drop_chance: f64,
    /// Extra probability that a delivered packet is corrupted (FCS fails →
    /// counted in `corrupted`, delivered as lost).
    pub corrupt_chance: f64,
    rng: StdRng,
    /// Number of deliveries suppressed by `drop_chance`.
    pub dropped: u64,
    /// Number of deliveries suppressed by `corrupt_chance`.
    pub corrupted: u64,
}

impl<M: Medium> FaultyMedium<M> {
    /// Wraps `inner` with the given fault probabilities.
    ///
    /// # Panics
    /// Panics when a probability is outside `[0, 1]`.
    pub fn new(inner: M, drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance), "drop_chance out of range");
        assert!((0.0..=1.0).contains(&corrupt_chance), "corrupt_chance out of range");
        FaultyMedium {
            inner,
            drop_chance,
            corrupt_chance,
            rng: StdRng::seed_from_u64(seed),
            dropped: 0,
            corrupted: 0,
        }
    }

    /// The wrapped medium.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The wrapped medium, mutably.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }
}

impl<M: Medium> Medium for FaultyMedium<M> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn transmit(&mut self, tx: NodeId, bits: u64) -> Delivery {
        let mut d = self.inner.transmit(tx, bits);
        for got in d.received.iter_mut() {
            if *got {
                let roll: f64 = self.rng.gen();
                if roll < self.drop_chance {
                    *got = false;
                    self.dropped += 1;
                } else if roll < self.drop_chance + self.corrupt_chance {
                    *got = false;
                    self.corrupted += 1;
                }
            }
        }
        d
    }

    fn tick(&mut self) {
        self.inner.tick()
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iid::IidMedium;

    #[test]
    fn zero_faults_is_transparent() {
        let mut plain = IidMedium::symmetric(3, 0.2, 5);
        let mut wrapped = FaultyMedium::new(IidMedium::symmetric(3, 0.2, 5), 0.0, 0.0, 9);
        for _ in 0..200 {
            assert_eq!(plain.transmit(0, 8), wrapped.transmit(0, 8));
        }
        assert_eq!(wrapped.dropped, 0);
        assert_eq!(wrapped.corrupted, 0);
    }

    #[test]
    fn drop_chance_thins_deliveries() {
        let mut m = FaultyMedium::new(IidMedium::symmetric(2, 0.0, 1), 0.5, 0.0, 2);
        let n = 10_000;
        let got = (0..n).filter(|_| m.transmit(0, 8).got(1)).count();
        let rate = got as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
        assert_eq!(m.dropped + got as u64, n as u64);
        assert_eq!(m.corrupted, 0);
    }

    #[test]
    fn corruption_counted_separately() {
        let mut m = FaultyMedium::new(IidMedium::symmetric(2, 0.0, 1), 0.0, 0.3, 3);
        let n = 10_000;
        let got = (0..n).filter(|_| m.transmit(0, 8).got(1)).count();
        assert_eq!(m.corrupted + got as u64, n as u64);
        assert!(m.corrupted > 2_000, "corrupted {}", m.corrupted);
        assert_eq!(m.dropped, 0);
    }

    #[test]
    fn total_loss_blocks_everything() {
        let mut m = FaultyMedium::new(IidMedium::symmetric(2, 0.0, 1), 1.0, 0.0, 4);
        for _ in 0..50 {
            assert!(!m.transmit(0, 8).got(1));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_chance_rejected() {
        let _ = FaultyMedium::new(IidMedium::symmetric(2, 0.0, 1), -0.1, 0.0, 0);
    }
}
