//! 2D geometry and decibel arithmetic.

/// A point in the plane, in metres.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// x coordinate (metres).
    pub x: f64,
    /// y coordinate (metres).
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Azimuth (degrees in `[-180, 180]`, measured counter-clockwise from
    /// the +x axis) of the direction from `self` towards `other`.
    pub fn azimuth_to(&self, other: &Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x).to_degrees()
    }
}

/// Converts a power in milliwatts to dBm.
///
/// # Panics
/// Panics when `mw` is not strictly positive.
pub fn mw_to_dbm(mw: f64) -> f64 {
    assert!(mw > 0.0, "power must be positive to express in dBm");
    10.0 * mw.log10()
}

/// Converts a power in dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Sums powers expressed in dBm, returning dBm (i.e., converts to linear,
/// adds, converts back). An empty slice yields negative infinity (no
/// power).
pub fn sum_dbm(powers: &[f64]) -> f64 {
    if powers.is_empty() {
        return f64::NEG_INFINITY;
    }
    mw_to_dbm(powers.iter().map(|&p| dbm_to_mw(p)).sum())
}

/// Normalizes an angle difference to `[-180, 180]` degrees.
pub fn angle_diff_deg(a: f64, b: f64) -> f64 {
    let mut d = (a - b) % 360.0;
    if d > 180.0 {
        d -= 360.0;
    }
    if d < -180.0 {
        d += 360.0;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn azimuth_cardinal_directions() {
        let o = Point::new(0.0, 0.0);
        assert!((o.azimuth_to(&Point::new(1.0, 0.0)) - 0.0).abs() < 1e-9);
        assert!((o.azimuth_to(&Point::new(0.0, 1.0)) - 90.0).abs() < 1e-9);
        assert!((o.azimuth_to(&Point::new(-1.0, 0.0)).abs() - 180.0).abs() < 1e-9);
        assert!((o.azimuth_to(&Point::new(0.0, -1.0)) + 90.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_round_trip() {
        for dbm in [-100.0, -30.0, 0.0, 3.0, 20.0] {
            let back = mw_to_dbm(dbm_to_mw(dbm));
            assert!((back - dbm).abs() < 1e-9, "{dbm}");
        }
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(3.0) - 1.9952623).abs() < 1e-6);
    }

    #[test]
    fn sum_dbm_of_equal_powers_adds_3db() {
        let s = sum_dbm(&[-50.0, -50.0]);
        assert!((s - (-50.0 + 10.0 * 2f64.log10())).abs() < 1e-9);
        assert_eq!(sum_dbm(&[]), f64::NEG_INFINITY);
        // A dominant term swamps a tiny one.
        let s = sum_dbm(&[-30.0, -90.0]);
        assert!((s + 30.0).abs() < 0.01);
    }

    #[test]
    fn angle_diff_wraps() {
        assert!((angle_diff_deg(170.0, -170.0) - (-20.0)).abs() < 1e-9);
        assert!((angle_diff_deg(-170.0, 170.0) - 20.0).abs() < 1e-9);
        assert!((angle_diff_deg(10.0, 350.0) - 20.0).abs() < 1e-9);
        assert!(angle_diff_deg(90.0, 90.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_power_has_no_dbm() {
        let _ = mw_to_dbm(0.0);
    }
}
