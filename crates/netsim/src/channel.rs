//! The geometric broadcast medium: positions + path loss + fading +
//! interference → per-packet delivery outcomes.
//!
//! [`GeoMedium`] is the simulator's stand-in for the paper's physical
//! radio room. For every transmission it computes, per receiver,
//!
//! ```text
//! SINR = S / (N + I)
//!   S = tx power − path loss(link) − shadowing(link) + fading(packet)
//!   N = thermal noise floor
//!   I = Σ active jamming beams at the receiver (+ its own fading)
//! ```
//!
//! and erases the packet with probability `PER(SINR, bits)`. Shadowing is
//! frozen per (unordered) link at construction — the room is static —
//! while fading re-rolls every packet, which is what makes erasures
//! probabilistic rather than purely geometric.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fading::Fading;
use crate::geom::{dbm_to_mw, mw_to_dbm, Point};
use crate::interference::InterferenceSchedule;
use crate::medium::{Delivery, Medium, NodeId};
use crate::pathloss::PathLoss;
use crate::per::PerModel;

/// Everything needed to instantiate a [`GeoMedium`].
#[derive(Clone, Debug)]
pub struct GeoMediumConfig {
    /// Node positions (terminals first, eavesdropper by convention last).
    pub positions: Vec<Point>,
    /// Transmit power of every node, dBm (paper: 3 dBm).
    pub tx_power_dbm: f64,
    /// Thermal noise floor, dBm (≈ −94 dBm for a 20 MHz 802.11 receiver
    /// with a 7 dB noise figure).
    pub noise_floor_dbm: f64,
    /// Large-scale propagation model.
    pub pathloss: PathLoss,
    /// Per-packet small-scale fading.
    pub fading: Fading,
    /// SINR → PER curve.
    pub per_model: PerModel,
    /// Jamming beams and their rotation schedule.
    pub interference: InterferenceSchedule,
    /// RNG seed; two media with equal configs and seeds behave
    /// identically.
    pub seed: u64,
}

impl GeoMediumConfig {
    /// A reasonable default configuration for the given node positions:
    /// paper-faithful radio constants and no interference.
    pub fn new(positions: Vec<Point>) -> Self {
        GeoMediumConfig {
            positions,
            tx_power_dbm: 3.0,
            noise_floor_dbm: -94.0,
            pathloss: PathLoss::default(),
            fading: Fading::Rayleigh,
            per_model: PerModel::BpskBer,
            interference: InterferenceSchedule::off(),
            seed: 0,
        }
    }
}

/// The geometric broadcast medium. See the module docs.
#[derive(Clone, Debug)]
pub struct GeoMedium {
    cfg: GeoMediumConfig,
    /// Frozen shadowing per unordered node pair, dB; indexed `i * n + j`.
    shadowing_db: Vec<f64>,
    rng: StdRng,
    /// Packet counter; drives the interference rotation.
    t: u64,
}

impl GeoMedium {
    /// Builds the medium, drawing the frozen per-link shadowing from the
    /// config seed.
    pub fn new(cfg: GeoMediumConfig) -> Self {
        let n = cfg.positions.len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut shadowing_db = vec![0.0; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let s = cfg.pathloss.draw_shadowing_db(&mut rng);
                shadowing_db[i * n + j] = s;
                shadowing_db[j * n + i] = s; // links are reciprocal
            }
        }
        GeoMedium { cfg, shadowing_db, rng, t: 0 }
    }

    /// Access to the configuration (positions etc.).
    pub fn config(&self) -> &GeoMediumConfig {
        &self.cfg
    }

    /// Mean (pre-fading) SINR in dB on the link `tx → rx` at packet
    /// counter `t`. Exposed for tests and calibration tooling.
    pub fn mean_sinr_db(&self, tx: NodeId, rx: NodeId, t: u64) -> f64 {
        let n = self.cfg.positions.len();
        let d = self.cfg.positions[tx].distance(&self.cfg.positions[rx]);
        let signal_dbm = self.cfg.tx_power_dbm
            - self.cfg.pathloss.median_loss_db(d)
            - self.shadowing_db[tx * n + rx];
        let interf_dbm =
            self.cfg.interference.power_at(&self.cfg.positions[rx], t, &self.cfg.pathloss);
        let denom_mw = dbm_to_mw(self.cfg.noise_floor_dbm)
            + if interf_dbm.is_finite() { dbm_to_mw(interf_dbm) } else { 0.0 };
        signal_dbm - mw_to_dbm(denom_mw)
    }

    fn deliver_one(&mut self, tx: NodeId, rx: NodeId, bits: u64) -> bool {
        let n = self.cfg.positions.len();
        let d = self.cfg.positions[tx].distance(&self.cfg.positions[rx]);
        let signal_dbm = self.cfg.tx_power_dbm
            - self.cfg.pathloss.median_loss_db(d)
            - self.shadowing_db[tx * n + rx]
            + self.cfg.fading.draw_db(&mut self.rng);
        let interf_dbm =
            self.cfg.interference.power_at(&self.cfg.positions[rx], self.t, &self.cfg.pathloss);
        let denom_mw = dbm_to_mw(self.cfg.noise_floor_dbm)
            + if interf_dbm.is_finite() {
                dbm_to_mw(interf_dbm + self.cfg.fading.draw_db(&mut self.rng))
            } else {
                0.0
            };
        let sinr_db = signal_dbm - mw_to_dbm(denom_mw);
        let per = self.cfg.per_model.per(sinr_db, bits);
        self.rng.gen::<f64>() >= per
    }
}

impl Medium for GeoMedium {
    fn node_count(&self) -> usize {
        self.cfg.positions.len()
    }

    fn transmit(&mut self, tx: NodeId, bits: u64) -> Delivery {
        assert!(tx < self.node_count(), "unknown transmitter {tx}");
        let n = self.node_count();
        let mut received = vec![false; n];
        for (rx, slot) in received.iter_mut().enumerate() {
            if rx != tx {
                *slot = self.deliver_one(tx, rx, bits);
            }
        }
        self.t += 1;
        Delivery::new(received)
    }

    fn tick(&mut self) {
        // Jump to the start of the next interference pattern, so protocol
        // phases can align with pattern boundaries like the paper's time
        // slots.
        let ppp = self.cfg.interference.packets_per_pattern.max(1);
        self.t = (self.t / ppp + 1) * ppp;
    }

    fn now(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{Beam, Pattern};

    fn two_node_cfg(dist: f64) -> GeoMediumConfig {
        GeoMediumConfig::new(vec![Point::new(0.0, 0.0), Point::new(dist, 0.0)])
    }

    #[test]
    fn clean_short_link_delivers_nearly_everything() {
        let mut cfg = two_node_cfg(2.0);
        cfg.pathloss.shadowing_sigma_db = 0.0;
        cfg.seed = 1;
        let mut m = GeoMedium::new(cfg);
        let delivered = (0..1000).filter(|_| m.transmit(0, 800).got(1)).count();
        assert!(delivered > 950, "delivered {delivered}/1000");
    }

    #[test]
    fn jammed_receiver_loses_most_packets() {
        let mut cfg = two_node_cfg(2.0);
        cfg.pathloss.shadowing_sigma_db = 0.0;
        cfg.seed = 2;
        // Aim a strong beam straight at the receiver.
        cfg.interference = InterferenceSchedule {
            beams: vec![Beam {
                origin: Point::new(2.0, -2.0),
                azimuth_deg: 90.0,
                beamwidth_deg: 22.0,
                eirp_dbm: 10.0,
            }],
            patterns: vec![Pattern { active: vec![0] }],
            packets_per_pattern: 1,
        };
        let mut m = GeoMedium::new(cfg);
        let delivered = (0..1000).filter(|_| m.transmit(0, 800).got(1)).count();
        assert!(delivered < 300, "delivered {delivered}/1000 under jamming");
    }

    #[test]
    fn self_reception_is_false_and_counter_advances() {
        let mut m = GeoMedium::new(two_node_cfg(1.0));
        let d = m.transmit(0, 800);
        assert!(!d.got(0));
        assert_eq!(m.now(), 1);
    }

    #[test]
    fn determinism_under_seed() {
        let mk = || {
            let mut cfg = two_node_cfg(3.0);
            cfg.seed = 42;
            GeoMedium::new(cfg)
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(a.transmit(0, 800), b.transmit(0, 800));
        }
    }

    #[test]
    fn tick_aligns_to_pattern_boundary() {
        let mut cfg = two_node_cfg(1.0);
        cfg.interference = InterferenceSchedule {
            beams: vec![],
            patterns: vec![Pattern::default(), Pattern::default()],
            packets_per_pattern: 10,
        };
        let mut m = GeoMedium::new(cfg);
        m.transmit(0, 8);
        m.transmit(0, 8);
        assert_eq!(m.now(), 2);
        m.tick();
        assert_eq!(m.now(), 10);
        m.tick();
        assert_eq!(m.now(), 20);
    }

    #[test]
    fn mean_sinr_reflects_interference_rotation() {
        let mut cfg = two_node_cfg(2.0);
        cfg.pathloss.shadowing_sigma_db = 0.0;
        cfg.interference = InterferenceSchedule {
            beams: vec![Beam {
                origin: Point::new(2.0, -2.0),
                azimuth_deg: 90.0,
                beamwidth_deg: 22.0,
                eirp_dbm: 10.0,
            }],
            patterns: vec![Pattern { active: vec![0] }, Pattern { active: vec![] }],
            packets_per_pattern: 5,
        };
        let m = GeoMedium::new(cfg);
        let jammed = m.mean_sinr_db(0, 1, 0);
        let clear = m.mean_sinr_db(0, 1, 5);
        assert!(clear - jammed > 20.0, "jammed {jammed} dB vs clear {clear} dB");
    }

    #[test]
    fn longer_links_have_lower_sinr() {
        // Shadowing sigma 0 so the comparison is exact.
        let mut cfg_near = two_node_cfg(1.0);
        cfg_near.pathloss.shadowing_sigma_db = 0.0;
        let mut cfg_far = two_node_cfg(3.5);
        cfg_far.pathloss.shadowing_sigma_db = 0.0;
        let near = GeoMedium::new(cfg_near);
        let far = GeoMedium::new(cfg_far);
        assert!(near.mean_sinr_db(0, 1, 0) > far.mean_sinr_db(0, 1, 0));
    }
}
