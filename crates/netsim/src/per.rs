//! SINR → packet-error-rate models.
//!
//! The paper's terminals transmit 100-byte packets at 1 Mbps (802.11b/g
//! DSSS-BPSK). For that modulation the bit error rate under additive noise
//! is `BER = Q(sqrt(2·SINR))`, and a packet of `B` bits survives with
//! probability `(1-BER)^B` — a very sharp threshold around 7–9 dB for
//! 800-bit packets. Two cheaper approximations are provided for
//! experiments that want a controllable erasure knob.

/// A packet-error-rate model: probability that a packet of `bits` bits is
/// lost at the given SINR (dB).
#[derive(Clone, Copy, Debug, Default)]
pub enum PerModel {
    /// Exact DSSS/BPSK: `PER = 1 - (1 - Q(sqrt(2·sinr)))^bits`.
    #[default]
    BpskBer,
    /// Logistic threshold: `PER = 1 / (1 + exp((sinr_db - threshold)/width))`.
    Logistic {
        /// SINR (dB) at which PER = 0.5.
        threshold_db: f64,
        /// Transition width (dB); smaller is sharper.
        width_db: f64,
    },
    /// Hard threshold: lost iff `sinr_db < threshold_db`.
    Step {
        /// Cutoff SINR in dB.
        threshold_db: f64,
    },
}

impl PerModel {
    /// Packet error probability in `[0, 1]`.
    pub fn per(&self, sinr_db: f64, bits: u64) -> f64 {
        match self {
            PerModel::BpskBer => {
                let snr = 10f64.powf(sinr_db / 10.0);
                let ber = q_function((2.0 * snr).sqrt());
                1.0 - (1.0 - ber).powf(bits as f64)
            }
            PerModel::Logistic { threshold_db, width_db } => {
                1.0 / (1.0 + ((sinr_db - threshold_db) / width_db).exp())
            }
            PerModel::Step { threshold_db } => {
                if sinr_db < *threshold_db {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// The Gaussian tail function `Q(x) = P(Z > x)`, via the complementary
/// error function: `Q(x) = erfc(x / sqrt(2)) / 2`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function, Abramowitz–Stegun 7.1.26-style rational
/// approximation (|error| < 1.5e-7 — far below anything the simulation can
/// resolve).
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let e = poly * (-x * x).exp();
    if sign_negative {
        2.0 - e
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(1) ≈ 0.157299, erfc(2) ≈ 0.004678.
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(2.0) - 0.004678).abs() < 1e-5);
        // Symmetry: erfc(-x) = 2 - erfc(x).
        assert!((erfc(-1.0) - (2.0 - 0.157299)).abs() < 1e-5);
    }

    #[test]
    fn q_function_reference_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-6);
        assert!((q_function(1.0) - 0.15866).abs() < 1e-4);
        assert!((q_function(3.0) - 0.00135).abs() < 1e-4);
    }

    #[test]
    fn bpsk_per_is_sharp_for_800_bit_packets() {
        let m = PerModel::BpskBer;
        // Well below threshold: certain loss. Well above: certain receipt.
        assert!(m.per(-5.0, 800) > 0.999);
        assert!(m.per(12.0, 800) < 1e-4);
        assert!(m.per(15.0, 800) < 1e-6);
        // Monotone decreasing in SINR.
        let mut prev = 1.0;
        for s in -10..=15 {
            let p = m.per(s as f64, 800);
            assert!(p <= prev + 1e-12, "PER not monotone at {s} dB");
            prev = p;
        }
    }

    #[test]
    fn bpsk_per_increases_with_packet_size() {
        let m = PerModel::BpskBer;
        assert!(m.per(7.0, 1600) >= m.per(7.0, 800));
        assert!(m.per(7.0, 800) >= m.per(7.0, 100));
    }

    #[test]
    fn logistic_midpoint_and_tails() {
        let m = PerModel::Logistic { threshold_db: 5.0, width_db: 1.0 };
        assert!((m.per(5.0, 800) - 0.5).abs() < 1e-9);
        assert!(m.per(-20.0, 800) > 0.999);
        assert!(m.per(30.0, 800) < 0.001);
    }

    #[test]
    fn step_is_binary() {
        let m = PerModel::Step { threshold_db: 0.0 };
        assert_eq!(m.per(-0.1, 1), 1.0);
        assert_eq!(m.per(0.0, 1), 0.0);
    }
}
