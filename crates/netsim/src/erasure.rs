//! Pluggable per-link packet-erasure models.
//!
//! The protocol consumes erasures, not radio physics; this module is the
//! abstraction boundary that lets an experiment pick *which* loss process
//! shapes a link without the consumer caring. Two models ship today:
//!
//! * [`ErasureModel::Iid`] — the memoryless channel of the paper's
//!   Figure 1 ("the packet erasure probability ... is the same").
//! * [`ErasureModel::GilbertElliott`] — the classic two-state burst-loss
//!   chain. A link sits in a *good* or *bad* state with per-state loss
//!   probabilities and per-packet transition probabilities; deep fades
//!   (see [`crate::fading`]) make real wireless losses bursty, and this
//!   is the standard discrete-time approximation of that burstiness.
//!
//! A model is a *specification* (cloneable, comparable, hashable into
//! config digests); instantiating it against a seed yields an
//! [`ErasureProcess`] — the stateful per-link chain — via
//! [`ErasureModel::process`]. [`ErasureModel::pattern`] materializes the
//! first `len` steps as a bitmap, which is how deterministic experiment
//! harnesses (e.g. `thinair-net`'s receiver-side injection and the
//! `thinair-scenario` engine) consume a model: the pattern is a pure
//! function of `(model, seed)`, independent of wall-clock timing and task
//! scheduling.
//!
//! [`ErasureMedium`] wires a matrix of models into the [`Medium`] trait
//! for the synchronous simulator: every ordered link owns an independent
//! process, so one link's draws never perturb another's.
//!
//! ```
//! use thinair_netsim::erasure::ErasureModel;
//!
//! let ge = ErasureModel::GilbertElliott {
//!     p_good: 0.05,
//!     p_bad: 0.9,
//!     good_to_bad: 0.1,
//!     bad_to_good: 0.3,
//! };
//! // Stationary loss rate: pi_bad * p_bad + pi_good * p_good.
//! assert!((ge.mean_erasure() - (0.75 * 0.05 + 0.25 * 0.9)).abs() < 1e-12);
//! // Same seed, same pattern — always.
//! assert_eq!(ge.pattern(42, 100), ge.pattern(42, 100));
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::medium::{Delivery, Medium, NodeId};

/// Specification of one link's packet-erasure process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ErasureModel {
    /// Independent erasures: every packet is lost with probability `p`.
    Iid {
        /// Per-packet loss probability.
        p: f64,
    },
    /// Two-state Gilbert-Elliott burst-loss chain. Each packet is lost
    /// with the current state's probability; the state then transitions.
    GilbertElliott {
        /// Loss probability while in the good state.
        p_good: f64,
        /// Loss probability while in the bad state.
        p_bad: f64,
        /// Per-packet probability of a good → bad transition.
        good_to_bad: f64,
        /// Per-packet probability of a bad → good transition.
        bad_to_good: f64,
    },
}

impl ErasureModel {
    /// Checks every probability is in `[0, 1]` and the Gilbert-Elliott
    /// chain is irreducible enough to have a stationary distribution.
    pub fn validate(&self) -> Result<(), &'static str> {
        let unit = |p: f64| (0.0..=1.0).contains(&p);
        match *self {
            ErasureModel::Iid { p } => {
                if !unit(p) {
                    return Err("iid erasure probability out of range");
                }
            }
            ErasureModel::GilbertElliott { p_good, p_bad, good_to_bad, bad_to_good } => {
                if ![p_good, p_bad, good_to_bad, bad_to_good].iter().all(|&p| unit(p)) {
                    return Err("gilbert-elliott probability out of range");
                }
                if good_to_bad + bad_to_good <= 0.0 {
                    return Err("gilbert-elliott chain never transitions");
                }
            }
        }
        Ok(())
    }

    /// Long-run average erasure probability of the process — the `p` a
    /// memoryless model (and the closed-form efficiency model) would see.
    pub fn mean_erasure(&self) -> f64 {
        match *self {
            ErasureModel::Iid { p } => p,
            ErasureModel::GilbertElliott { p_good, p_bad, good_to_bad, bad_to_good } => {
                let denom = good_to_bad + bad_to_good;
                if denom <= 0.0 {
                    return p_good; // degenerate; validate() rejects this
                }
                let pi_bad = good_to_bad / denom;
                (1.0 - pi_bad) * p_good + pi_bad * p_bad
            }
        }
    }

    /// A short stable tag for scenario names and config digests.
    pub fn kind(&self) -> &'static str {
        match self {
            ErasureModel::Iid { .. } => "iid",
            ErasureModel::GilbertElliott { .. } => "ge",
        }
    }

    /// The model's parameters as a fixed-order list, for hashing into
    /// configuration digests (two nodes must agree on the exact process).
    pub fn params(&self) -> Vec<f64> {
        match *self {
            ErasureModel::Iid { p } => vec![p],
            ErasureModel::GilbertElliott { p_good, p_bad, good_to_bad, bad_to_good } => {
                vec![p_good, p_bad, good_to_bad, bad_to_good]
            }
        }
    }

    /// Instantiates the stateful per-link process. The Gilbert-Elliott
    /// chain starts in a state drawn from its stationary distribution, so
    /// short patterns are not biased toward the good state.
    pub fn process(&self, seed: u64) -> Box<dyn ErasureProcess> {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            ErasureModel::Iid { p } => Box::new(IidProcess { p, rng }),
            ErasureModel::GilbertElliott { p_good, p_bad, good_to_bad, bad_to_good } => {
                let denom = good_to_bad + bad_to_good;
                let pi_bad = if denom > 0.0 { good_to_bad / denom } else { 0.0 };
                let bad = rng.gen::<f64>() < pi_bad;
                Box::new(GilbertElliottProcess {
                    p_good,
                    p_bad,
                    good_to_bad,
                    bad_to_good,
                    bad,
                    rng,
                })
            }
        }
    }

    /// The first `len` steps of the process under `seed`, as an erasure
    /// bitmap (`true` = packet lost). Pure function of `(self, seed, len)`;
    /// a longer pattern is always a prefix-extension of a shorter one.
    pub fn pattern(&self, seed: u64, len: usize) -> Vec<bool> {
        let mut p = self.process(seed);
        (0..len).map(|_| p.next_erased()).collect()
    }
}

/// A stateful erasure chain for one link: each call decides the fate of
/// the link's next packet and advances the chain.
pub trait ErasureProcess {
    /// Whether the link's next packet is erased.
    fn next_erased(&mut self) -> bool;
}

struct IidProcess {
    p: f64,
    rng: StdRng,
}

impl ErasureProcess for IidProcess {
    fn next_erased(&mut self) -> bool {
        self.rng.gen::<f64>() < self.p
    }
}

struct GilbertElliottProcess {
    p_good: f64,
    p_bad: f64,
    good_to_bad: f64,
    bad_to_good: f64,
    bad: bool,
    rng: StdRng,
}

impl ErasureProcess for GilbertElliottProcess {
    fn next_erased(&mut self) -> bool {
        let p_loss = if self.bad { self.p_bad } else { self.p_good };
        let erased = self.rng.gen::<f64>() < p_loss;
        let p_flip = if self.bad { self.bad_to_good } else { self.good_to_bad };
        if self.rng.gen::<f64>() < p_flip {
            self.bad = !self.bad;
        }
        erased
    }
}

/// A broadcast medium whose ordered links each run an independent
/// [`ErasureProcess`].
///
/// Unlike [`crate::iid::IidMedium`] (one shared RNG drawn in transmission
/// order), every link here owns its own seeded chain: link `a → b`'s
/// erasures depend only on how many packets `a` has transmitted, never on
/// what any other link drew. That isolation is what makes burst models
/// composable — and experiments reproducible — when several transmitters
/// interleave.
pub struct ErasureMedium {
    links: Vec<Vec<Box<dyn ErasureProcess>>>,
    t: u64,
}

impl ErasureMedium {
    /// All ordered links run the same model (independent chains).
    ///
    /// # Panics
    /// Panics when the model fails [`ErasureModel::validate`].
    pub fn symmetric(nodes: usize, model: ErasureModel, seed: u64) -> Self {
        Self::from_models(vec![vec![model; nodes]; nodes], seed)
    }

    /// Fully general per-link models; `models[tx][rx]` shapes `tx → rx`.
    ///
    /// # Panics
    /// Panics when the matrix is not square or a model is invalid.
    pub fn from_models(models: Vec<Vec<ErasureModel>>, seed: u64) -> Self {
        let n = models.len();
        assert!(models.iter().all(|row| row.len() == n), "model matrix must be square");
        let links = models
            .iter()
            .enumerate()
            .map(|(tx, row)| {
                row.iter()
                    .enumerate()
                    .map(|(rx, m)| {
                        m.validate().expect("invalid erasure model");
                        m.process(link_seed(seed, tx, rx))
                    })
                    .collect()
            })
            .collect();
        ErasureMedium { links, t: 0 }
    }
}

/// SplitMix64 finalizer — the workspace's one canonical seed mixer.
/// XOR distinguishing context into a root seed, then finalize with this;
/// consumers in `thinair-net` and `thinair-scenario` rely on it staying
/// bit-stable (erasure chains on different nodes must agree).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a per-link sub-seed so no two links share an RNG stream.
fn link_seed(seed: u64, tx: usize, rx: usize) -> u64 {
    splitmix64(
        seed ^ (tx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (rx as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    )
}

impl Medium for ErasureMedium {
    fn node_count(&self) -> usize {
        self.links.len()
    }

    fn transmit(&mut self, tx: NodeId, _bits: u64) -> Delivery {
        assert!(tx < self.node_count(), "unknown transmitter {tx}");
        let n = self.node_count();
        let mut received = vec![false; n];
        for (rx, slot) in received.iter_mut().enumerate() {
            if rx != tx {
                *slot = !self.links[tx][rx].next_erased();
            }
        }
        self.t += 1;
        Delivery::new(received)
    }

    fn tick(&mut self) {
        self.t += 1;
    }

    fn now(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GE: ErasureModel = ErasureModel::GilbertElliott {
        p_good: 0.02,
        p_bad: 0.8,
        good_to_bad: 0.05,
        bad_to_good: 0.2,
    };

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(ErasureModel::Iid { p: 0.3 }.validate().is_ok());
        assert!(ErasureModel::Iid { p: 1.5 }.validate().is_err());
        assert!(GE.validate().is_ok());
        let frozen = ErasureModel::GilbertElliott {
            p_good: 0.0,
            p_bad: 1.0,
            good_to_bad: 0.0,
            bad_to_good: 0.0,
        };
        assert!(frozen.validate().is_err());
    }

    #[test]
    fn mean_erasure_matches_stationary_rate() {
        assert_eq!(ErasureModel::Iid { p: 0.4 }.mean_erasure(), 0.4);
        // pi_bad = 0.05 / 0.25 = 0.2.
        let want = 0.8 * 0.02 + 0.2 * 0.8;
        assert!((GE.mean_erasure() - want).abs() < 1e-12);
        // Empirical long-run rate agrees.
        let n = 200_000;
        let losses = GE.pattern(9, n).iter().filter(|&&e| e).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - want).abs() < 0.01, "rate {rate} vs {want}");
    }

    #[test]
    fn patterns_are_deterministic_and_prefix_stable() {
        for model in [ErasureModel::Iid { p: 0.5 }, GE] {
            assert_eq!(model.pattern(7, 200), model.pattern(7, 200));
            assert_ne!(model.pattern(7, 200), model.pattern(8, 200));
            let long = model.pattern(7, 200);
            assert_eq!(&long[..50], &model.pattern(7, 50)[..]);
        }
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare P(loss | previous loss) against the marginal rate: the
        // chain must cluster losses, the iid control must not.
        let count_pairs = |pat: &[bool]| {
            let losses = pat.iter().filter(|&&e| e).count() as f64;
            let after_loss =
                pat.windows(2).filter(|w| w[0]).map(|w| w[1] as usize as f64).sum::<f64>();
            let prev_losses = pat[..pat.len() - 1].iter().filter(|&&e| e).count() as f64;
            (losses / pat.len() as f64, after_loss / prev_losses)
        };
        let (ge_rate, ge_cond) = count_pairs(&GE.pattern(3, 100_000));
        assert!(ge_cond > 2.0 * ge_rate, "conditional {ge_cond} vs marginal {ge_rate}");
        let iid = ErasureModel::Iid { p: ge_rate };
        let (iid_rate, iid_cond) = count_pairs(&iid.pattern(3, 100_000));
        assert!((iid_cond - iid_rate).abs() < 0.05, "iid {iid_cond} vs {iid_rate}");
    }

    #[test]
    fn medium_links_are_independent_chains() {
        // Transmissions from node 1 must not perturb link 0 → 2: the
        // delivery pattern 0 sees is the same whether or not 1 talks.
        let model = ErasureModel::Iid { p: 0.5 };
        let run = |interleave: bool| {
            let mut m = ErasureMedium::symmetric(3, model, 11);
            let mut seen = Vec::new();
            for i in 0..200 {
                if interleave && i % 3 == 0 {
                    let _ = m.transmit(1, 8);
                }
                seen.push(m.transmit(0, 8).got(2));
            }
            seen
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn medium_respects_degenerate_models() {
        let mut dead = ErasureMedium::symmetric(2, ErasureModel::Iid { p: 1.0 }, 1);
        let mut clear = ErasureMedium::symmetric(2, ErasureModel::Iid { p: 0.0 }, 1);
        for _ in 0..50 {
            assert!(!dead.transmit(0, 8).got(1));
            assert!(clear.transmit(0, 8).got(1));
        }
        assert_eq!(dead.now(), 50);
    }

    #[test]
    #[should_panic(expected = "invalid erasure model")]
    fn medium_rejects_invalid_model() {
        let _ = ErasureMedium::symmetric(2, ErasureModel::Iid { p: 2.0 }, 0);
    }
}
