//! Small-scale fading: per-packet power variation.
//!
//! Indoor multipath makes the instantaneous received power of each packet
//! fluctuate around the large-scale mean. We model Rayleigh fading: the
//! power multiplier is exponentially distributed with unit mean
//! (`h = -ln(U)` for uniform `U`), optionally mixed with a line-of-sight
//! component (a crude Rician approximation) since the paper's nodes are
//! "positioned within line of sight of each other".
//!
//! Fading is what turns the deterministic geometry into *probabilistic*
//! erasures: a node whose SINR sits near the decoder threshold receives
//! some packets and misses others, which is exactly the raw material the
//! protocol distils secrets from.

use rand::Rng;

/// Per-packet fading model.
#[derive(Clone, Copy, Debug)]
pub enum Fading {
    /// No fading: the multiplier is always 1 (0 dB).
    None,
    /// Rayleigh fading: exponential power multiplier, unit mean.
    Rayleigh,
    /// Rician-like fading: fraction `k_factor/(k_factor+1)` of the power is
    /// a steady line-of-sight ray, the rest Rayleigh. `k_factor = 0`
    /// degenerates to Rayleigh; large `k_factor` approaches no fading.
    Rician {
        /// Ratio of line-of-sight power to scattered power (linear).
        k_factor: f64,
    },
}

impl Fading {
    /// Draws the power multiplier (linear, unit mean) for one packet.
    pub fn draw_linear(&self, rng: &mut impl Rng) -> f64 {
        match self {
            Fading::None => 1.0,
            Fading::Rayleigh => exponential_unit_mean(rng),
            Fading::Rician { k_factor } => {
                let k = k_factor.max(0.0);
                let los = k / (k + 1.0);
                let scattered = 1.0 / (k + 1.0);
                los + scattered * exponential_unit_mean(rng)
            }
        }
    }

    /// Same multiplier expressed in dB.
    pub fn draw_db(&self, rng: &mut impl Rng) -> f64 {
        10.0 * self.draw_linear(rng).log10()
    }
}

fn exponential_unit_mean(rng: &mut impl Rng) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Fading::None.draw_linear(&mut rng), 1.0);
        assert_eq!(Fading::None.draw_db(&mut rng), 0.0);
    }

    #[test]
    fn rayleigh_has_unit_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 =
            (0..n).map(|_| Fading::Rayleigh.draw_linear(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn rayleigh_deep_fade_probability() {
        // P(h < 0.1) = 1 - exp(-0.1) ≈ 0.095.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let deep = (0..n).filter(|_| Fading::Rayleigh.draw_linear(&mut rng) < 0.1).count();
        let frac = deep as f64 / n as f64;
        assert!((frac - 0.0952).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn rician_reduces_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let var = |fading: Fading, rng: &mut StdRng| {
            let samples: Vec<f64> = (0..n).map(|_| fading.draw_linear(rng)).collect();
            let m = samples.iter().sum::<f64>() / n as f64;
            samples.iter().map(|s| (s - m).powi(2)).sum::<f64>() / n as f64
        };
        let v_rayleigh = var(Fading::Rayleigh, &mut rng);
        let v_rician = var(Fading::Rician { k_factor: 5.0 }, &mut rng);
        assert!(v_rician < v_rayleigh / 2.0, "{v_rician} vs {v_rayleigh}");
    }

    #[test]
    fn rician_preserves_unit_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let f = Fading::Rician { k_factor: 3.0 };
        let mean: f64 = (0..n).map(|_| f.draw_linear(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn rician_k_zero_is_rayleigh_shaped() {
        // Just check it still has unit mean and allows deep fades.
        let mut rng = StdRng::seed_from_u64(5);
        let f = Fading::Rician { k_factor: 0.0 };
        let n = 50_000;
        let deep = (0..n).filter(|_| f.draw_linear(&mut rng) < 0.1).count();
        assert!(deep > 0);
    }
}
