//! Artificial interference: directional jamming beams and their rotation
//! schedule.
//!
//! The paper (§4) surrounds the 3×3-cell testbed with 6 WARP nodes carrying
//! two directional antennas each (22° 3-dB beamwidth) and activates them so
//! that "at any point in time, one pair of antennas creates noise along a
//! row, while another pair creates noise along a column", rotating through
//! all 9 (row, column) patterns during an experiment. The goal (§3.3) is to
//! guarantee that Eve — wherever she stands — misses some minimum fraction
//! of packets *independently of natural channel conditions*.
//!
//! A [`Beam`] is a cone: a receiver is inside if its azimuth from the beam
//! origin deviates from the boresight by less than half the beamwidth.
//! In-beam receivers get the full effective radiated power attenuated by
//! path loss; out-of-beam receivers get a side-lobe level 20 dB down
//! (typical front-to-side ratio for a small patch array like WARP's).

use crate::geom::{angle_diff_deg, Point};
use crate::pathloss::PathLoss;

/// Side-lobe suppression applied outside the main cone, dB.
pub const SIDE_LOBE_SUPPRESSION_DB: f64 = 20.0;

/// One directional jamming antenna.
#[derive(Clone, Copy, Debug)]
pub struct Beam {
    /// Antenna position.
    pub origin: Point,
    /// Boresight azimuth, degrees CCW from +x.
    pub azimuth_deg: f64,
    /// Full 3-dB beamwidth, degrees (the paper's WARP antennas: 22°).
    pub beamwidth_deg: f64,
    /// Effective radiated power along the boresight, dBm.
    pub eirp_dbm: f64,
}

impl Beam {
    /// Whether `p` lies inside the main cone.
    pub fn covers(&self, p: &Point) -> bool {
        let az = self.origin.azimuth_to(p);
        angle_diff_deg(az, self.azimuth_deg).abs() <= self.beamwidth_deg / 2.0
    }

    /// Interference power delivered to a receiver at `p` (dBm), before
    /// fading.
    pub fn power_at(&self, p: &Point, pl: &PathLoss) -> f64 {
        let base = self.eirp_dbm - pl.median_loss_db(self.origin.distance(p));
        if self.covers(p) {
            base
        } else {
            base - SIDE_LOBE_SUPPRESSION_DB
        }
    }
}

/// A set of simultaneously active beams.
#[derive(Clone, Debug, Default)]
pub struct Pattern {
    /// Indices into the interferer bank.
    pub active: Vec<usize>,
}

/// A bank of beams plus a rotation schedule over activation patterns.
///
/// The schedule advances every `packets_per_pattern` transmissions so that
/// one protocol round cycles through every pattern, like the paper's
/// time-slotted experiments.
#[derive(Clone, Debug)]
pub struct InterferenceSchedule {
    /// All antennas that exist in the arena.
    pub beams: Vec<Beam>,
    /// Activation patterns, rotated in order.
    pub patterns: Vec<Pattern>,
    /// How many packet transmissions each pattern stays active for.
    pub packets_per_pattern: u64,
}

impl InterferenceSchedule {
    /// A schedule with no interference at all (the "interferers off"
    /// ablation).
    pub fn off() -> Self {
        InterferenceSchedule {
            beams: Vec::new(),
            patterns: vec![Pattern::default()],
            packets_per_pattern: 1,
        }
    }

    /// Number of distinct patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Which pattern is active at packet counter `t`.
    pub fn pattern_at(&self, t: u64) -> &Pattern {
        let idx = (t / self.packets_per_pattern) as usize % self.patterns.len().max(1);
        &self.patterns[idx]
    }

    /// Total interference power (dBm) arriving at `p` at packet counter
    /// `t`, before fading; `NEG_INFINITY` when nothing is active.
    pub fn power_at(&self, p: &Point, t: u64, pl: &PathLoss) -> f64 {
        let pattern = self.pattern_at(t);
        let powers: Vec<f64> =
            pattern.active.iter().map(|&i| self.beams[i].power_at(p, pl)).collect();
        crate::geom::sum_dbm(&powers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beam_east(origin: Point) -> Beam {
        Beam { origin, azimuth_deg: 0.0, beamwidth_deg: 22.0, eirp_dbm: 10.0 }
    }

    #[test]
    fn cone_membership() {
        let b = beam_east(Point::new(0.0, 0.0));
        assert!(b.covers(&Point::new(5.0, 0.0)));
        // 11° off boresight at unit distance: tan(11°) ≈ 0.194.
        assert!(b.covers(&Point::new(1.0, 0.19)));
        assert!(!b.covers(&Point::new(1.0, 0.25)));
        // Behind the antenna: definitely out.
        assert!(!b.covers(&Point::new(-1.0, 0.0)));
    }

    #[test]
    fn side_lobe_is_20db_down() {
        let b = beam_east(Point::new(0.0, 0.0));
        let pl = PathLoss { shadowing_sigma_db: 0.0, ..PathLoss::default() };
        let inside = b.power_at(&Point::new(2.0, 0.0), &pl);
        let outside = b.power_at(&Point::new(0.0, 2.0), &pl);
        assert!((inside - outside - SIDE_LOBE_SUPPRESSION_DB).abs() < 1e-9);
    }

    #[test]
    fn power_decays_with_distance() {
        let b = beam_east(Point::new(0.0, 0.0));
        let pl = PathLoss::default();
        let near = b.power_at(&Point::new(1.0, 0.0), &pl);
        let far = b.power_at(&Point::new(3.0, 0.0), &pl);
        assert!(near > far);
    }

    #[test]
    fn schedule_rotation() {
        let beams = vec![beam_east(Point::new(0.0, 0.0)), beam_east(Point::new(0.0, 1.0))];
        let sched = InterferenceSchedule {
            beams,
            patterns: vec![
                Pattern { active: vec![0] },
                Pattern { active: vec![1] },
                Pattern { active: vec![] },
            ],
            packets_per_pattern: 10,
        };
        assert_eq!(sched.pattern_at(0).active, vec![0]);
        assert_eq!(sched.pattern_at(9).active, vec![0]);
        assert_eq!(sched.pattern_at(10).active, vec![1]);
        assert_eq!(sched.pattern_at(25).active, Vec::<usize>::new());
        // Wraps around.
        assert_eq!(sched.pattern_at(30).active, vec![0]);
    }

    #[test]
    fn off_schedule_has_no_power() {
        let sched = InterferenceSchedule::off();
        let pl = PathLoss::default();
        assert_eq!(sched.power_at(&Point::new(1.0, 1.0), 0, &pl), f64::NEG_INFINITY);
    }

    #[test]
    fn two_active_beams_sum() {
        let b0 = beam_east(Point::new(0.0, 0.0));
        let b1 = beam_east(Point::new(0.0, 0.0));
        let sched = InterferenceSchedule {
            beams: vec![b0, b1],
            patterns: vec![Pattern { active: vec![0, 1] }],
            packets_per_pattern: 1,
        };
        let pl = PathLoss { shadowing_sigma_db: 0.0, ..PathLoss::default() };
        let p = Point::new(2.0, 0.0);
        let single = b0.power_at(&p, &pl);
        let both = sched.power_at(&p, 0, &pl);
        assert!((both - single - 10.0 * 2f64.log10()).abs() < 1e-9);
    }
}
