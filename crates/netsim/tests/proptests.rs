//! Property-based tests for the wireless simulator.

use proptest::prelude::*;
use thinair_netsim::channel::{GeoMedium, GeoMediumConfig};
use thinair_netsim::geom::{angle_diff_deg, dbm_to_mw, mw_to_dbm, sum_dbm, Point};
use thinair_netsim::interference::{Beam, InterferenceSchedule, Pattern};
use thinair_netsim::pathloss::PathLoss;
use thinair_netsim::per::PerModel;
use thinair_netsim::{FaultyMedium, IidMedium, Medium};

proptest! {
    #[test]
    fn dbm_mw_round_trip(dbm in -120.0f64..30.0) {
        let back = mw_to_dbm(dbm_to_mw(dbm));
        prop_assert!((back - dbm).abs() < 1e-9);
    }

    #[test]
    fn power_sum_dominates_components(a in -90.0f64..0.0, b in -90.0f64..0.0) {
        let s = sum_dbm(&[a, b]);
        prop_assert!(s >= a.max(b) - 1e-9);
        prop_assert!(s <= a.max(b) + 3.0101); // at most +3 dB over the max
    }

    #[test]
    fn angle_diff_is_antisymmetric_and_bounded(a in -720.0f64..720.0, b in -720.0f64..720.0) {
        let d = angle_diff_deg(a, b);
        prop_assert!((-180.0..=180.0).contains(&d));
        let r = angle_diff_deg(b, a);
        // Antisymmetric modulo the ±180 boundary.
        prop_assert!((d + r).abs() < 1e-9 || (d + r).abs() - 360.0 < 1e-9);
    }

    #[test]
    fn distance_is_a_metric(
        (x1, y1, x2, y2, x3, y3) in (
            -10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0,
            -10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0,
        )
    ) {
        let a = Point::new(x1, y1);
        let b = Point::new(x2, y2);
        let c = Point::new(x3, y3);
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        prop_assert!(a.distance(&a) == 0.0);
    }

    #[test]
    fn path_loss_is_monotone(d1 in 0.1f64..50.0, d2 in 0.1f64..50.0) {
        let pl = PathLoss::default();
        if d1 <= d2 {
            prop_assert!(pl.median_loss_db(d1) <= pl.median_loss_db(d2) + 1e-9);
        }
    }

    #[test]
    fn per_is_a_probability_and_monotone(
        sinr in -30.0f64..40.0,
        bits in 1u64..4000,
    ) {
        for model in [
            PerModel::BpskBer,
            PerModel::Logistic { threshold_db: 6.0, width_db: 1.5 },
            PerModel::Step { threshold_db: 6.0 },
        ] {
            let p = model.per(sinr, bits);
            prop_assert!((0.0..=1.0).contains(&p));
            // Higher SINR never hurts.
            let p_better = model.per(sinr + 5.0, bits);
            prop_assert!(p_better <= p + 1e-12);
        }
    }

    #[test]
    fn iid_medium_delivery_shape(
        nodes in 2usize..8,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
        tx in 0usize..8,
    ) {
        let tx = tx % nodes;
        let mut m = IidMedium::symmetric(nodes, p, seed);
        let d = m.transmit(tx, 800);
        prop_assert_eq!(d.received.len(), nodes);
        prop_assert!(!d.got(tx), "no self-reception");
        prop_assert_eq!(m.now(), 1);
    }

    #[test]
    fn faulty_wrapper_never_creates_deliveries(
        p in 0.0f64..1.0,
        drop in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut plain = IidMedium::symmetric(3, p, seed);
        let mut faulty =
            FaultyMedium::new(IidMedium::symmetric(3, p, seed), drop, 0.0, seed ^ 1);
        for _ in 0..50 {
            let a = plain.transmit(0, 8);
            let b = faulty.transmit(0, 8);
            for i in 0..3 {
                // The wrapper can only remove deliveries, never add them.
                prop_assert!(!b.got(i) || a.got(i));
            }
        }
    }

    #[test]
    fn geo_medium_is_deterministic(seed in any::<u64>(), d in 0.5f64..5.0) {
        let mk = || {
            let mut cfg = GeoMediumConfig::new(vec![
                Point::new(0.0, 0.0),
                Point::new(d, 0.0),
                Point::new(0.0, d),
            ]);
            cfg.seed = seed;
            GeoMedium::new(cfg)
        };
        let mut a = mk();
        let mut b = mk();
        for tx in [0usize, 1, 2, 0, 1] {
            prop_assert_eq!(a.transmit(tx, 800), b.transmit(tx, 800));
        }
    }

    #[test]
    fn interference_rotation_is_periodic(
        ppp in 1u64..20,
        t in 0u64..10_000,
    ) {
        let beams = vec![Beam {
            origin: Point::new(0.0, 0.0),
            azimuth_deg: 0.0,
            beamwidth_deg: 22.0,
            eirp_dbm: 10.0,
        }];
        let sched = InterferenceSchedule {
            beams,
            patterns: (0..9).map(|_| Pattern { active: vec![0] }).collect(),
            packets_per_pattern: ppp,
        };
        let period = 9 * ppp;
        prop_assert_eq!(
            sched.pattern_at(t).active.clone(),
            sched.pattern_at(t + period).active.clone()
        );
    }
}
