//! Fixture: wire codec with a duplicated tag value (seeded), an
//! allowlisted legacy alias, and a variant the fuzz corpus misses.

const TAG_PING: u8 = 0x01;
const TAG_PONG: u8 = 0x01;
// lint: allow(wire): fixture keeps a legacy alias value on purpose
const TAG_PING_OLD: u8 = 0x03;

pub enum Message {
    Ping,
    Pong,
}

pub fn encode(m: &Message) -> u8 {
    match m {
        Message::Ping => TAG_PING,
        Message::Pong => TAG_PONG,
    }
}

pub fn decode(tag: u8) -> Option<Message> {
    match tag {
        TAG_PING => Some(Message::Ping),
        TAG_PONG => Some(Message::Pong),
        TAG_PING_OLD => Some(Message::Ping),
        _ => None,
    }
}
