//! Fixture: a hot-path module with one seeded panic finding, one
//! allowlisted panic, one seeded unsafe escape, one allowlisted escape.

pub fn hot(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn annotated(v: Option<u8>) -> u8 {
    // lint: allow(panic): fixture-justified unreachable
    v.expect("never")
}

pub fn escape(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn escape_allowed(p: *const u8) -> u8 {
    // lint: allow(unsafe): fixture demonstrates the annotation
    unsafe { *p }
}
