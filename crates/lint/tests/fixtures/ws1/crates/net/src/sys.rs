//! Fixture: the unsafe-confinement zone. One block is justified, one
//! is missing its `// SAFETY:` comment.

pub fn justified(p: *const u8) -> u8 {
    // SAFETY: fixture pointer is valid by construction.
    unsafe { *p }
}

pub fn unjustified(p: *const u8) -> u8 {
    unsafe { *p }
}
