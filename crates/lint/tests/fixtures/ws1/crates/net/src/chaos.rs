//! Fixture: a determinism-critical module with one seeded violation
//! and one allowlisted occurrence. Never compiled — only scanned.

pub fn verdict_time() -> u64 {
    let _t = std::time::Instant::now();
    0
}

pub fn scratch() {
    // lint: allow(determinism): scratch map, never iterated
    let _m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
}
