//! Fixture: telemetry name shapes and kind conflicts.

pub fn emit() {
    crate::telemetry::counter_add("BadName", 1);
    // lint: allow(telemetry): legacy dashboard name kept verbatim
    crate::telemetry::gauge_set("LegacyName", 2);
    crate::telemetry::counter_add("dup.kind", 1);
    crate::telemetry::observe("dup.kind", 9);
}
