//! Fixture: a fuzz corpus that exercises `Message::Ping` but forgot
//! the other variant — wire-tags must flag the gap.

pub fn corpus() -> Vec<Message> {
    vec![Message::Ping]
}
