//! Integration tests: every rule fires on its seeded fixture at the
//! exact file:line, every allowlisted occurrence stays silent, and the
//! real workspace is clean.
//!
//! The fixture tree under `tests/fixtures/ws1` mirrors real workspace
//! paths (`crates/net/src/serve.rs`, …) so the production rule
//! configuration — which keys on those paths — applies unchanged. The
//! tree is excluded from the workspace walk (`SKIP_PREFIXES`), so the
//! seeded violations never leak into the self-gate.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws1")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn seeded_fixtures_fire_each_rule_at_exact_sites() {
    let findings = thinair_lint::check_workspace(&fixture_root()).expect("fixture tree readable");
    let sites: Vec<(&str, &str, usize)> =
        findings.iter().map(|f| (f.rule, f.file.as_str(), f.line)).collect();
    assert_eq!(
        sites,
        vec![
            ("wire-tags", "crates/core/src/wire.rs", 5),
            ("determinism", "crates/net/src/chaos.rs", 5),
            ("telemetry-names", "crates/net/src/metrics_use.rs", 4),
            ("telemetry-names", "crates/net/src/metrics_use.rs", 7),
            ("panic-free-hot-path", "crates/net/src/serve.rs", 5),
            ("unsafe-confinement", "crates/net/src/serve.rs", 14),
            ("unsafe-confinement", "crates/net/src/sys.rs", 10),
            ("wire-tags", "crates/net/tests/frame_fuzz.rs", 1),
        ],
        "unexpected finding set:\n{}",
        thinair_lint::render(&findings)
    );
    // Spot-check the explanations the user actually reads.
    let msg = |rule: &str, line: usize| {
        findings
            .iter()
            .find(|f| f.rule == rule && f.line == line)
            .map(|f| f.msg.clone())
            .unwrap_or_default()
    };
    assert!(msg("wire-tags", 5).contains("duplicates value 0x01"));
    assert!(msg("determinism", 5).contains("Instant::now"));
    assert!(msg("telemetry-names", 4).contains("`BadName`"));
    assert!(msg("telemetry-names", 7).contains("multiple kinds (counter, hist)"));
    assert!(msg("unsafe-confinement", 10).contains("SAFETY"));
    assert!(msg("wire-tags", 1).contains("Message::Pong"));
}

#[test]
fn allowlisted_occurrences_stay_silent() {
    // Each fixture pairs its seeded violation with an allowlisted twin:
    // the `lint: allow(...)` sites below must NOT appear as findings.
    let findings = thinair_lint::check_workspace(&fixture_root()).expect("fixture tree readable");
    let silent = [
        ("determinism", "crates/net/src/chaos.rs", 11), // HashMap, annotated
        ("panic-free-hot-path", "crates/net/src/serve.rs", 10), // .expect, annotated
        ("unsafe-confinement", "crates/net/src/serve.rs", 19), // unsafe, annotated
        ("telemetry-names", "crates/net/src/metrics_use.rs", 6), // LegacyName, annotated
        ("wire-tags", "crates/core/src/wire.rs", 7),    // under-used alias, annotated
    ];
    for (rule, file, line) in silent {
        assert!(
            !findings.iter().any(|f| f.rule == rule && f.file == file && f.line == line),
            "allowlisted {rule} at {file}:{line} was reported anyway"
        );
    }
}

#[test]
fn workspace_is_lint_clean() {
    let findings = thinair_lint::check_workspace(&workspace_root()).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "the workspace gate must stay clean; fix or annotate:\n{}",
        thinair_lint::render(&findings)
    );
}

#[test]
fn binary_exit_codes_match_the_contract() {
    let bin = env!("CARGO_BIN_EXE_thinair-lint");
    let on = |root: &Path| Command::new(bin).arg("--root").arg(root).output().expect("spawn");

    let clean = on(&workspace_root());
    assert!(clean.status.success(), "workspace run must exit 0");

    let seeded = on(&fixture_root());
    assert_eq!(seeded.status.code(), Some(1), "seeded fixtures must exit 1");
    let stdout = String::from_utf8_lossy(&seeded.stdout);
    assert!(stdout.contains("crates/net/src/chaos.rs:5"), "findings carry file:line\n{stdout}");

    let bad = Command::new(bin).arg("--rule").arg("nonsense").output().expect("spawn");
    assert_eq!(bad.status.code(), Some(2), "usage errors must exit 2");
}
