//! The project-invariant rules.
//!
//! Each rule has a stable id (reported in findings and usable in
//! allowlist annotations) plus a short alias for annotation ergonomics:
//!
//! | id                    | alias        | invariant                                  |
//! |-----------------------|--------------|--------------------------------------------|
//! | `determinism`         | `determinism`| no wall clock / unordered maps in verdict, |
//! |                       |              | fingerprint, or schedule-enumeration code  |
//! | `unsafe-confinement`  | `unsafe`     | `unsafe` only in `net::sys` + `compat`,    |
//! |                       |              | every block preceded by `// SAFETY:`       |
//! | `panic-free-hot-path` | `panic`      | no unwrap/expect/panic!/unreachable! in    |
//! |                       |              | the serve hot path                         |
//! | `telemetry-names`     | `telemetry`  | metric names lowercase dot-separated; one  |
//! |                       |              | kind (counter/gauge/hist) per name         |
//! | `wire-tags`           | `wire`       | tag constants unique; every `Message`      |
//! |                       |              | variant in codec + fuzz corpus             |
//!
//! Allowlist syntax — on the offending line or the line directly above:
//!
//! ```text
//! // lint: allow(panic): poisoned mutex is unrecoverable here
//! ```
//!
//! The reason after the colon is mandatory; an empty reason does not
//! suppress the finding. Clippy remains responsible for language-level
//! lints; these rules encode *project* invariants the compiler and
//! clippy cannot see.

use std::collections::BTreeMap;

use crate::scan::{find_word, has_word};
use crate::{Finding, SourceFile};

/// All rule ids, in reporting order.
pub const RULE_IDS: [&str; 5] =
    ["determinism", "unsafe-confinement", "panic-free-hot-path", "telemetry-names", "wire-tags"];

/// Files whose computation must be a pure function of seeds and specs:
/// chaos verdicts, fault processes, the interleaving explorer, the soak
/// auditor, and trace fingerprinting. Wall-clock reads and
/// iteration-order-nondeterministic containers are banned here.
/// (`scenario::timing` is the one sanctioned wall-clock seam; it is a
/// different file precisely so this list can stay absolute.)
const DETERMINISM_FILES: [&str; 5] = [
    "crates/netsim/src/fault.rs",
    "crates/net/src/chaos.rs",
    "crates/scenario/src/explore.rs",
    "crates/scenario/src/soak.rs",
    "crates/scenario/src/trace_check.rs",
];

/// Tokens banned in determinism-critical files, with the reason used in
/// the finding message.
const DETERMINISM_BANNED: [(&str, &str); 6] = [
    ("Instant::now", "wall-clock read on a deterministic path"),
    ("SystemTime", "wall-clock read on a deterministic path"),
    ("thread::current", "thread identity is schedule-dependent"),
    ("HashMap", "iteration order is nondeterministic; use BTreeMap"),
    ("HashSet", "iteration order is nondeterministic; use BTreeSet"),
    ("RandomState", "randomized hasher state breaks reproducibility"),
];

/// The only files allowed to contain `unsafe` (exact path or prefix).
const UNSAFE_ALLOWED: [&str; 2] = ["crates/net/src/sys.rs", "crates/compat/"];

/// How many lines above an `unsafe` occurrence a `// SAFETY:` comment
/// may sit (a declaration line is often between the comment and the
/// block).
const SAFETY_LOOKBACK: usize = 3;

/// The serve hot path: modules where a panic takes down a daemon
/// serving thousands of concurrent sessions.
const HOT_PATH_FILES: [&str; 6] = [
    "crates/net/src/reliable.rs",
    "crates/net/src/serve.rs",
    "crates/net/src/shard.rs",
    "crates/net/src/transport.rs",
    "crates/net/src/udp.rs",
    "crates/net/src/rt.rs",
];

const PANIC_TOKENS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Telemetry registration entry points whose first string argument is a
/// metric name.
const TELEMETRY_SINKS: [(&str, &str); 3] =
    [("counter_add(", "counter"), ("gauge_set(", "gauge"), ("observe(", "hist")];

/// Maps an annotation key to the rule it suppresses (full id and short
/// alias both work).
fn rule_for_key(key: &str) -> Option<&'static str> {
    match key {
        "determinism" => Some("determinism"),
        "unsafe" | "unsafe-confinement" => Some("unsafe-confinement"),
        "panic" | "panic-free-hot-path" => Some("panic-free-hot-path"),
        "telemetry" | "telemetry-names" => Some("telemetry-names"),
        "wire" | "wire-tags" => Some("wire-tags"),
        _ => None,
    }
}

/// Whether a `// lint: allow(<key>): <reason>` annotation for `rule`
/// (with a non-empty reason) appears in `comment`.
fn comment_allows(comment: &str, rule: &str) -> bool {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        let after = &rest[pos + "lint: allow(".len()..];
        let Some(close) = after.find(')') else { return false };
        let key = after[..close].trim();
        let tail = after[close + 1..].trim_start();
        let reason_ok =
            tail.strip_prefix(':').map(str::trim).is_some_and(|reason| !reason.is_empty());
        if rule_for_key(key) == Some(rule) && reason_ok {
            return true;
        }
        rest = &after[close..];
    }
    false
}

/// Whether line `idx` (0-based) of `file` carries or inherits an
/// allowlist annotation for `rule`: on the line itself, or anywhere in
/// the contiguous block of comment-only lines directly above it (so a
/// justification can span several comment lines).
fn allowed(file: &SourceFile, idx: usize, rule: &str) -> bool {
    if comment_allows(&file.lines[idx].comment, rule) {
        return true;
    }
    let mut up = idx;
    while up > 0 {
        up -= 1;
        let line = &file.lines[up];
        if !line.code.trim().is_empty() {
            return false;
        }
        if comment_allows(&line.comment, rule) {
            return true;
        }
    }
    false
}

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    file: &SourceFile,
    idx: usize,
    msg: String,
) {
    if !allowed(file, idx, rule) {
        findings.push(Finding { rule, file: file.rel.clone(), line: idx + 1, msg });
    }
}

/// Path match helper: `rel` equals the entry or starts with a `/`-free
/// prefix entry ending in `/`.
fn path_in(rel: &str, set: &[&str]) -> bool {
    set.iter().any(|p| {
        if let Some(prefix) = p.strip_suffix('/') {
            rel.starts_with(prefix) && rel.as_bytes().get(prefix.len()) == Some(&b'/')
        } else {
            rel == *p
        }
    })
}

// ---------------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------------

pub fn determinism(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !path_in(&file.rel, &DETERMINISM_FILES) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (token, why) in DETERMINISM_BANNED {
            if has_word(&line.code, token) {
                push(
                    findings,
                    "determinism",
                    file,
                    idx,
                    format!("`{token}` in determinism-critical module: {why}"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unsafe-confinement
// ---------------------------------------------------------------------------

pub fn unsafe_confinement(file: &SourceFile, findings: &mut Vec<Finding>) {
    let confined = path_in(&file.rel, &UNSAFE_ALLOWED);
    for (idx, line) in file.lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        if !confined {
            push(
                findings,
                "unsafe-confinement",
                file,
                idx,
                "`unsafe` outside net::sys and crates/compat".to_string(),
            );
            continue;
        }
        // Inside the confinement zone every unsafe block still needs a
        // nearby `// SAFETY:` justification.
        let start = idx.saturating_sub(SAFETY_LOOKBACK);
        let justified = file.lines[start..=idx].iter().any(|l| l.comment.contains("SAFETY:"));
        if !justified {
            push(
                findings,
                "unsafe-confinement",
                file,
                idx,
                "`unsafe` without a `// SAFETY:` comment within 3 lines".to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: panic-free-hot-path
// ---------------------------------------------------------------------------

pub fn panic_free_hot_path(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !path_in(&file.rel, &HOT_PATH_FILES) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in PANIC_TOKENS {
            if has_word(&line.code, token) {
                push(
                    findings,
                    "panic-free-hot-path",
                    file,
                    idx,
                    format!("`{token}` on the serve hot path (annotate `lint: allow(panic): …` if unreachable)",
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: telemetry-names
// ---------------------------------------------------------------------------

/// `lowercase.dot.separated`: at least two segments of
/// `[a-z0-9_]+` joined by single dots.
fn valid_metric_name(name: &str) -> bool {
    let mut segments = 0;
    for seg in name.split('.') {
        if seg.is_empty()
            || !seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Per-file pass: validates the shape of every metric name and records
/// `name -> (kind, first site)` into `names` for the cross-file
/// duplicate-kind check. The preceding character of a sink match must
/// not be `.` — the registration entry points are free functions, and a
/// method call like `ring.observe(..)` on some other type is not one.
pub fn telemetry_names(
    file: &SourceFile,
    names: &mut BTreeMap<String, Vec<(&'static str, String, usize)>>,
    findings: &mut Vec<Finding>,
) {
    for (idx, line) in file.lines.iter().enumerate() {
        for (sink, kind) in TELEMETRY_SINKS {
            let Some(at) = find_word(&line.code, sink) else { continue };
            if at > 0 && line.code[..at].ends_with('.') {
                continue;
            }
            // The name is the first string literal on the line; a call
            // whose name argument is a variable is out of scope.
            let Some(name) = line.strings.first() else { continue };
            if !valid_metric_name(name) && !line.in_test {
                push(
                    findings,
                    "telemetry-names",
                    file,
                    idx,
                    format!("metric name `{name}` is not lowercase dot-separated"),
                );
            }
            if !line.in_test && !allowed(file, idx, "telemetry-names") {
                names.entry(name.clone()).or_default().push((kind, file.rel.clone(), idx + 1));
            }
        }
    }
}

/// Cross-file pass: one metric name must be registered as exactly one
/// kind (a name that is both a counter and a histogram is a typo or a
/// duplicate registration).
pub fn telemetry_kinds(
    names: &BTreeMap<String, Vec<(&'static str, String, usize)>>,
    findings: &mut Vec<Finding>,
) {
    for (name, sites) in names {
        let mut kinds: Vec<&str> = sites.iter().map(|(k, _, _)| *k).collect();
        kinds.sort_unstable();
        kinds.dedup();
        if kinds.len() > 1 {
            let (_, file, line) = &sites[0];
            findings.push(Finding {
                rule: "telemetry-names",
                file: file.clone(),
                line: *line,
                msg: format!(
                    "metric name `{name}` registered as multiple kinds ({})",
                    kinds.join(", ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: wire-tags
// ---------------------------------------------------------------------------

const WIRE_CODEC: &str = "crates/core/src/wire.rs";
const FRAME_CODEC: &str = "crates/net/src/frame.rs";
const FUZZ_CORPUS: &str = "crates/net/tests/frame_fuzz.rs";

/// Collects `const <PREFIX>_NAME: u8 = <value>;` declarations.
fn tag_consts(file: &SourceFile, prefix: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let code = line.code.trim();
        // A visibility modifier must not hide a tag constant from the
        // uniqueness check.
        let code = match code.find("const ") {
            Some(0) => code,
            Some(at)
                if code[..at].trim_end() == "pub" || code[..at].trim_end().starts_with("pub(") =>
            {
                &code[at..]
            }
            _ => continue,
        };
        let Some(rest) = code.strip_prefix("const ") else { continue };
        let Some((name, tail)) = rest.split_once(':') else { continue };
        let name = name.trim();
        if !name.starts_with(prefix) {
            continue;
        }
        let Some((_, value)) = tail.split_once('=') else { continue };
        let value = value.trim().trim_end_matches(';').trim().to_string();
        out.push((name.to_string(), value, idx + 1));
    }
    out
}

/// Variant names of `pub enum <name>` in `file` (top-level identifiers
/// one brace deep inside the enum body).
fn enum_variants(file: &SourceFile, name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth_in_enum: i64 = -1; // -1: outside
    for line in &file.lines {
        let code = &line.code;
        if depth_in_enum < 0 {
            if has_word(code, &format!("enum {name}")) && code.contains('{') {
                depth_in_enum =
                    1 + brace_delta(&code[code.find('{').map(|p| p + 1).unwrap_or(0)..]);
                continue;
            }
            continue;
        }
        if depth_in_enum == 1 {
            let trimmed = code.trim();
            let ident: String =
                trimmed.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
            if !ident.is_empty() && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                let after = &trimmed[ident.len()..];
                if after.is_empty()
                    || after.starts_with(' ')
                    || after.starts_with('{')
                    || after.starts_with('(')
                    || after.starts_with(',')
                {
                    out.push(ident);
                }
            }
        }
        depth_in_enum += brace_delta(code);
        if depth_in_enum <= 0 {
            break;
        }
    }
    out
}

fn brace_delta(code: &str) -> i64 {
    code.chars()
        .map(|c| match c {
            '{' => 1,
            '}' => -1,
            _ => 0,
        })
        .sum()
}

fn occurrences(file: &SourceFile, token: &str) -> usize {
    file.lines.iter().filter(|l| !l.in_test).filter(|l| has_word(&l.code, token)).count()
}

/// Workspace-level rule: tag constants unique per codec; every
/// `wire::Message` variant handled in both codec directions and present
/// in the frame fuzz corpus.
pub fn wire_tags(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let by_rel = |rel: &str| -> Option<&SourceFile> { files.iter().find(|f| f.rel == rel) };

    for (rel, prefix) in [(WIRE_CODEC, "TAG_"), (FRAME_CODEC, "PTAG_")] {
        let Some(file) = by_rel(rel) else { continue };
        let consts = tag_consts(file, prefix);
        let mut seen: BTreeMap<String, String> = BTreeMap::new();
        for (name, value, line) in &consts {
            if let Some(prev) = seen.get(value) {
                push(
                    findings,
                    "wire-tags",
                    file,
                    line - 1,
                    format!("tag constant `{name}` duplicates value {value} of `{prev}`"),
                );
            } else {
                seen.insert(value.clone(), name.clone());
            }
        }
        // Every tag constant must appear in both an encode site and a
        // decode arm — i.e. at least twice beyond its declaration.
        for (name, _, line) in &consts {
            if occurrences(file, name) < 3 {
                push(
                    findings,
                    "wire-tags",
                    file,
                    line - 1,
                    format!("tag constant `{name}` is not used in both codec directions"),
                );
            }
        }
    }

    let Some(wire) = by_rel(WIRE_CODEC) else { return };
    let variants = enum_variants(wire, "Message");
    let fuzz = by_rel(FUZZ_CORPUS);
    for v in &variants {
        let token = format!("Message::{v}");
        if occurrences(wire, &token) < 2 {
            findings.push(Finding {
                rule: "wire-tags",
                file: wire.rel.clone(),
                line: 1,
                msg: format!("`{token}` is not handled in both encode and decode"),
            });
        }
        if let Some(fuzz) = fuzz {
            let in_corpus = fuzz.lines.iter().any(|l| has_word(&l.code, &token));
            if !in_corpus {
                findings.push(Finding {
                    rule: "wire-tags",
                    file: fuzz.rel.clone(),
                    line: 1,
                    msg: format!("`{token}` missing from the frame fuzz corpus"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Unit tests for the helpers
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile { rel: rel.to_string(), lines: scan(src) }
    }

    #[test]
    fn allow_annotation_requires_reason() {
        assert!(comment_allows(" lint: allow(panic): checked above", "panic-free-hot-path"));
        assert!(!comment_allows(" lint: allow(panic):", "panic-free-hot-path"));
        assert!(!comment_allows(" lint: allow(panic)", "panic-free-hot-path"));
        assert!(!comment_allows(" lint: allow(determinism): x", "panic-free-hot-path"));
        assert!(comment_allows(
            " lint: allow(panic-free-hot-path): full id works",
            "panic-free-hot-path"
        ));
    }

    #[test]
    fn metric_name_shape() {
        assert!(valid_metric_name("net.tx.frames"));
        assert!(valid_metric_name("phase.coord.start_barrier"));
        assert!(!valid_metric_name("netTxFrames"));
        assert!(!valid_metric_name("single"));
        assert!(!valid_metric_name("net..tx"));
        assert!(!valid_metric_name("Net.tx"));
        assert!(!valid_metric_name("net.tx "));
    }

    #[test]
    fn enum_variant_extraction() {
        let f = file(
            "crates/core/src/wire.rs",
            "pub enum Message {\n    XPacket {\n        id: u16,\n    },\n    Done,\n    Pair(u8),\n}\n",
        );
        assert_eq!(enum_variants(&f, "Message"), vec!["XPacket", "Done", "Pair"]);
    }

    #[test]
    fn tag_const_extraction_and_duplicates() {
        let f = file(
            "crates/core/src/wire.rs",
            "const TAG_A: u8 = 0x01;\nconst TAG_B: u8 = 0x02;\nconst TAG_C: u8 = 0x01;\n",
        );
        let consts = tag_consts(&f, "TAG_");
        assert_eq!(consts.len(), 3);
        assert_eq!(consts[0], ("TAG_A".to_string(), "0x01".to_string(), 1));
    }

    #[test]
    fn hot_path_rule_skips_tests_and_allows() {
        let src = "fn f() {\n\
                   x.unwrap();\n\
                   // lint: allow(panic): impossible by construction\n\
                   y.unwrap();\n\
                   z.unwrap(); // lint: allow(panic): same line\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t() { q.unwrap(); } }\n";
        let f = file("crates/net/src/serve.rs", src);
        let mut findings = Vec::new();
        panic_free_hot_path(&f, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }
}
