//! A hand-rolled Rust *surface* scanner.
//!
//! The lint rules don't need a full parser — they need to know, per
//! source line, (a) what is **code** (with comment text and string /
//! char literal *contents* blanked out, so `"Instant::now"` inside a
//! string never trips the determinism rule), (b) what is **comment**
//! text (so `// SAFETY:` and `// lint: allow(...)` annotations can be
//! found), (c) the **string literal values** on the line (so the
//! telemetry-name rule can validate metric names), and (d) whether the
//! line sits inside a `#[cfg(test)]` region (rules about production
//! paths skip test code).
//!
//! The scanner handles line comments, nested block comments, plain and
//! raw (`r#"…"#`) string literals, byte strings, char literals vs.
//! lifetimes, and escape sequences. It is deliberately line-oriented:
//! every rule reports `file:line`, so the scan keeps that shape.

/// One scanned source line.
#[derive(Clone, Debug, Default)]
pub struct ScanLine {
    /// The line with comments removed and string/char contents blanked
    /// (quotes preserved). Identifier and operator structure intact.
    pub code: String,
    /// Concatenated comment text found on this line (both `//` and the
    /// portion of any `/* … */` that crosses it), without the markers.
    pub comment: String,
    /// String literal values completed on this line, in order.
    pub strings: Vec<String>,
    /// True when the line is inside a `#[cfg(test)]`-gated brace region.
    pub in_test: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Inside `/* … */`; the payload is the nesting depth.
    Block(u32),
    /// Inside `"…"` (or `b"…"`). Plain strings may span lines.
    Str,
    /// Inside `r##"…"##`; payload is the number of `#`s.
    RawStr(u8),
    /// Inside `'…'`.
    Char,
}

/// Scans a whole file into per-line surface facts.
pub fn scan(src: &str) -> Vec<ScanLine> {
    let bytes = src.as_bytes();
    let mut out: Vec<ScanLine> = Vec::new();
    let mut cur = ScanLine::default();
    let mut cur_string = String::new();
    let mut mode = Mode::Code;

    // `#[cfg(test)]` region tracking. `pending_test` latches when an
    // attribute line mentions a test cfg; the next opening brace starts
    // a test region ending when the depth drops back below it.
    let mut depth: i64 = 0;
    let mut pending_test = false;
    let mut test_region_depth: Option<i64> = None;
    let mut line_touched_test_region = false;

    let mut i = 0usize;
    while i <= bytes.len() {
        // End of line (or end of file): flush the accumulated line.
        if i == bytes.len() || bytes[i] == b'\n' {
            if mode == Mode::Char {
                mode = Mode::Code; // char literals cannot span lines
            }
            let attr_line = is_test_attr(&cur.code);
            if attr_line && test_region_depth.is_none() {
                pending_test = true;
            } else if pending_test
                && test_region_depth.is_none()
                && !attr_line
                && cur.code.trim_end().ends_with(';')
            {
                // `#[cfg(test)]` followed by `use …;` — the gated item
                // ended without a brace; nothing to region-track.
                pending_test = false;
            }
            cur.in_test = test_region_depth.is_some() || line_touched_test_region;
            out.push(std::mem::take(&mut cur));
            line_touched_test_region = false;
            if i == bytes.len() {
                break;
            }
            i += 1;
            continue;
        }
        let c = bytes[i];
        match mode {
            Mode::Code => {
                match c {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        // Line comment: rest of line is comment text.
                        let start = i + 2;
                        let end =
                            src[start..].find('\n').map(|off| start + off).unwrap_or(bytes.len());
                        cur.comment.push_str(src[start..end].trim_start_matches(['/', '!']));
                        i = end;
                        continue;
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        mode = Mode::Block(1);
                        i += 2;
                        continue;
                    }
                    b'"' => {
                        cur.code.push('"');
                        cur_string.clear();
                        mode = Mode::Str;
                    }
                    b'r' | b'b' if !prev_is_word(&cur.code) => {
                        // Possible raw-string or byte-literal prefix.
                        if let Some((hashes, consumed)) = raw_prefix(&bytes[i..]) {
                            cur.code.push('"');
                            cur_string.clear();
                            mode = Mode::RawStr(hashes);
                            i += consumed;
                            continue;
                        }
                        if c == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                            cur.code.push('\'');
                            mode = Mode::Char;
                            i += 2;
                            continue;
                        }
                        cur.code.push(c as char);
                    }
                    b'\'' => {
                        // Lifetime (`'a`) vs char literal (`'a'`).
                        let next_word = bytes
                            .get(i + 1)
                            .is_some_and(|&n| n.is_ascii_alphanumeric() || n == b'_');
                        let closes = bytes.get(i + 2) == Some(&b'\'');
                        if next_word && !closes {
                            cur.code.push('\''); // lifetime marker
                        } else {
                            cur.code.push('\'');
                            mode = Mode::Char;
                        }
                    }
                    b'{' => {
                        // `pending_test` covers the attr-on-previous-line
                        // case; checking the current line's code covers
                        // `#[cfg(test)] mod t {` on a single line.
                        if test_region_depth.is_none() && (pending_test || is_test_attr(&cur.code))
                        {
                            test_region_depth = Some(depth);
                            pending_test = false;
                            line_touched_test_region = true;
                        }
                        depth += 1;
                        cur.code.push('{');
                    }
                    b'}' => {
                        depth -= 1;
                        if test_region_depth.is_some_and(|d| depth <= d) {
                            test_region_depth = None;
                            line_touched_test_region = true;
                        }
                        cur.code.push('}');
                    }
                    _ => cur.code.push(c as char),
                }
                i += 1;
            }
            Mode::Block(d) => {
                if c == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    mode = if d == 1 { Mode::Code } else { Mode::Block(d - 1) };
                    i += 2;
                } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::Block(d + 1);
                    i += 2;
                } else {
                    cur.comment.push(c as char);
                    i += 1;
                }
            }
            Mode::Str => match c {
                b'\\' => match bytes.get(i + 1) {
                    // `\` + newline is a line continuation: consume only
                    // the backslash so the newline flushes the line.
                    Some(&b'\n') | None => i += 1,
                    Some(_) => {
                        cur_string.push('?');
                        i += 2;
                    }
                },
                b'"' => {
                    cur.code.push('"');
                    cur.strings.push(std::mem::take(&mut cur_string));
                    mode = Mode::Code;
                    i += 1;
                }
                _ => {
                    cur_string.push(c as char);
                    i += 1;
                }
            },
            Mode::RawStr(hashes) => {
                if c == b'"' && closes_raw(&bytes[i + 1..], hashes) {
                    cur.code.push('"');
                    cur.strings.push(std::mem::take(&mut cur_string));
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur_string.push(c as char);
                    i += 1;
                }
            }
            Mode::Char => match c {
                b'\\' => i += 2,
                b'\'' => {
                    cur.code.push('\'');
                    mode = Mode::Code;
                    i += 1;
                }
                _ => i += 1,
            },
        }
    }
    out
}

/// Whether a code line carries a test-gating attribute.
fn is_test_attr(code: &str) -> bool {
    code.contains("#[cfg(test")
        || code.contains("#[cfg(all(test")
        || code.contains("#[cfg(any(test")
}

/// Whether the last code character continues an identifier (so an `r`
/// here is part of a word like `for`, not a raw-string prefix).
fn prev_is_word(code: &str) -> bool {
    code.chars().next_back().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Matches `r"`, `r#"`, `br##"`, … at the start of `b`. Returns the
/// hash count and bytes consumed up to and including the opening quote.
fn raw_prefix(b: &[u8]) -> Option<(u8, usize)> {
    let mut j = 0usize;
    if b.first() == Some(&b'b') {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u8;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// Whether `hashes` `#`s follow (closing a raw string whose `"` was
/// just seen).
fn closes_raw(after_quote: &[u8], hashes: u8) -> bool {
    let n = hashes as usize;
    after_quote.len() >= n && after_quote[..n].iter().all(|&c| c == b'#')
}

/// True when `needle` occurs in `hay` as a standalone token. Identifier
/// boundaries are only enforced on the sides of the needle that are
/// themselves identifier characters, so needles like `.unwrap()` or
/// `observe(` work naturally.
pub fn has_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle).is_some()
}

/// Byte offset of the first standalone-token occurrence of `needle`.
pub fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let is_word = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let guard_front = needle.chars().next().is_some_and(is_word);
    let guard_back = needle.chars().next_back().is_some_and(is_word);
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok =
            !guard_front || at == 0 || !hay[..at].chars().next_back().is_some_and(is_word);
        let after = at + needle.len();
        let after_ok =
            !guard_back || after >= hay.len() || !hay[after..].chars().next().is_some_and(is_word);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let lines = scan("let x = \"Instant::now\"; // Instant::now here\n");
        assert!(!lines[0].code.contains("Instant::now"));
        assert!(lines[0].comment.contains("Instant::now"));
        assert_eq!(lines[0].strings, vec!["Instant::now".to_string()]);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let lines = scan("let s = r#\"a \"quoted\" HashMap\"#; let t = \"\\\"esc\\\"\";\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert_eq!(lines[0].strings.len(), 2);
        assert!(lines[0].strings[0].contains("HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = scan("a /* x /* y */ z */ b\nc\n");
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert!(lines[0].comment.contains('y'));
        assert_eq!(lines[1].code, "c");
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lines = scan("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'q';\n");
        assert!(lines[0].code.contains("fn f<'a>"));
        assert!(!lines[1].code.contains('q'));
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { y.unwrap(); }\n\
                   }\n\
                   fn prod2() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test, "mod tests opening line is test code");
        assert!(lines[3].in_test);
        assert!(lines[4].in_test, "closing brace line is test code");
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_test_use_item_does_not_latch() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { x.unwrap(); }\n";
        let lines = scan(src);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn cfg_all_test_region() {
        let src = "#[cfg(all(test, target_os = \"linux\"))]\nmod tests {\nbad();\n}\n";
        let lines = scan(src);
        assert!(lines[2].in_test);
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("let m = HashMap::new();", "HashMap"));
        assert!(!has_word("allow(unsafe_code)", "unsafe"));
        assert!(has_word("unsafe { f() }", "unsafe"));
        assert!(!has_word("MyHashMap::new()", "HashMap"));
        assert!(has_word("telemetry::observe(name, v)", "observe("));
        assert!(!has_word("self.observed(x)", "observe("));
        assert!(has_word("x.unwrap();", ".unwrap()"));
        assert!(!has_word("x.unwrap_or(0);", ".unwrap()"));
    }

    #[test]
    fn multiline_string_keeps_line_count() {
        let src = "let s = \"line one\nline two\";\nlet x = 1;\n";
        let lines = scan(src);
        assert_eq!(lines.len(), 4); // 3 lines + trailing empty flush
        assert!(lines[2].code.contains("let x"));
        assert_eq!(lines[1].strings.len(), 1);
    }
}
