//! `thinair-lint` — the workspace invariant checker.
//!
//! The workspace's correctness story rests on invariants the compiler
//! never checks: chaos verdicts and the interleaving explorer must be
//! pure functions of seeds (no wall clock, no hash-order iteration),
//! `unsafe` stays confined to `net::sys` and the offline `compat`
//! shims, and the serve hot path must not panic under a malformed
//! datagram or a saturated queue. This crate turns those prose
//! invariants (lib.rs doc-comments, ARCHITECTURE.md promises) into a
//! machine-checked gate: a hand-rolled token scanner ([`scan`]) feeds
//! a set of named, allowlistable rules ([`rules`]), and any unallowed
//! finding makes the `thinair-lint` binary (or `thinaird lint`) exit
//! nonzero.
//!
//! Division of labor: `cargo clippy -D warnings` owns *language*
//! lints; this crate owns *project* invariants clippy cannot know
//! about. See the [`rules`] module docs for the rule table and the
//! allowlist syntax.
//!
//! ```
//! let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
//! let findings = thinair_lint::check_workspace(&root).expect("workspace readable");
//! assert!(findings.is_empty(), "{}", thinair_lint::render(&findings));
//! ```

pub mod rules;
pub mod scan;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use scan::ScanLine;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (see [`rules::RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// One-line explanation.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// A scanned source file.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Per-line scan facts.
    pub lines: Vec<ScanLine>,
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Workspace-relative prefixes excluded from the walk. The lint's own
/// test fixtures contain *seeded* violations; scanning them from the
/// workspace gate would defeat their purpose.
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/tests/fixtures"];

/// Recursively collects and scans every `.rs` file under `root`.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
                continue;
            }
            if !name.ends_with(".rs") {
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            let src = fs::read_to_string(&path)?;
            files.push(SourceFile { rel, lines: scan::scan(&src) });
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// Runs every rule over already-loaded files.
pub fn check_files(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut metric_names: BTreeMap<String, Vec<(&'static str, String, usize)>> = BTreeMap::new();
    for file in files {
        rules::determinism(file, &mut findings);
        rules::unsafe_confinement(file, &mut findings);
        rules::panic_free_hot_path(file, &mut findings);
        rules::telemetry_names(file, &mut metric_names, &mut findings);
    }
    rules::telemetry_kinds(&metric_names, &mut findings);
    rules::wire_tags(files, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Walks `root` and runs every rule: the one-call workspace gate.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(check_files(&load_workspace(root)?))
}

/// Renders findings one per line, ready for a terminal.
pub fn render(findings: &[Finding]) -> String {
    findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
}
