//! `thinair-lint` — run the workspace invariant rules from the shell.
//!
//! ```text
//! thinair-lint [--root DIR] [--rule ID] [--list-rules]
//! ```
//!
//! Exit status: `0` clean, `1` at least one unallowed finding, `2`
//! usage or I/O error. CI runs this before the test jobs (`lint-smoke`).

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: thinair-lint [--root DIR] [--rule ID] [--list-rules]\n\
         rules: {}",
        thinair_lint::rules::RULE_IDS.join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut rule_filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--rule" => match args.next() {
                Some(id) if thinair_lint::rules::RULE_IDS.contains(&id.as_str()) => {
                    rule_filter = Some(id)
                }
                Some(id) => {
                    eprintln!("thinair-lint: unknown rule `{id}`");
                    return usage();
                }
                None => return usage(),
            },
            "--list-rules" => {
                for id in thinair_lint::rules::RULE_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let files = match thinair_lint::load_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("thinair-lint: cannot read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut findings = thinair_lint::check_files(&files);
    if let Some(rule) = &rule_filter {
        findings.retain(|f| f.rule == rule.as_str());
    }
    if findings.is_empty() {
        println!(
            "thinair-lint: clean ({} files, {} rules)",
            files.len(),
            thinair_lint::rules::RULE_IDS.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("{}", thinair_lint::render(&findings));
        println!("thinair-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
