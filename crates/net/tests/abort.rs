//! Regression tests for the structured-abort path: a crashed terminal
//! must leave every surviving node with a clean [`AbortReason`] within
//! the session deadline — no hang, no `Err`, no divergent secret — on
//! both the simulated transport and real loopback UDP.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use thinair_core::round::XSchedule;
use thinair_net::driver::drive_sim_chaos;
use thinair_net::node::Node;
use thinair_net::rt;
use thinair_net::session::{AbortReason, SessionConfig};
use thinair_net::transport::UdpTransport;
use thinair_net::udp::AsyncUdpSocket;
use thinair_netsim::{CrashSpec, FaultPlan, IidMedium};

fn cfg(n_nodes: u8, deadline: Duration) -> SessionConfig {
    SessionConfig {
        n_nodes,
        coordinator: 0,
        schedule: XSchedule::CoordinatorOnly(30),
        payload_len: 8,
        drop_prob: 0.3,
        deadline,
        retransmit: Duration::from_millis(10),
        x_settle: Duration::from_millis(60),
        ..SessionConfig::default()
    }
}

/// SimTransport: terminal 2 crashes the moment it sends its reception
/// report. Every node terminates with a structured abort before the
/// deadline elapses twice over, and the crashed session never wedges
/// the batch.
#[test]
fn crashed_terminal_aborts_cleanly_on_sim() {
    let deadline = Duration::from_millis(1500);
    let plan = FaultPlan {
        crash: Some(CrashSpec { prob: 1.0, node: Some(2), after_seq: 1 }),
        ..FaultPlan::none()
    };
    let started = Instant::now();
    let run =
        drive_sim_chaos(IidMedium::symmetric(3, 0.0, 5), &cfg(3, deadline), &[1], 11, plan, 99)
            .expect("the batch itself must not error");
    let elapsed = started.elapsed();
    assert!(
        elapsed < deadline * 3,
        "aborts must land near the deadline, not hang: took {elapsed:?}"
    );
    let outcomes = &run.outcomes[0];
    assert_eq!(outcomes.len(), 3);
    for out in outcomes {
        let reason = out
            .abort
            .as_ref()
            .unwrap_or_else(|| panic!("node {} should have aborted, got l={}", out.node, out.l));
        assert!(
            matches!(reason, AbortReason::Deadline { .. } | AbortReason::Unreachable { .. }),
            "node {}: unexpected reason {reason}",
            out.node
        );
        assert!(out.secret.is_empty(), "aborted outcomes never carry secrets");
        assert!(out.key().is_none());
    }
    // The coordinator's trace records the reason and the partial
    // report set for offline audit.
    let trace = outcomes[0].trace.as_ref().expect("coordinator trace present on abort");
    assert!(trace.abort.is_some());
    assert_eq!(trace.reports.len(), 3);
    assert!(trace.reports[2].is_empty(), "the crashed terminal never reported");
    assert!(run.faults.crash_dropped > 0, "the injector must log the crash");
}

/// Loopback UDP: the roster names three nodes but node 2's process is
/// never started (the real-world crash). Both live nodes yield
/// structured aborts within the deadline — the `drive`-level
/// equivalent of "no hang" on real sockets.
#[test]
fn dead_peer_aborts_cleanly_on_udp() {
    let deadline = Duration::from_millis(800);
    let c = SessionConfig { max_attempts: 12, ..cfg(3, deadline) };
    // Bind all three sockets so the roster is real, but only run 0 and 1.
    let socks: Vec<AsyncUdpSocket> =
        (0..3).map(|_| AsyncUdpSocket::bind("127.0.0.1:0").unwrap()).collect();
    let addrs: Vec<SocketAddr> = socks.iter().map(|s| s.local_addr().unwrap()).collect();
    let mut it = socks.into_iter();
    let node0 = Node::new(UdpTransport::new(it.next().unwrap(), addrs.clone(), 0));
    let node1 = Node::new(UdpTransport::new(it.next().unwrap(), addrs.clone(), 1));

    let started = Instant::now();
    let (coord, term) = rt::block_on(async {
        node0.start_pump();
        node1.start_pump();
        let h0 = rt::spawn({
            let node0 = node0.clone();
            let c = c.clone();
            async move { node0.coordinate(7, c, 1).await }
        });
        let h1 = rt::spawn({
            let node1 = node1.clone();
            let c = c.clone();
            async move { node1.participate(7, c, 2).await }
        });
        (h0.await, h1.await)
    });
    let elapsed = started.elapsed();
    assert!(elapsed < deadline * 3, "no hang on UDP either: took {elapsed:?}");

    let coord = coord.expect("coordinator returns Ok");
    let term = term.expect("terminal returns Ok");
    for out in [&coord, &term] {
        let reason = out.abort.as_ref().expect("both live nodes abort");
        match reason {
            AbortReason::Unreachable { missing, .. } => {
                assert_eq!(missing, &vec![2], "node {}: wrong peer blamed", out.node)
            }
            AbortReason::Deadline { .. } => {}
            other => panic!("node {}: unexpected reason {other}", out.node),
        }
    }
}

/// Survivable chaos (reordering, duplication, jitter) must not abort:
/// all nodes complete and agree byte-for-byte, and the outcome is
/// identical to the clean run of the same seed.
#[test]
fn survivable_chaos_preserves_agreement_and_determinism() {
    let c = cfg(4, Duration::from_secs(20));
    let plan = FaultPlan {
        reorder: 0.3,
        duplicate: 0.3,
        delay: Some(thinair_netsim::DelaySpec { prob: 0.3, max_frames: 5 }),
        ..FaultPlan::none()
    };
    let run = |plan: FaultPlan| {
        drive_sim_chaos(IidMedium::symmetric(4, 0.0, 5), &c, &[1, 2], 21, plan, 77)
            .expect("batch completes")
    };
    let chaotic = run(plan);
    let clean = run(FaultPlan::none());
    assert!(chaotic.faults.total() > 0, "the plan must actually inject");
    for (outcomes, clean_outcomes) in chaotic.outcomes.iter().zip(clean.outcomes.iter()) {
        let first = &outcomes[0];
        assert!(first.completed() && first.l > 0, "chaos run should still mine a secret");
        for out in outcomes {
            assert!(out.completed(), "node {} aborted under survivable chaos", out.node);
            assert_eq!(out.secret, first.secret, "node {} diverged", out.node);
        }
        // Reordering/duplication must not change the protocol outcome.
        assert_eq!(first.secret, clean_outcomes[0].secret, "chaos changed the secret");
        assert_eq!((first.l, first.m), (clean_outcomes[0].l, clean_outcomes[0].m));
    }
}
