//! Fuzz-style property tests for the datagram codec: the UDP port is an
//! open attack surface, so `Frame::decode` must reject — never panic
//! on — arbitrary and mutated inputs.

use proptest::prelude::*;
use thinair_core::wire::Message;
use thinair_net::frame::{crc32, Frame, NetPayload, FLAG_RELIABLE};

fn arb_payload() -> impl Strategy<Value = NetPayload> {
    prop_oneof![
        (any::<u16>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 0..120)).prop_map(
            |(id, owner, payload)| NetPayload::Proto(Message::XPacket { id, owner, payload })
        ),
        (
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..24),
            proptest::collection::vec(any::<u8>(), 0..120)
        )
            .prop_map(|(index, coeffs, payload)| NetPayload::Proto(Message::ZPacket {
                index,
                coeffs,
                payload
            })),
        (any::<u64>(), any::<u16>(), any::<u16>())
            .prop_map(|(seed, m, l)| NetPayload::Proto(Message::PlanAnnounce { seed, m, l })),
        any::<u32>().prop_map(|seq| NetPayload::Ack { seq }),
        any::<u64>().prop_map(|digest| NetPayload::Start { digest }),
        Just(NetPayload::Done),
        Just(NetPayload::Fin),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (arb_payload(), any::<u8>(), any::<u64>(), any::<u32>(), any::<bool>()).prop_map(
        |(payload, sender, session, seq, reliable)| Frame {
            flags: if reliable { FLAG_RELIABLE } else { 0 },
            sender,
            session,
            seq,
            payload,
        },
    )
}

proptest! {
    /// Well-formed frames always round-trip exactly.
    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let enc = frame.encode();
        prop_assert_eq!(Frame::decode(&enc).unwrap(), frame);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Frame::decode(&data);
    }

    /// Any truncation of a valid frame is rejected (the trailing CRC
    /// makes every strict prefix invalid).
    #[test]
    fn truncations_are_rejected(frame in arb_frame(), cut_frac in 0.0f64..1.0) {
        let enc = frame.encode();
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        if cut < enc.len() {
            prop_assert!(Frame::decode(&enc[..cut]).is_err());
        }
    }

    /// Any single-byte mutation is rejected or decodes to the identical
    /// frame (CRC-32 detects all single-byte errors, so in practice:
    /// rejected).
    #[test]
    fn byte_mutations_are_detected(frame in arb_frame(), pos_frac in 0.0f64..1.0, xor in 1u8..=255) {
        let enc = frame.encode();
        let pos = (((enc.len() - 1) as f64) * pos_frac) as usize;
        let mut bad = enc.to_vec();
        bad[pos] ^= xor;
        prop_assert!(Frame::decode(&bad).is_err(), "mutation at {pos} accepted");
    }

    /// Frames whose checksum was recomputed after corrupting the inner
    /// payload still fail structural validation or parse to *some*
    /// frame — but never panic.
    #[test]
    fn refreshed_checksum_still_safe(frame in arb_frame(), pos_frac in 0.0f64..1.0, xor in 1u8..=255) {
        let mut enc = frame.encode().to_vec();
        let body_len = enc.len() - 4;
        let pos = ((body_len.saturating_sub(1)) as f64 * pos_frac) as usize;
        enc[pos] ^= xor;
        let crc = crc32(&enc[..body_len]).to_be_bytes();
        enc[body_len..].copy_from_slice(&crc);
        let _ = Frame::decode(&enc);
    }
}
