//! Fuzz-style property tests for the datagram codec: the UDP port is an
//! open attack surface, so `Frame::decode` must reject — never panic
//! on — arbitrary and mutated inputs.

use proptest::prelude::*;
use thinair_core::wire::{Message, SparseRow};
use thinair_net::frame::{crc32, Frame, NetPayload, FLAG_RELIABLE};

/// A reception report whose bitmap length matches `n_packets` (the wire
/// format derives the byte count from the packet count).
fn arb_report() -> impl Strategy<Value = Message> {
    (any::<u8>(), 0u16..300).prop_flat_map(|(terminal, n_packets)| {
        proptest::collection::vec(any::<u8>(), (n_packets as usize).div_ceil(8))
            .prop_map(move |bitmap| Message::ReceptionReport { terminal, n_packets, bitmap })
    })
}

/// Sparse rows keep `support` and `coeffs` parallel (the wire format
/// encodes one length for both).
fn arb_sparse_row() -> impl Strategy<Value = SparseRow> {
    proptest::collection::vec((any::<u16>(), any::<u8>()), 0..12).prop_map(|pairs| {
        let (support, coeffs) = pairs.into_iter().unzip();
        SparseRow { support, coeffs }
    })
}

/// Row matrices with one shared row width (the wire format encodes the
/// width once).
fn arb_rows() -> impl Strategy<Value = Vec<Vec<u8>>> {
    (0usize..6, 0usize..24).prop_flat_map(|(rows, width)| {
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), width), rows)
    })
}

/// Every [`Message`] variant, honouring the wire format's structural
/// invariants so each generated message round-trips.
fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u16>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 0..120))
            .prop_map(|(id, owner, payload)| Message::XPacket { id, owner, payload }),
        arb_report(),
        proptest::collection::vec(arb_sparse_row(), 0..6)
            .prop_map(|rows| Message::YAnnounce { rows }),
        (
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..24),
            proptest::collection::vec(any::<u8>(), 0..120)
        )
            .prop_map(|(index, coeffs, payload)| Message::ZPacket {
                index,
                coeffs,
                payload
            }),
        arb_rows().prop_map(|rows| Message::SAnnounce { rows }),
        (any::<u8>(), arb_rows())
            .prop_map(|(terminal, payloads)| Message::PadDelivery { terminal, payloads }),
        (any::<u64>(), any::<u16>(), any::<u16>()).prop_map(|(seed, m, l)| Message::PlanAnnounce {
            seed,
            m,
            l
        }),
        (proptest::collection::vec(any::<u8>(), 0..80), proptest::collection::vec(any::<u8>(), 32))
            .prop_map(|(inner, tag_bytes)| {
                let mut tag = [0u8; 32];
                tag.copy_from_slice(&tag_bytes);
                Message::Authenticated { inner, tag }
            }),
    ]
}

fn arb_payload() -> impl Strategy<Value = NetPayload> {
    prop_oneof![
        arb_message().prop_map(NetPayload::Proto),
        any::<u32>().prop_map(|seq| NetPayload::Ack { seq }),
        any::<u64>().prop_map(|digest| NetPayload::Start { digest }),
        Just(NetPayload::Done),
        Just(NetPayload::Fin),
        any::<u32>().prop_map(|retry_after_ms| NetPayload::Busy { retry_after_ms }),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (arb_payload(), any::<u8>(), any::<u64>(), any::<u32>(), any::<bool>()).prop_map(
        |(payload, sender, session, seq, reliable)| Frame {
            flags: if reliable { FLAG_RELIABLE } else { 0 },
            sender,
            session,
            seq,
            payload,
        },
    )
}

proptest! {
    /// Well-formed frames always round-trip exactly.
    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let enc = frame.encode();
        prop_assert_eq!(Frame::decode(&enc).unwrap(), frame);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Frame::decode(&data);
    }

    /// Any truncation of a valid frame is rejected (the trailing CRC
    /// makes every strict prefix invalid).
    #[test]
    fn truncations_are_rejected(frame in arb_frame(), cut_frac in 0.0f64..1.0) {
        let enc = frame.encode();
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        if cut < enc.len() {
            prop_assert!(Frame::decode(&enc[..cut]).is_err());
        }
    }

    /// Any single-byte mutation is rejected or decodes to the identical
    /// frame (CRC-32 detects all single-byte errors, so in practice:
    /// rejected).
    #[test]
    fn byte_mutations_are_detected(frame in arb_frame(), pos_frac in 0.0f64..1.0, xor in 1u8..=255) {
        let enc = frame.encode();
        let pos = (((enc.len() - 1) as f64) * pos_frac) as usize;
        let mut bad = enc.to_vec();
        bad[pos] ^= xor;
        prop_assert!(Frame::decode(&bad).is_err(), "mutation at {pos} accepted");
    }

    /// Frames whose checksum was recomputed after corrupting the inner
    /// payload still fail structural validation or parse to *some*
    /// frame — but never panic.
    #[test]
    fn refreshed_checksum_still_safe(frame in arb_frame(), pos_frac in 0.0f64..1.0, xor in 1u8..=255) {
        let mut enc = frame.encode().to_vec();
        let body_len = enc.len() - 4;
        let pos = ((body_len.saturating_sub(1)) as f64 * pos_frac) as usize;
        enc[pos] ^= xor;
        let crc = crc32(&enc[..body_len]).to_be_bytes();
        enc[body_len..].copy_from_slice(&crc);
        let _ = Frame::decode(&enc);
    }

    /// Splices of two valid frames (prefix of one + suffix of the
    /// other) never panic, and are rejected unless the splice happens
    /// to reproduce one of the originals byte-for-byte — corruption is
    /// never *silently* accepted.
    #[test]
    fn spliced_frames_are_rejected_or_identical(
        a in arb_frame(),
        b in arb_frame(),
        cut_frac in 0.0f64..1.0,
    ) {
        let ea = a.encode();
        let eb = b.encode();
        let cut = ((ea.len().min(eb.len()) as f64) * cut_frac) as usize;
        let spliced: Vec<u8> = ea[..cut].iter().chain(eb[cut..].iter()).copied().collect();
        match Frame::decode(&spliced) {
            Err(_) => {}
            Ok(got) => {
                // Only acceptable if the splice reconstructed a valid
                // frame verbatim (e.g. identical prefixes).
                prop_assert!(
                    spliced == ea[..] || spliced == eb[..],
                    "novel spliced bytes decoded to {got:?}"
                );
            }
        }
    }

    /// Double-bit flips across the whole datagram (header, payload and
    /// CRC) are rejected or decode to the identical frame — never
    /// silently accepted as something else, never a panic.
    #[test]
    fn double_bit_flips_never_silently_mutate(
        frame in arb_frame(),
        bit_a in any::<u32>(),
        bit_b in any::<u32>(),
    ) {
        let enc = frame.encode();
        let bits = enc.len() * 8;
        let (a, b) = ((bit_a as usize) % bits, (bit_b as usize) % bits);
        let mut bad = enc.to_vec();
        bad[a / 8] ^= 1 << (a % 8);
        bad[b / 8] ^= 1 << (b % 8);
        match Frame::decode(&bad) {
            Err(_) => {}
            Ok(got) => prop_assert_eq!(got, frame, "double flip at bits {}/{} accepted", a, b),
        }
    }
}
