//! End-to-end integration: full group rounds over real loopback UDP
//! sockets and over the simulated medium, with the identical state
//! machines.

use std::time::Duration;

use thinair_core::estimate::{Estimator, Tuning};
use thinair_core::round::XSchedule;
use thinair_net::demo::{loopback_round, loopback_sessions, sim_round};
use thinair_net::session::SessionConfig;
use thinair_netsim::IidMedium;

fn cfg(n_nodes: u8) -> SessionConfig {
    SessionConfig {
        n_nodes,
        coordinator: 0,
        schedule: XSchedule::CoordinatorOnly(60),
        payload_len: 24,
        estimator: Estimator::LeaveOneOut(Tuning::default()),
        drop_prob: 0.4,
        drop_seed: 7,
        deadline: Duration::from_secs(60),
        ..SessionConfig::default()
    }
}

/// The acceptance bar: 3 terminal tasks + 1 coordinator complete a full
/// group round over loopback UDP sockets and derive byte-identical
/// group secrets.
#[test]
fn udp_round_four_nodes_agree() {
    let outcomes = loopback_round(&cfg(4), 0xA11CE, 42).expect("round completes");
    assert_eq!(outcomes.len(), 4);
    let first = &outcomes[0];
    assert!(first.l > 0, "expected a nonempty secret at drop 0.4");
    assert_eq!(first.secret.len(), first.l);
    for out in &outcomes {
        assert_eq!(out.l, first.l);
        assert_eq!(out.m, first.m);
        assert_eq!(out.secret, first.secret, "node {} derived a different secret", out.node);
        assert_eq!(out.key(), first.key());
    }
    // The key actually carries the secret's entropy.
    assert!(first.key().is_some());
}

/// Session-id routing: several rounds run concurrently, multiplexed
/// over each node's single socket, and stay isolated.
#[test]
fn udp_concurrent_sessions_multiplex_on_one_socket() {
    let sessions = [1u64, 2, 3];
    let all = loopback_sessions(&cfg(4), &sessions, 7).expect("all sessions complete");
    assert_eq!(all.len(), 3);
    let mut secrets = Vec::new();
    for (s, outcomes) in sessions.iter().zip(&all) {
        let first = &outcomes[0];
        assert!(first.l > 0, "session {s}: empty secret");
        for out in outcomes {
            assert_eq!(out.session, *s);
            assert_eq!(out.secret, first.secret, "session {s} node {} disagrees", out.node);
        }
        secrets.push(first.secret.clone());
    }
    // Different sessions must not share secrets (independent payloads).
    assert_ne!(secrets[0], secrets[1]);
    assert_ne!(secrets[1], secrets[2]);
}

/// The same state machines pass the equivalent round when the transport
/// is the simulated broadcast medium (losses from the medium, injection
/// off) — the sim ↔ network equivalence the Transport trait exists for.
#[test]
fn sim_round_same_state_machines_agree() {
    let c = SessionConfig {
        drop_prob: 0.0, // the medium supplies the erasures
        ..cfg(4)
    };
    // 4 protocol nodes + one extra medium node standing where Eve would.
    let medium = IidMedium::symmetric(5, 0.3, 9);
    let outcomes = sim_round(medium, &c, 0x51B, 31).expect("sim round completes");
    let first = &outcomes[0];
    assert!(first.l > 0, "expected a nonempty secret at p = 0.3");
    for out in &outcomes {
        assert_eq!(out.secret, first.secret, "node {} derived a different secret", out.node);
    }
}

/// More terminals still converge (5 nodes = 1 coordinator + 4 terminals).
#[test]
fn udp_five_nodes_agree() {
    let outcomes = loopback_round(&cfg(5), 5, 11).expect("round completes");
    let first = &outcomes[0];
    for out in &outcomes {
        assert_eq!(out.secret, first.secret);
    }
    assert!(first.l > 0);
}

/// A lossless network yields L = 0 — every leave-one-out candidate Eve
/// heard everything, so the estimator grants no budget. The round must
/// still terminate cleanly on every node with an empty secret.
#[test]
fn lossless_round_degrades_to_empty_secret() {
    let c = SessionConfig { drop_prob: 0.0, ..cfg(3) };
    let outcomes = loopback_round(&c, 77, 3).expect("round completes");
    for out in &outcomes {
        assert_eq!(out.l, 0);
        assert!(out.secret.is_empty());
        assert!(out.key().is_none());
    }
}
