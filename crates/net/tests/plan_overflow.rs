//! Wire-width boundary behavior: parameters that cannot ride the
//! protocol's `u16` fields must produce a structured
//! [`AbortReason::PlanOverflow`], never a silently truncated
//! `PlanAnnounce` (the pre-fix behavior was an unchecked `as u16`).

use thinair_core::round::XSchedule;
use thinair_net::demo::sim_round;
use thinair_net::session::SessionConfig;
use thinair_net::AbortReason;
use thinair_netsim::IidMedium;

fn cfg_with_pool(n_packets: usize) -> SessionConfig {
    SessionConfig {
        n_nodes: 3,
        schedule: XSchedule::CoordinatorOnly(n_packets),
        payload_len: 4,
        drop_prob: 0.0,
        ..SessionConfig::default()
    }
}

/// `u16::MAX` x-packets is exactly representable: the boundary config
/// passes both the wire-bounds check and full validation.
#[test]
fn pool_at_u16_max_is_in_bounds() {
    let cfg = cfg_with_pool(u16::MAX as usize);
    assert_eq!(cfg.plan_bounds(), Ok(()));
    assert!(cfg.validate().is_ok());
    assert_eq!(cfg.n_packets(), u16::MAX as usize);
}

/// One packet past the boundary: every node terminates with a clean
/// `PlanOverflow` abort naming the offending value — the session never
/// broadcasts a single frame.
#[test]
fn pool_past_u16_max_aborts_cleanly_on_every_node() {
    let n = u16::MAX as usize + 1;
    let cfg = cfg_with_pool(n);
    assert!(cfg.plan_bounds().is_err());
    let outcomes =
        sim_round(IidMedium::symmetric(3, 0.0, 1), &cfg, 0x0F10, 7).expect("round terminates");
    assert_eq!(outcomes.len(), 3);
    for out in &outcomes {
        match &out.abort {
            Some(AbortReason::PlanOverflow { what, value, limit }) => {
                assert_eq!(*what, "n_packets");
                assert_eq!(*value, n as u64);
                assert_eq!(*limit, u16::MAX as u64);
            }
            other => panic!("node {}: expected PlanOverflow, got {other:?}", out.node),
        }
        assert!(out.secret.is_empty(), "an overflow abort must not carry a secret");
        assert_eq!(out.key(), None);
    }
}

/// The abort reason is machine-readable: stable kind label and an
/// informative display.
#[test]
fn plan_overflow_reason_is_structured() {
    let reason = AbortReason::PlanOverflow { what: "plan m", value: 70_000, limit: 65_535 };
    assert_eq!(reason.kind(), "plan-overflow:plan m");
    let text = reason.to_string();
    assert!(text.contains("70000") && text.contains("65535"), "got {text}");
}
