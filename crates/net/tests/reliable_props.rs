//! Property tests for the control-plane reliability layer: sequence
//! wraparound, duplicate/reordered/forged ACKs, replay-flood
//! resistance of the receive-side dedup window, and the jittered
//! exponential-backoff schedule (monotone bases, bounded jitter,
//! byte-deterministic per `(seed, peer, seq)`).

use std::time::{Duration, Instant};

use proptest::prelude::*;
use thinair_net::frame::NetPayload;
use thinair_net::reliable::{
    backoff_delay, Dedup, FlowBudget, Reliable, ReplayWindow, DEDUP_WINDOW, FLOW_INITIAL_CWND,
    FLOW_MAX_CWND, FLOW_MIN_CWND,
};
use thinair_net::transport::{SharedTransport, SimNet};
use thinair_netsim::IidMedium;

/// A lossless two-node sim with `t0` the sender, `t1` the receiver.
fn pair() -> (
    SharedTransport<impl thinair_net::transport::Transport>,
    SharedTransport<impl thinair_net::transport::Transport>,
) {
    let net = SimNet::new(IidMedium::symmetric(3, 0.0, 1), 2);
    (SharedTransport::new(net.transport(0)), SharedTransport::new(net.transport(1)))
}

proptest! {
    /// Fresh in-window sequences are admitted exactly once, regardless
    /// of where the stream sits relative to u32 wraparound.
    #[test]
    fn window_admits_each_fresh_seq_once(start in any::<u32>(), count in 1usize..400) {
        let mut w = ReplayWindow::new();
        for i in 0..count as u32 {
            let seq = start.wrapping_add(i);
            prop_assert!(w.admit(seq), "seq {seq} should be fresh");
            prop_assert!(!w.admit(seq), "seq {seq} replayed immediately");
        }
        // Replaying the most recent window's worth is always rejected.
        let newest = start.wrapping_add(count as u32 - 1);
        let lookback = (count as u32).min(DEDUP_WINDOW);
        for back in 0..lookback {
            prop_assert!(!w.admit(newest.wrapping_sub(back)));
        }
    }

    /// Reordered arrivals inside the window are each fresh exactly once.
    #[test]
    fn window_tolerates_reordering(start in any::<u32>(), swap_at in 1u32..200) {
        let mut w = ReplayWindow::new();
        // Deliver [0, swap_at) in order, then swap_at+1 before swap_at.
        for i in 0..swap_at {
            prop_assert!(w.admit(start.wrapping_add(i)));
        }
        let late = start.wrapping_add(swap_at);
        let early = start.wrapping_add(swap_at + 1);
        prop_assert!(w.admit(early), "newer frame first");
        prop_assert!(w.admit(late), "older in-window frame is still fresh");
        prop_assert!(!w.admit(late), "but only once");
        prop_assert!(!w.admit(early));
    }

    /// Under a replay flood, sequences older than the window are
    /// treated as duplicates — the flood can neither re-admit ancient
    /// frames nor grow state.
    #[test]
    fn window_evicts_under_replay_floods(start in any::<u32>(), flood in 1u32..5000) {
        let mut w = ReplayWindow::new();
        prop_assert!(w.admit(start));
        // Advance the horizon far past the window.
        let jump = start.wrapping_add(DEDUP_WINDOW + flood);
        prop_assert!(w.admit(jump));
        // The original and everything that fell off the window is dead.
        prop_assert!(!w.admit(start), "ancient seq re-admitted");
        prop_assert!(!w.admit(jump.wrapping_sub(DEDUP_WINDOW)), "edge-of-window seq re-admitted");
        // In-window history is still tracked exactly.
        prop_assert!(w.admit(jump.wrapping_sub(1)));
        prop_assert!(!w.admit(jump.wrapping_sub(1)));
    }

    /// The sender side retires an entry only when every targeted peer
    /// acknowledged; ACKs from non-targeted peers and for unknown seqs
    /// are no-ops, and duplicate ACKs are harmless — across wraparound.
    #[test]
    fn reliable_acks_by_the_right_peers_only(first_seq in any::<u32>(), dup in 0usize..4) {
        let (t0, _t1) = pair();
        let mut rel = Reliable::with_first_seq(Duration::from_millis(5), 8, first_seq.max(1));
        let seq = rel.send(&t0, 1, NetPayload::Done, &[1, 2]).unwrap();
        prop_assert!(!rel.acked(seq));
        // A forged ACK from a peer that was never targeted: no-op.
        rel.on_ack(3, seq);
        // An ACK for a sequence that was never sent: no-op.
        rel.on_ack(1, seq.wrapping_add(7));
        prop_assert!(!rel.acked(seq));
        // Peer 1 acks (possibly repeatedly).
        for _ in 0..=dup {
            rel.on_ack(1, seq);
        }
        prop_assert!(!rel.acked(seq), "peer 2 is still pending");
        rel.on_ack(2, seq);
        prop_assert!(rel.acked(seq));
        prop_assert!(rel.idle());
    }

    /// Sequence allocation never hands out 0 (reserved for ACK frames),
    /// even across the wraparound point.
    #[test]
    fn next_seq_skips_zero_on_wrap(offset in 0u32..4) {
        let (t0, _t1) = pair();
        let mut rel =
            Reliable::with_first_seq(Duration::from_millis(5), 8, u32::MAX - offset);
        for _ in 0..8 {
            let seq = rel.send(&t0, 1, NetPayload::Fin, &[1]).unwrap();
            prop_assert!(seq != 0, "seq 0 must stay reserved for acks");
            rel.on_ack(1, seq);
        }
    }

    /// The backoff schedule's base doubles per attempt until it pins at
    /// the cap, every drawn delay stays inside the documented ±25 %
    /// jitter band around its base, and consecutive delays are strictly
    /// monotone while the base is still doubling (a 2× step outgrows a
    /// ±25 % band).
    #[test]
    fn backoff_bases_are_monotone_and_jitter_stays_in_band(
        rto_ms in 1u64..200,
        cap_ms in 200u64..5_000,
        seed in any::<u64>(),
        peer in any::<u8>(),
        seq in any::<u32>(),
    ) {
        let rto = Duration::from_millis(rto_ms);
        let cap = Duration::from_millis(cap_ms);
        let (rto_us, cap_us) = (rto_ms * 1_000, cap_ms * 1_000);
        let mut prev_base = 0u64;
        let mut prev_delay = 0u64;
        for attempt in 1..=24u32 {
            let base = rto_us.checked_shl((attempt - 1).min(20)).unwrap_or(u64::MAX).min(cap_us);
            let us = backoff_delay(rto, attempt, cap, seed, peer, seq).as_micros() as u64;
            prop_assert!(
                us >= (base - base / 4).max(1) && us <= base + base / 4,
                "attempt {attempt}: delay {us} µs outside ±25% of base {base} µs"
            );
            prop_assert!(base >= prev_base, "base must never shrink");
            if prev_base > 0 && base == prev_base * 2 {
                prop_assert!(us > prev_delay, "delays must grow while the base doubles");
            }
            prev_base = base;
            prev_delay = us;
        }
        prop_assert_eq!(prev_base, cap_us, "24 attempts must reach the cap");
    }

    /// The schedule is a pure function of `(rto, cap, seed, peer, seq,
    /// attempt)`: replaying a run with a pinned seed reproduces the
    /// exact same retransmission timeline, byte for byte.
    #[test]
    fn backoff_schedule_is_deterministic_per_key(
        rto_ms in 1u64..500,
        seed in any::<u64>(),
        peer in any::<u8>(),
        seq in any::<u32>(),
    ) {
        let rto = Duration::from_millis(rto_ms);
        let cap = Duration::from_secs(2);
        for attempt in 1..=12u32 {
            let a = backoff_delay(rto, attempt, cap, seed, peer, seq);
            let b = backoff_delay(rto, attempt, cap, seed, peer, seq);
            prop_assert_eq!(a, b, "attempt {}: schedule must be replayable", attempt);
        }
        // ...and the jitter key actually covers its inputs: perturbing
        // any one coordinate moves at least one of the first attempts.
        let base: Vec<Duration> =
            (1..=6).map(|a| backoff_delay(rto, a, cap, seed, peer, seq)).collect();
        for (s2, p2, q2) in [
            (seed ^ 1, peer, seq),
            (seed, peer.wrapping_add(1), seq),
            (seed, peer, seq.wrapping_add(1)),
        ] {
            let other: Vec<Duration> =
                (1..=6).map(|a| backoff_delay(rto, a, cap, s2, p2, q2)).collect();
            // Jitter must depend on every key coordinate.
            prop_assert_ne!(&base, &other);
        }
    }
}

/// One externally visible event against a [`FlowBudget`].
#[derive(Clone, Copy, Debug)]
enum FlowEvent {
    CleanAck,
    Loss,
    Charge,
    Release,
}

fn arb_flow_events() -> impl Strategy<Value = Vec<FlowEvent>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(FlowEvent::CleanAck),
            1 => Just(FlowEvent::Loss),
            2 => Just(FlowEvent::Charge),
            2 => Just(FlowEvent::Release),
        ],
        0..400,
    )
}

/// Applies event `i` of a sequence; losses are timestamped `i`
/// milliseconds past `base` so replays see identical clocks.
fn flow_step(b: &mut FlowBudget, e: FlowEvent, base: Instant, i: usize, holdoff: Duration) {
    match e {
        FlowEvent::CleanAck => b.on_clean_ack(),
        FlowEvent::Loss => b.on_loss(base + Duration::from_millis(i as u64), holdoff),
        FlowEvent::Charge => b.force_charge(),
        FlowEvent::Release => b.release(),
    }
}

proptest! {
    /// AIMD bounds: no event sequence can push the window below the
    /// floor or above the ceiling — the multiplicative cut saturates at
    /// [`FLOW_MIN_CWND`] and additive increase at [`FLOW_MAX_CWND`].
    #[test]
    fn flow_window_stays_within_floor_and_ceiling(events in arb_flow_events()) {
        let base = Instant::now();
        let mut b = FlowBudget::new();
        prop_assert!(FLOW_INITIAL_CWND >= FLOW_MIN_CWND && FLOW_INITIAL_CWND <= FLOW_MAX_CWND);
        for (i, e) in events.iter().enumerate() {
            flow_step(&mut b, *e, base, i, Duration::ZERO);
            prop_assert!(
                b.cwnd() >= FLOW_MIN_CWND && b.cwnd() <= FLOW_MAX_CWND,
                "event {i} ({e:?}) left cwnd {} outside [{FLOW_MIN_CWND}, {FLOW_MAX_CWND}]",
                b.cwnd()
            );
            prop_assert!(b.window() >= FLOW_MIN_CWND as u64);
            prop_assert!(b.window() <= FLOW_MAX_CWND as u64);
        }
    }

    /// A congestion-signalling loss halves the window (down to the
    /// floor), and the additive recovery that follows is strictly
    /// monotone below the ceiling — it climbs, never jumps or dips.
    #[test]
    fn flow_loss_halves_then_acks_recover_monotonically(
        warm_acks in 0usize..2_000,
        acks_after in 1usize..3_000,
    ) {
        let mut b = FlowBudget::new();
        for _ in 0..warm_acks {
            b.on_clean_ack();
        }
        // Saturate the pipe so the timeout reads as congestion, not
        // idle-path link loss.
        while b.try_charge() {}
        let before = b.cwnd();
        b.on_loss(Instant::now(), Duration::ZERO);
        let expected = (before * 0.5).max(FLOW_MIN_CWND);
        prop_assert!(
            (b.cwnd() - expected).abs() < 1e-9,
            "cut from {before} gave {}, expected {expected}",
            b.cwnd()
        );
        let mut prev = b.cwnd();
        for _ in 0..acks_after {
            b.on_clean_ack();
            if prev < FLOW_MAX_CWND {
                prop_assert!(b.cwnd() > prev, "recovery must strictly climb below the ceiling");
            } else {
                prop_assert!(b.cwnd() == prev, "at the ceiling the window must hold");
            }
            prop_assert!(b.cwnd() <= FLOW_MAX_CWND);
            prev = b.cwnd();
        }
    }

    /// The budget is a pure function of its event sequence: two fresh
    /// budgets fed the same events (with the same loss timestamps)
    /// agree bit-for-bit after every step.
    #[test]
    fn flow_budget_is_deterministic_for_a_fixed_event_sequence(events in arb_flow_events()) {
        let base = Instant::now();
        let holdoff = Duration::from_millis(3);
        let mut a = FlowBudget::new();
        let mut b = FlowBudget::new();
        for (i, e) in events.iter().enumerate() {
            flow_step(&mut a, *e, base, i, holdoff);
            flow_step(&mut b, *e, base, i, holdoff);
            prop_assert_eq!(a.cwnd().to_bits(), b.cwnd().to_bits(), "cwnd diverged at event {}", i);
            prop_assert_eq!(a.in_flight(), b.in_flight(), "in_flight diverged at event {}", i);
            prop_assert_eq!(a.window(), b.window());
        }
    }
}

/// End-to-end: a reliable frame near the wraparound point is delivered,
/// deduplicated, and acked through the real transport path.
#[test]
fn dedup_and_ack_work_across_wraparound() {
    thinair_net::rt::block_on(async {
        let (t0, t1) = pair();
        let mut rel = Reliable::with_first_seq(Duration::from_millis(1), 10, u32::MAX);
        let mut dedup = Dedup::new(2);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let seq = rel.send(&t0, 9, NetPayload::Done, &[1]).unwrap();
            seen.push(seq);
            let f = t1.recv().await.unwrap();
            assert!(dedup.admit(&t1, &f).unwrap(), "first copy of {seq} is fresh");
            // Simulate a retransmission of the same frame.
            t0.send_to(1, &f).unwrap();
            let dup = t1.recv().await.unwrap();
            assert!(!dedup.admit(&t1, &dup).unwrap(), "retransmission of {seq} deduped");
            // Route both acks back to the sender.
            for _ in 0..2 {
                let a = t0.recv().await.unwrap();
                if let NetPayload::Ack { seq: s } = a.payload {
                    rel.on_ack(a.sender, s);
                }
            }
            assert!(rel.acked(seq));
        }
        assert_eq!(seen, vec![u32::MAX, 1, 2, 3], "wraparound skips the reserved 0");
    });
}

/// The retransmit budget still reports unreachable peers when ACKs are
/// forged from the wrong peer id.
#[test]
fn wrong_peer_acks_do_not_satisfy_the_barrier() {
    let (t0, _t1) = pair();
    let mut rel = Reliable::new(Duration::from_micros(10), 3);
    let seq = rel.send(&t0, 1, NetPayload::Fin, &[1]).unwrap();
    // Peer 0 (ourselves) and an out-of-roster peer ack; peer 1 never does.
    rel.on_ack(0, seq);
    rel.on_ack(200, seq);
    let mut last = Ok(());
    for _ in 0..10 {
        std::thread::sleep(Duration::from_micros(50));
        last = rel.tick(&t0, Instant::now()).unwrap();
        if last.is_err() {
            break;
        }
    }
    let err = last.unwrap_err();
    assert_eq!(err.missing, vec![1]);
}
