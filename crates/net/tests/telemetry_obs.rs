//! Observability contracts: histogram precision against an exact
//! reference, trace-ring overflow, and trace determinism over the
//! simulated medium.
//!
//! The determinism test mirrors `soak_determinism.rs` in the scenario
//! crate: the same spec + seed must produce the identical per-node
//! event sequence, modulo the timing-class parts (`retransmit` events
//! and every `ts_us` value) — the same split the soak artifact pins
//! for its JSON fields.

use std::collections::BTreeMap;
use std::time::Duration;

use thinair_core::round::XSchedule;
use thinair_net::driver::drive_sim_chaos;
use thinair_net::session::SessionConfig;
use thinair_net::telemetry::{self, hist, Histogram, TraceRing};
use thinair_net::{TraceEvent, TraceKind};
use thinair_netsim::{CrashSpec, FaultPlan, IidMedium};

// ---------------------------------------------------------------------------
// Histogram: bucket boundaries and the documented precision bound
// ---------------------------------------------------------------------------

#[test]
fn every_bucket_boundary_is_tight_and_contiguous() {
    // Probe by value at every octave transition (powers of two and
    // their neighbors): each bucket's bounds must contain the value,
    // stay contiguous with the preceding value's bucket, and (past the
    // exact range) be no wider than the precision bound allows.
    let mut probes: Vec<u64> = (0..64u32)
        .flat_map(|b| {
            let p = 1u64 << b;
            [p.saturating_sub(1), p, p.saturating_add(1)]
        })
        .collect();
    probes.extend([0, u64::MAX, u64::MAX - 1]);
    probes.sort_unstable();
    for &v in &probes {
        let (idx, lo, hi) = hist::bucket_of(v);
        assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
        assert!(idx < hist::NUM_BUCKETS);
        if v >= hist::SUB_BUCKETS {
            assert!(hi - lo < lo / 8, "bucket of {v} wider than the precision bound: [{lo}, {hi}]");
        } else {
            assert_eq!(lo, hi, "sub-16 values must be exact");
        }
        if v > 0 {
            let (prev_idx, _, prev_hi) = hist::bucket_of(v - 1);
            assert!(
                prev_idx == idx || lo == prev_hi + 1,
                "buckets not contiguous across {}: hi {prev_hi}, next lo {lo}",
                v - 1
            );
        }
    }
}

/// Deterministic pseudo-random sample stream (splitmix64).
fn samples(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % modulus
        })
        .collect()
}

#[test]
fn percentiles_stay_within_the_documented_error_bound() {
    // Exact reference: the fully sorted sample set. The histogram's
    // estimate must stay within 1/16 (6.25 %) relative error at every
    // probed quantile, on distributions spanning several octaves.
    for (seed, modulus) in [(1u64, 1_000u64), (2, 100_000), (3, 10_000_000_000)] {
        let mut vals = samples(seed, 10_000, modulus);
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for p in [0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let rank = ((p * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1] as f64;
            let est = h.percentile(p) as f64;
            assert!(
                (est - exact).abs() <= exact / 16.0 + 1.0,
                "seed {seed} p{p}: estimate {est} vs exact {exact} breaks the 1/16 bound"
            );
        }
        assert_eq!(h.min(), vals[0]);
        assert_eq!(h.max(), *vals.last().expect("nonempty"));
        assert_eq!(h.count(), vals.len() as u64);
    }
}

// ---------------------------------------------------------------------------
// Trace ring overflow
// ---------------------------------------------------------------------------

#[test]
fn ring_overflow_drops_oldest_and_keeps_counting() {
    let mut ring = TraceRing::new(4);
    for s in 0..10u64 {
        ring.push(TraceEvent {
            ts_us: s,
            session: s,
            node: 0,
            kind: TraceKind::Phase { phase: "x settle" },
        });
    }
    assert_eq!(ring.dropped(), 6, "all pushes past capacity count as drops");
    assert_eq!(ring.len(), 4);
    let kept: Vec<u64> = ring.drain().into_iter().map(|e| e.session).collect();
    assert_eq!(kept, vec![6, 7, 8, 9], "the newest events survive");
    // Draining frees the whole window again.
    for s in 0..4u64 {
        ring.push(TraceEvent {
            ts_us: s,
            session: s,
            node: 0,
            kind: TraceKind::Phase { phase: "x settle" },
        });
    }
    assert_eq!(ring.dropped(), 6, "no new drops until the ring refills");
}

// ---------------------------------------------------------------------------
// Trace determinism over the simulated medium
// ---------------------------------------------------------------------------

/// The non-timing-class projection of an event: everything except
/// `ts_us`, with `retransmit` events (the timing-class kind) filtered
/// by the caller.
fn stable_key(ev: &TraceEvent) -> String {
    let line = ev.to_jsonl();
    // Cut the `{"ts_us": N, ` prefix — ts_us is timing-class.
    let rest = line.split_once(", ").expect("jsonl has fields").1;
    format!("{{{rest}")
}

/// Groups the non-timing-class event sequence per `(session, node)`.
fn trace_sequences(seed: u64) -> BTreeMap<(u64, u8), Vec<String>> {
    let cfg = SessionConfig {
        n_nodes: 3,
        coordinator: 0,
        schedule: XSchedule::CoordinatorOnly(30),
        payload_len: 8,
        drop_prob: 0.3,
        drop_seed: seed,
        deadline: Duration::from_secs(2),
        ..SessionConfig::default()
    };
    let faults = FaultPlan {
        reorder: 0.2,
        duplicate: 0.2,
        crash: Some(CrashSpec { prob: 0.4, node: None, after_seq: 1 }),
        ..FaultPlan::none()
    };
    telemetry::reset();
    telemetry::enable_trace(telemetry::DEFAULT_TRACE_CAPACITY);
    let sessions = [1u64, 2, 3, 4];
    drive_sim_chaos(IidMedium::symmetric(3, 0.0, seed), &cfg, &sessions, seed, faults, seed ^ 0xC4)
        .expect("chaos batch completes");
    let mut grouped: BTreeMap<(u64, u8), Vec<String>> = BTreeMap::new();
    for ev in telemetry::take_events() {
        if ev.kind.is_timing_class() {
            continue;
        }
        grouped.entry((ev.session, ev.node)).or_default().push(stable_key(&ev));
    }
    grouped
}

#[test]
fn same_spec_same_seed_yields_identical_event_sequences() {
    let first = trace_sequences(7);
    let second = trace_sequences(7);
    assert_eq!(first, second, "trace must be deterministic modulo timing-class fields");
    // The batch must actually exercise the taxonomy: spans open and
    // close on every node of every session, and the crash cell aborts
    // at least one session.
    assert_eq!(first.len(), 4 * 3, "every (session, node) pair traced");
    let mut aborts = 0;
    for ((session, node), seq) in &first {
        assert!(
            seq.first().expect("nonempty").contains("session_start"),
            "({session}, {node}) span must open first: {seq:?}"
        );
        assert!(
            seq.last().expect("nonempty").contains("session_end"),
            "({session}, {node}) span must close last: {seq:?}"
        );
        aborts += seq.iter().filter(|l| l.contains("\"event\": \"abort\"")).count();
    }
    assert!(aborts > 0, "the crash plan must produce abort events");
    // A different seed must reshuffle outcomes (sanity: the comparison
    // above is not vacuously true).
    assert_ne!(first, trace_sequences(8));
}
