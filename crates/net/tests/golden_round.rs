//! End-to-end golden pin for the networked round: the byte-plane port
//! must derive *byte-identical* secrets to the pre-kernel scalar stack.
//!
//! The digest below was recorded from the scalar (pre-`PayloadPlane`)
//! implementation on the same configuration. The medium is lossless and
//! every erasure comes from the deterministic receiver-side injection
//! hash, so the derived secret is a pure function of the configuration
//! and seeds — independent of task scheduling and retransmission timing.

use std::time::Duration;
use thinair_core::estimate::{Estimator, Tuning};
use thinair_core::round::XSchedule;
use thinair_net::demo::sim_round;
use thinair_net::session::SessionConfig;
use thinair_netsim::IidMedium;

fn fnv64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn net_round_secret_is_byte_identical_to_scalar_stack() {
    let cfg = SessionConfig {
        n_nodes: 4,
        coordinator: 0,
        schedule: XSchedule::CoordinatorOnly(40),
        payload_len: 24,
        estimator: Estimator::LeaveOneOut(Tuning::default()),
        drop_prob: 0.45,
        drop_seed: 99,
        deadline: Duration::from_secs(60),
        ..SessionConfig::default()
    };
    let medium = IidMedium::symmetric(4, 0.0, 5);
    let outcomes = sim_round(medium, &cfg, 0xC0FFEE, 1234).expect("round completes");
    let first = &outcomes[0];
    for out in &outcomes {
        assert_eq!(out.secret, first.secret, "node {} disagrees", out.node);
    }
    let digest = fnv64(first.secret.iter().flat_map(|p| p.iter().map(|s| s.value())));
    // Recorded from the pre-kernel scalar implementation.
    assert_eq!((first.l, first.m, digest), (9, 15, 0x8F87_233B_6F89_9B9C));
}
