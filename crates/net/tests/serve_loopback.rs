//! Serve mode over real loopback UDP sockets: auto-admission, capacity
//! rejection, idle eviction, and end-to-end agreement with a live
//! coordinator — the daemon side of `thinaird serve`.

use std::net::SocketAddr;
use std::time::Duration;

use thinair_core::round::XSchedule;
use thinair_net::driver::task_seed;
use thinair_net::frame::{Frame, NetPayload};
use thinair_net::rt;
use thinair_net::udp::AsyncUdpSocket;
use thinair_net::{
    Node, ServeLimits, Server, SessionConfig, SharedTransport, Transport, UdpTransport,
};

fn cfg(n_nodes: u8) -> SessionConfig {
    SessionConfig {
        n_nodes,
        payload_len: 4,
        drop_prob: 0.2,
        schedule: XSchedule::CoordinatorOnly(8),
        x_settle: Duration::from_millis(40),
        retransmit: Duration::from_millis(20),
        deadline: Duration::from_secs(10),
        ..SessionConfig::default()
    }
}

fn bind_roster(n: usize) -> (Vec<AsyncUdpSocket>, Vec<SocketAddr>) {
    let socks: Vec<AsyncUdpSocket> =
        (0..n).map(|_| AsyncUdpSocket::bind("127.0.0.1:0").unwrap()).collect();
    let addrs = socks.iter().map(|s| s.local_addr().unwrap()).collect();
    (socks, addrs)
}

/// A coordinator node drives concurrent sessions against two serve
/// daemons over real sockets; everyone agrees, registries drain to
/// empty (terminal-state GC).
#[test]
fn loopback_serve_sessions_agree() {
    const SESSIONS: u64 = 12;
    let cfg = cfg(3);
    let (socks, addrs) = bind_roster(3);
    let mut socks = socks.into_iter();
    let coord = Node::new(UdpTransport::new(socks.next().unwrap(), addrs.clone(), 0));
    let mut servers: Vec<Server<UdpTransport>> = socks
        .enumerate()
        .map(|(i, s)| {
            Server::new(
                SharedTransport::new(UdpTransport::new(s, addrs.clone(), (i + 1) as u8)),
                cfg.clone(),
                7,
                ServeLimits::default(),
            )
        })
        .collect();
    let handles: Vec<_> = servers.iter().map(|s| s.handle()).collect();
    let mut outcome_rxs: Vec<_> = servers.iter_mut().map(|s| s.outcomes()).collect();

    rt::block_on(async move {
        coord.start_pump();
        for s in servers {
            rt::spawn(s.run());
        }
        let mut tasks = Vec::new();
        for s in 1..=SESSIONS {
            let node = coord.clone();
            let cfg = cfg.clone();
            tasks.push(rt::spawn(async move { node.coordinate(s, cfg, task_seed(7, s, 0)).await }));
        }
        let mut coord_outs = Vec::new();
        for t in tasks {
            let out = t.await.expect("io ok");
            assert!(out.completed(), "coordinator aborted: {:?}", out.abort);
            coord_outs.push(out);
        }
        // Each daemon serves every session and agrees with the
        // coordinator byte-for-byte.
        for rx in outcome_rxs.iter_mut() {
            for _ in 0..SESSIONS {
                let out = rt::timeout(Duration::from_secs(5), rx.recv())
                    .await
                    .expect("daemon outcome arrives")
                    .expect("stream open");
                assert!(out.completed(), "daemon aborted: {:?}", out.abort);
                let co = coord_outs.iter().find(|o| o.session == out.session).unwrap();
                assert_eq!(out.secret, co.secret, "session {:#x} diverged", out.session);
            }
        }
        for h in &handles {
            assert_eq!(h.open_sessions(), 0, "terminal-state GC leaves no live sessions");
            let stats = h.stats();
            assert_eq!(stats.admitted, SESSIONS);
            assert_eq!(stats.completed, SESSIONS);
            assert_eq!(stats.failed, 0);
            h.stop();
        }
    });
}

/// Regression pin for FIFO re-admission: `Start`s refused at capacity
/// are parked and re-admitted strictly in arrival order as slots free.
/// The coordinators here are dead (a single hand-fed `Start` each, no
/// paced retries), so the queue drain is the *only* re-admission path
/// — a live retry racing a freed slot may legitimately jump ahead,
/// which is exactly the noise this pin excludes. Admission order is
/// observed from the coordinator's socket: a daemon terminal acks the
/// reliable `Start` when its session task first processes it, i.e. at
/// admission, so the order of first-acks per session IS the admission
/// order. A LIFO (or otherwise reordered) queue permutes it.
#[test]
fn loopback_busy_readmission_is_fifo() {
    const SESSIONS: [u64; 4] = [11, 12, 13, 14];
    let cfg = cfg(2);
    let (socks, addrs) = bind_roster(2);
    let mut socks = socks.into_iter();
    let coord = SharedTransport::new(UdpTransport::new(socks.next().unwrap(), addrs.clone(), 0));
    let limits = ServeLimits {
        max_sessions: 1,
        idle_timeout: Duration::from_millis(200),
        ..ServeLimits::default()
    };
    let server = Server::new(
        SharedTransport::new(UdpTransport::new(socks.next().unwrap(), addrs.clone(), 1)),
        cfg.clone(),
        7,
        limits,
    );
    let handle = server.handle();

    rt::block_on(async move {
        rt::spawn(server.run());
        // Session 11 takes the only slot; 12..14 are Busy'd and parked
        // in arrival order (pinned by the inter-send sleeps).
        let digest = cfg.digest();
        for session in SESSIONS {
            let frame = Frame {
                flags: thinair_net::frame::FLAG_RELIABLE,
                sender: 0,
                session,
                seq: 1,
                payload: NetPayload::Start { digest },
            };
            coord.send_to(1, &frame).unwrap();
            rt::sleep(Duration::from_millis(20)).await;
        }
        // Each admitted session's coordinator stays silent, so the
        // session dies (retransmits exhausted / idle eviction), the
        // slot frees, and the next parked Start must pop — in FIFO
        // order. Collect the admission acks as they arrive.
        let mut admitted = Vec::new();
        while admitted.len() < SESSIONS.len() {
            let f = rt::timeout(Duration::from_secs(20), coord.recv())
                .await
                .expect("admission ack arrives")
                .expect("socket open");
            if matches!(f.payload, NetPayload::Ack { .. }) && !admitted.contains(&f.session) {
                admitted.push(f.session);
            }
        }
        assert_eq!(
            admitted,
            SESSIONS.to_vec(),
            "re-admission must drain the parked Starts in arrival order"
        );
        let stats = handle.stats();
        assert_eq!(stats.admitted, SESSIONS.len() as u64);
        assert_eq!(stats.rejected, (SESSIONS.len() - 1) as u64, "all but the first were parked");
        handle.stop();
    });
}

/// A daemon at capacity rejects `Start`s (counted), and a session whose
/// coordinator goes silent is evicted by the idle timer — the two
/// registry pressure valves, exercised over a real socket.
#[test]
fn loopback_serve_rejects_at_capacity_and_evicts_idle() {
    let cfg = cfg(2);
    let (socks, addrs) = bind_roster(2);
    let mut socks = socks.into_iter();
    let coord_sock = socks.next().unwrap();
    let limits = ServeLimits {
        max_sessions: 1,
        idle_timeout: Duration::from_millis(300),
        ..ServeLimits::default()
    };
    let server = Server::new(
        SharedTransport::new(UdpTransport::new(socks.next().unwrap(), addrs.clone(), 1)),
        cfg.clone(),
        7,
        limits,
    );
    let handle = server.handle();

    rt::block_on(async move {
        rt::spawn(server.run());
        // Hand-feed Start frames from the coordinator's socket: two
        // different sessions, no follow-up traffic (a coordinator that
        // died right after the barrier).
        let mut t0 = UdpTransport::new(coord_sock, addrs.clone(), 0);
        let digest = cfg.digest();
        for session in [1u64, 2] {
            let frame = Frame {
                flags: thinair_net::frame::FLAG_RELIABLE,
                sender: 0,
                session,
                seq: 1,
                payload: NetPayload::Start { digest },
            };
            t0.send_to(1, &frame).unwrap();
        }
        // Give the daemon a moment to admit/reject.
        rt::sleep(Duration::from_millis(150)).await;
        let stats = handle.stats();
        assert_eq!(stats.admitted, 1, "capacity 1 admits exactly one");
        assert_eq!(stats.rejected, 1, "the second Start is rejected");
        assert_eq!(handle.open_sessions(), 1);
        // The admitted session never hears from its coordinator again:
        // the idle sweep evicts it well before the protocol deadline.
        // That frees the slot, so the refused Start — parked in the
        // FIFO re-admission queue — is admitted in turn, and then
        // evicted by the same sweep (its coordinator is just as dead).
        rt::sleep(Duration::from_millis(900)).await;
        assert_eq!(handle.open_sessions(), 0, "idle sessions evicted");
        let stats = handle.stats();
        assert_eq!(stats.admitted, 2, "the parked Start re-admitted on the freed slot");
        assert_eq!(stats.evicted, 2);
        assert_eq!(stats.failed, 0, "eviction is not a failure");
        handle.stop();
    });
}
