//! Cross-shard serve over real loopback UDP: a coordinator drives
//! sessions against a daemon sharded across 4 worker runtimes on one
//! `SO_REUSEPORT` address. Sessions hash to different workers, all
//! agree with the coordinator, and the per-shard `ServeStats` buckets
//! partition `admitted` exactly once.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use thinair_core::round::XSchedule;
use thinair_net::driver::task_seed;
use thinair_net::rt;
use thinair_net::udp::AsyncUdpSocket;
use thinair_net::{
    bind_shard_sockets, run_sharded_serve, shard_of, Node, ServeLimits, SessionConfig,
    ShardedServeOptions, UdpTransport,
};

#[test]
fn cross_shard_sessions_agree_and_stats_partition() {
    const WORKERS: usize = 4;
    const SESSIONS: u64 = 16;
    let cfg = SessionConfig {
        n_nodes: 2,
        payload_len: 4,
        drop_prob: 0.2,
        schedule: XSchedule::CoordinatorOnly(8),
        x_settle: Duration::from_millis(40),
        retransmit: Duration::from_millis(20),
        deadline: Duration::from_secs(10),
        ..SessionConfig::default()
    };
    // The session ids must actually exercise the fabric: several
    // distinct shards (ids 1..=16 under splitmix64 spread well).
    let distinct: std::collections::BTreeSet<usize> =
        (1..=SESSIONS).map(|s| shard_of(s, WORKERS)).collect();
    assert!(distinct.len() >= 3, "test ids hit only shards {distinct:?}");

    let coord_sock = AsyncUdpSocket::bind("127.0.0.1:0").expect("bind coord");
    let daemon_socks =
        bind_shard_sockets("127.0.0.1:0".parse().expect("addr"), WORKERS).expect("bind shards");
    let addrs =
        vec![coord_sock.local_addr().expect("addr"), daemon_socks[0].local_addr().expect("addr")];

    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let daemon_addrs = addrs.clone();
    let daemon_cfg = cfg.clone();
    let daemon = std::thread::spawn(move || {
        run_sharded_serve(
            daemon_socks,
            daemon_addrs,
            1,
            ShardedServeOptions {
                cfg: daemon_cfg,
                seed: 7,
                limits: ServeLimits::default(),
                collect_outcomes: true,
                on_outcome: None,
                timing: false,
            },
            stop2,
        )
        .expect("sharded serve runs")
    });

    let coord_outs = rt::block_on(async move {
        let coord = Node::new(UdpTransport::new(coord_sock, addrs, 0));
        coord.start_pump();
        let mut tasks = Vec::new();
        for s in 1..=SESSIONS {
            let node = coord.clone();
            let cfg = cfg.clone();
            tasks.push(rt::spawn(async move { node.coordinate(s, cfg, task_seed(7, s, 0)).await }));
        }
        let mut outs = Vec::new();
        for t in tasks {
            let out = t.await.expect("io ok");
            assert!(out.completed(), "coordinator aborted: {:?}", out.abort);
            outs.push(out);
        }
        outs
    });

    // Give the slowest shard a beat to finish its last session's fin
    // barrier, then stop the daemon and collect the reports.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    let reports = daemon.join().expect("daemon thread");
    assert_eq!(reports.len(), WORKERS);

    // Every session landed on exactly the shard the hash names, agreed
    // with the coordinator, and was admitted exactly once daemon-wide.
    let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
    for r in &reports {
        for out in &r.outcomes {
            assert!(
                out.completed(),
                "shard {} session {:#x}: {:?}",
                r.shard,
                out.session,
                out.abort
            );
            assert_eq!(
                shard_of(out.session, WORKERS),
                r.shard,
                "session {:#x} served off its home shard",
                out.session
            );
            let co = coord_outs.iter().find(|o| o.session == out.session).expect("known session");
            assert_eq!(out.secret, co.secret, "session {:#x} diverged", out.session);
            assert!(seen.insert(out.session, r.shard).is_none(), "session served twice");
        }
    }
    assert_eq!(seen.len() as u64, SESSIONS, "every session served exactly once");

    // Per-shard stats partition the totals: each shard's buckets cover
    // its own admissions, and the shard sums reproduce the wave.
    let mut total_admitted = 0;
    let mut total_completed = 0;
    for r in &reports {
        let s = &r.stats;
        assert_eq!(
            s.completed + s.aborted + s.evicted + s.failed,
            s.admitted,
            "shard {} buckets must partition its admissions: {s:?}",
            r.shard
        );
        assert_eq!(
            s.admitted,
            r.outcomes.len() as u64 + s.evicted,
            "shard {} outcomes mismatch",
            r.shard
        );
        total_admitted += s.admitted;
        total_completed += s.completed;
    }
    assert_eq!(total_admitted, SESSIONS, "admitted exactly once across shards");
    assert_eq!(total_completed, SESSIONS);

    // The kernel steers all coordinator traffic by 4-tuple onto one
    // shard socket, so serving >1 shard requires userspace forwarding
    // — and the injected sum must match the forwarded sum.
    let forwarded: u64 = reports
        .iter()
        .map(|r| r.snapshot.counters.get("net.shard.forwarded").copied().unwrap_or(0))
        .sum();
    let injected: u64 = reports
        .iter()
        .map(|r| r.snapshot.counters.get("net.shard.injected").copied().unwrap_or(0))
        .sum();
    assert!(forwarded > 0, "multi-shard traffic must cross the fabric");
    // `forwarded >= injected`: a frame forwarded into a shard's queue
    // right as that shard observes the stop flag is counted forwarded
    // but never drained. Anything else (injected > forwarded, or a gap
    // while shards are live) would mean fabric loss.
    assert!(
        forwarded >= injected && forwarded - injected <= SESSIONS,
        "fabric lost frames: forwarded={forwarded} injected={injected}"
    );

    // On Linux the workers must have slept in epoll_wait, not on the
    // adaptive re-poll timer: real readiness wakeups, zero re-poll arms.
    if cfg!(target_os = "linux") {
        let wakeups: u64 = reports.iter().map(|r| r.rt_metrics.epoll_wakeups).sum();
        assert!(wakeups > 0, "workers must wake via the epoll reactor");
        for r in &reports {
            assert_eq!(
                r.snapshot.counters.get("net.udp.repoll_arms").copied().unwrap_or(0),
                0,
                "shard {} fell back to the re-poll timer",
                r.shard
            );
        }
    }
}
