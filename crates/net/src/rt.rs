//! A minimal single-threaded async runtime with **waker-based task
//! readiness**.
//!
//! The ISSUE for this subsystem calls for a tokio-based runtime; the
//! build environment is fully offline (no crates.io), so this module
//! provides the required subset in-tree: [`block_on`], [`spawn`] (local
//! tasks), [`sleep`] timers, and cooperative scheduling.
//!
//! # Scheduling model
//!
//! The executor keeps a slab of tasks, a ready queue of task ids, and a
//! min-heap of timers. A task is polled only when something woke it —
//! its timer came due, a channel it awaits received a value, a frame
//! arrived on its transport, or the task it joins completed. **Idle
//! tasks cost zero CPU**: a pass over 10 000 blocked sessions polls
//! only the handful that were actually woken, so per-tick work is
//! O(ready), not O(tasks). (The first revision of this runtime
//! re-polled *every* task whenever anything happened — a busy-spin that
//! burned a full core re-polling idle sessions; the regression test
//! `idle_tasks_poll_o1` pins the fix.)
//!
//! When nothing is ready the executor sleeps until the earliest timer
//! deadline — in `epoll_wait` when any I/O source has registered via
//! [`register_fd_readable`] (a real reactor: a datagram's arrival ends
//! the sleep immediately), in `thread::sleep` otherwise. On targets
//! without epoll, or when the reactor is disabled
//! ([`set_reactor_enabled`]), pollable-but-not-wakeable input falls
//! back to the transport's adaptive re-poll timer ([`register_timer`]),
//! bounding socket latency by the poll interval.
//!
//! Swapping in tokio later only requires replacing this module and the
//! socket wrapper in [`crate::udp`]; the protocol state machines are
//! executor-agnostic.
//!
//! Still one runtime per thread, tasks are `!Send`-friendly (`Rc`
//! everywhere), and nested [`block_on`] is not allowed. Wakers are
//! `Send` per the `std::task` contract — they only touch a
//! mutex-guarded ready queue — and since the sharded serve layer
//! ([`crate::shard`]) wakes sibling runtimes across threads, a wake
//! from another thread *does* interrupt this executor's sleep: the
//! ready queue rings an `eventfd` doorbell registered in the epoll set
//! whenever it enqueues work while the executor is parked.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

/// Default granularity of the UDP poll bridge and the deadlock-fallback
/// sleep; timer wakeups are exact, not quantized to this.
pub const TICK: Duration = Duration::from_micros(100);

/// Task id of the [`block_on`] root future in the ready queue.
const ROOT_ID: usize = usize::MAX;

type Task = Pin<Box<dyn Future<Output = ()>>>;

/// The shared ready queue: the only executor state wakers touch. The
/// mutex is uncontended on the single-threaded runtime; it exists so
/// wakers can be built from safe `Arc<dyn Wake>` (this crate forbids
/// `unsafe`, so no hand-rolled `RawWaker`).
#[derive(Default)]
struct ReadyQueue {
    inner: Mutex<ReadyInner>,
}

#[derive(Default)]
struct ReadyInner {
    queue: VecDeque<usize>,
    queued: BTreeSet<usize>,
    wakes: u64,
    /// True while the executor is parked in `epoll_wait`. Set and
    /// cleared under this lock so a cross-thread `push` either lands
    /// before the park decision or sees the flag and rings the doorbell.
    sleeping: bool,
    /// The reactor's eventfd, once one exists: readable ends the park.
    doorbell: Option<Arc<crate::sys::EventFd>>,
}

impl ReadyQueue {
    /// Locks the inner state, recovering from poisoning: the queue's
    /// data (ids + counters) is valid regardless of where a panicking
    /// thread left off, and the executor must keep draining tasks.
    fn lock(&self) -> std::sync::MutexGuard<'_, ReadyInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push(&self, id: usize) {
        let mut inner = self.lock();
        inner.wakes += 1;
        if inner.queued.insert(id) {
            inner.queue.push_back(id);
        }
        if inner.sleeping {
            // Another thread woke us mid-park (same-thread pushes can
            // never observe `sleeping`): interrupt the epoll_wait.
            if let Some(d) = &inner.doorbell {
                d.signal();
            }
        }
    }

    fn set_doorbell(&self, d: Arc<crate::sys::EventFd>) {
        self.lock().doorbell = Some(d);
    }

    /// Atomically checks emptiness and marks the executor parked.
    /// Returns false (and stays awake) if work arrived since the last
    /// pop.
    fn park_if_empty(&self) -> bool {
        let mut inner = self.lock();
        if inner.queue.is_empty() {
            inner.sleeping = true;
            true
        } else {
            false
        }
    }

    fn unpark(&self) {
        self.lock().sleeping = false;
    }

    fn pop(&self) -> Option<usize> {
        let mut inner = self.lock();
        let id = inner.queue.pop_front()?;
        inner.queued.remove(&id);
        Some(id)
    }

    fn is_empty(&self) -> bool {
        self.lock().queue.is_empty()
    }

    fn len(&self) -> usize {
        self.lock().queue.len()
    }

    fn wakes(&self) -> u64 {
        self.lock().wakes
    }
}

struct TaskWaker {
    id: usize,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// One pending timer: wakes `waker` at `deadline`. `seq` breaks ties so
/// the heap order is total without comparing wakers.
struct TimerEntry {
    deadline: Instant,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct TaskSlot {
    task: Task,
    waker: Waker,
}

/// The executor's epoll reactor: fd-readability interest plus the
/// cross-thread doorbell. Created lazily on the first
/// [`register_fd_readable`] call, so sim-only and timer-only runs never
/// open an epoll fd.
struct Reactor {
    epoll: crate::sys::Epoll,
    doorbell: Arc<crate::sys::EventFd>,
    /// Registered fds → the waker to fire on readability. `None` after
    /// the event fired, until the owner re-registers on its next poll.
    interest: RefCell<BTreeMap<i32, Option<Waker>>>,
    /// Scratch for `epoll_wait` result tokens.
    tokens: RefCell<Vec<u64>>,
}

/// Token the reactor's own doorbell registers under (fds are their own
/// tokens; an fd can never be `u64::MAX`).
const DOORBELL_TOKEN: u64 = u64::MAX;

impl Reactor {
    fn new() -> std::io::Result<Reactor> {
        let epoll = crate::sys::Epoll::new()?;
        let doorbell = Arc::new(crate::sys::EventFd::new()?);
        epoll.add(doorbell.raw_fd(), DOORBELL_TOKEN)?;
        Ok(Reactor {
            epoll,
            doorbell,
            interest: RefCell::new(BTreeMap::new()),
            tokens: RefCell::new(Vec::with_capacity(64)),
        })
    }
}

#[derive(Default)]
struct Executor {
    /// Live tasks by id (`None` slots are free-listed).
    tasks: RefCell<Vec<Option<TaskSlot>>>,
    free: RefCell<Vec<usize>>,
    live: Cell<usize>,
    ready: Arc<ReadyQueue>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    timer_seq: Cell<u64>,
    metrics: Cell<Metrics>,
    /// `Some` while running under [`block_on_virtual`]: the virtual
    /// clock all timers and [`now`] read instead of the wall clock.
    virtual_now: Cell<Option<Instant>>,
    /// Lazily created epoll reactor (`None` until the first fd
    /// registration; stays `None` forever once creation failed).
    reactor: RefCell<Option<Rc<Reactor>>>,
    reactor_failed: Cell<bool>,
}

impl Executor {
    /// The reactor, creating it on first use. `None` when unavailable
    /// (non-Linux, resource exhaustion, or disabled for this thread).
    fn reactor(&self) -> Option<Rc<Reactor>> {
        if let Some(r) = self.reactor.borrow().as_ref() {
            return Some(r.clone());
        }
        if self.reactor_failed.get() {
            return None;
        }
        match Reactor::new() {
            Ok(r) => {
                let r = Rc::new(r);
                self.ready.set_doorbell(r.doorbell.clone());
                *self.reactor.borrow_mut() = Some(r.clone());
                Some(r)
            }
            Err(_) => {
                self.reactor_failed.set(true);
                None
            }
        }
    }
}

/// Executor work counters, cumulative since [`block_on`] entered.
///
/// `task_polls` is the load-bearing one: with waker-based readiness it
/// scales with *activity* (wakes), not with how many tasks exist — the
/// `bench-serve` harness reports it per session, and the regression
/// test `idle_tasks_poll_o1` pins that an idle 1k-task executor adds
/// O(1) polls per pass.
///
/// Counters are **per-`block_on`** (each entry builds a fresh
/// executor). For intervals *within* one `block_on` — a bench wave, a
/// stats window — take a baseline snapshot and subtract with
/// [`Metrics::delta`] rather than reading the cumulative values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Scheduler passes (each drains the ready queue once).
    pub passes: u64,
    /// Individual task polls (root future included).
    pub task_polls: u64,
    /// Timer entries fired.
    pub timer_fires: u64,
    /// Waker invocations (deduplicated wakes still count).
    pub wakes: u64,
    /// High-water mark of concurrently live spawned tasks.
    pub max_tasks: u64,
    /// Fd-readability wakeups delivered by the epoll reactor (doorbell
    /// rings excluded). Zero means the run never left the timer bridge.
    pub epoll_wakeups: u64,
}

impl Metrics {
    /// The work done since `earlier` (a previous [`metrics`] snapshot
    /// from the same `block_on`): event counters subtract;
    /// `max_tasks`, a high-water mark rather than a count, keeps the
    /// later (higher) value.
    pub fn delta(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            passes: self.passes.saturating_sub(earlier.passes),
            task_polls: self.task_polls.saturating_sub(earlier.task_polls),
            timer_fires: self.timer_fires.saturating_sub(earlier.timer_fires),
            wakes: self.wakes.saturating_sub(earlier.wakes),
            max_tasks: self.max_tasks,
            epoll_wakeups: self.epoll_wakeups.saturating_sub(earlier.epoll_wakeups),
        }
    }

    /// Accumulates another runtime's counters into this one (the
    /// multi-worker benches sum per-shard executors). Event counters
    /// add; `max_tasks` adds too — the runtimes run on concurrent
    /// threads, so the summed high-water marks bound the combined peak.
    pub fn absorb(&mut self, other: &Metrics) {
        self.passes += other.passes;
        self.task_polls += other.task_polls;
        self.timer_fires += other.timer_fires;
        self.wakes += other.wakes;
        self.max_tasks += other.max_tasks;
        self.epoll_wakeups += other.epoll_wakeups;
    }
}

thread_local! {
    static EXECUTOR: RefCell<Option<Rc<Executor>>> = const { RefCell::new(None) };
}

fn current() -> Rc<Executor> {
    EXECUTOR.with(|e| {
        // lint: allow(panic): documented API contract — every rt entry
        // point requires an ambient executor; this is a programmer
        // error at development time, never a runtime input.
        e.borrow().clone().expect("no runtime: call from within thinair_net::rt::block_on")
    })
}

/// A snapshot of the running executor's work counters.
///
/// # Panics
/// Panics outside [`block_on`].
pub fn metrics() -> Metrics {
    let ex = current();
    let mut m = ex.metrics.get();
    m.wakes = ex.ready.wakes();
    m
}

/// Number of spawned tasks currently live (pending or unjoined).
///
/// # Panics
/// Panics outside [`block_on`].
pub fn live_tasks() -> usize {
    current().live.get()
}

/// The runtime's notion of "now": the virtual clock under
/// [`block_on_virtual`], the wall clock everywhere else (including
/// outside any runtime).
///
/// Protocol code must read time through this — never `Instant::now()`
/// directly — so the same state machines run unmodified under both real
/// sockets and the exhaustive-exploration virtual clock.
pub fn now() -> Instant {
    EXECUTOR
        .with(|e| e.borrow().as_ref().and_then(|ex| ex.virtual_now.get()))
        .unwrap_or_else(Instant::now)
}

/// Registers a one-shot timer: `waker` is woken once `deadline` passes.
/// The building block of [`sleep`] / [`timeout`], also used by
/// transports to bridge pollable-but-not-wakeable I/O (UDP sockets)
/// into the waker world.
pub fn register_timer(deadline: Instant, waker: &Waker) {
    let ex = current();
    let seq = ex.timer_seq.get();
    ex.timer_seq.set(seq + 1);
    ex.timers.borrow_mut().push(Reverse(TimerEntry { deadline, seq, waker: waker.clone() }));
}

thread_local! {
    static REACTOR_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Enables or disables the epoll reactor for runtimes on **this
/// thread**. Disabling forces transports onto the adaptive re-poll
/// timer bridge — the pre-reactor behavior — which the fallback-path
/// tests and `THINAIR_NO_EPOLL=1` use. Takes effect for fds registered
/// after the call; flip it before `block_on`.
pub fn set_reactor_enabled(on: bool) {
    REACTOR_ENABLED.with(|e| e.set(on));
}

/// Whether [`register_fd_readable`] may use the reactor on this thread
/// (the per-thread switch AND no `THINAIR_NO_EPOLL=1` in the
/// environment).
pub fn reactor_enabled() -> bool {
    REACTOR_ENABLED.with(|e| e.get()) && !std::env::var("THINAIR_NO_EPOLL").is_ok_and(|v| v == "1")
}

/// Registers one-shot read interest: `waker` fires when `fd` becomes
/// readable. Returns `false` when no reactor is available (non-Linux,
/// disabled via [`set_reactor_enabled`], or under a virtual clock) —
/// the caller must then bridge with [`register_timer`] instead.
///
/// The interest is level-triggered but the waker is consumed on
/// delivery, so the owner re-registers on every `Poll::Pending` (the
/// same discipline as waker registration anywhere else). Re-registering
/// an already-armed fd just refreshes the waker.
pub fn register_fd_readable(fd: i32, waker: &Waker) -> bool {
    let ex = current();
    // Virtual time admits no real I/O: readiness would race the
    // deterministic schedule the explorer replays.
    if ex.virtual_now.get().is_some() || !reactor_enabled() {
        return false;
    }
    let Some(reactor) = ex.reactor() else { return false };
    let mut interest = reactor.interest.borrow_mut();
    match interest.get_mut(&fd) {
        Some(slot) => {
            match slot {
                Some(w) if w.will_wake(waker) => {}
                _ => *slot = Some(waker.clone()),
            }
            true
        }
        None => {
            if reactor.epoll.add(fd, fd as u64).is_err() {
                return false;
            }
            interest.insert(fd, Some(waker.clone()));
            true
        }
    }
}

/// Drops read interest in `fd` (e.g. from a transport's `Drop`). Safe
/// to call outside any runtime or for an fd that was never registered —
/// both are no-ops.
pub fn deregister_fd(fd: i32) {
    EXECUTOR.with(|e| {
        let Some(ex) = e.borrow().clone() else { return };
        let Some(reactor) = ex.reactor.borrow().clone() else { return };
        if reactor.interest.borrow_mut().remove(&fd).is_some() {
            reactor.epoll.del(fd);
        }
    });
}

/// Handle to a spawned task's result.
pub struct JoinHandle<T> {
    slot: Rc<RefCell<JoinSlot<T>>>,
}

struct JoinSlot<T> {
    value: Option<T>,
    waker: Option<Waker>,
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut slot = self.slot.borrow_mut();
        match slot.value.take() {
            Some(v) => Poll::Ready(v),
            None => {
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Spawns a task onto the current runtime.
///
/// The task runs until completion or until [`block_on`] returns (tasks
/// still pending at that point are dropped).
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let slot = Rc::new(RefCell::new(JoinSlot { value: None, waker: None }));
    let slot2 = slot.clone();
    let task: Task = Box::pin(async move {
        let out = fut.await;
        let mut s = slot2.borrow_mut();
        s.value = Some(out);
        if let Some(w) = s.waker.take() {
            w.wake();
        }
    });
    let ex = current();
    let id = match ex.free.borrow_mut().pop() {
        Some(id) => id,
        None => {
            let mut tasks = ex.tasks.borrow_mut();
            tasks.push(None);
            tasks.len() - 1
        }
    };
    let waker = Waker::from(Arc::new(TaskWaker { id, ready: ex.ready.clone() }));
    ex.tasks.borrow_mut()[id] = Some(TaskSlot { task, waker });
    ex.live.set(ex.live.get() + 1);
    let mut m = ex.metrics.get();
    m.max_tasks = m.max_tasks.max(ex.live.get() as u64);
    ex.metrics.set(m);
    ex.ready.push(id);
    JoinHandle { slot }
}

/// Runs `main_fut` to completion, driving all spawned tasks.
///
/// # Panics
/// Panics when called from within an active runtime on the same thread.
pub fn block_on<F: Future>(main_fut: F) -> F::Output {
    block_on_with(main_fut, None)
}

/// Runs `main_fut` under a **virtual clock** starting at `start`.
///
/// Time never passes on its own: whenever every task is blocked, the
/// executor first calls `on_stall`. If the hook produces new work (a
/// stepped transport delivering a frame, say) it returns `true` and the
/// loop resumes without touching the clock; if it returns `false` the
/// clock jumps straight to the earliest pending timer deadline. The run
/// therefore never sleeps — wall-clock cost is pure CPU — and its
/// schedule is a deterministic function of the tasks plus the hook's
/// choices, which is what makes exhaustive interleaving exploration
/// (`thinair-scenario`'s `explore` module) possible over the unmodified
/// state machines.
///
/// # Panics
/// Panics on a *virtual deadlock*: no ready tasks, no pending timers,
/// and a stall hook that produced no work — under virtual time nothing
/// external can ever unblock the run. Also panics when nested inside an
/// active runtime, like [`block_on`].
pub fn block_on_virtual<F: Future>(
    main_fut: F,
    start: Instant,
    on_stall: &mut dyn FnMut() -> bool,
) -> F::Output {
    block_on_with(main_fut, Some((start, on_stall)))
}

fn block_on_with<F: Future>(
    main_fut: F,
    mut virt: Option<(Instant, &mut dyn FnMut() -> bool)>,
) -> F::Output {
    EXECUTOR.with(|e| {
        let mut slot = e.borrow_mut();
        assert!(slot.is_none(), "nested rt::block_on is not supported");
        let ex = Executor::default();
        if let Some((start, _)) = virt {
            ex.virtual_now.set(Some(start));
        }
        *slot = Some(Rc::new(ex));
    });
    // Ensure the executor slot is cleared even on panic.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            // Take the executor out, then drop it *after* the slot
            // borrow is released: dropping it drops its tasks, and a
            // task's transport may call [`deregister_fd`], which
            // re-borrows the slot.
            let ex = EXECUTOR.with(|e| e.borrow_mut().take());
            drop(ex);
        }
    }
    let _reset = Reset;

    let ex = current();
    let root_waker = Waker::from(Arc::new(TaskWaker { id: ROOT_ID, ready: ex.ready.clone() }));
    let mut main_fut = std::pin::pin!(main_fut);
    ex.ready.push(ROOT_ID);

    loop {
        // Timing histograms (poll latency, ready depth, timer lag) take
        // an `Instant::now` per event, so they are opt-in per thread
        // (`telemetry::set_timing`); counters stay always-on.
        let timing = crate::telemetry::timing_enabled();

        // Fire every due timer; their wakes land in the ready queue.
        let now = ex.virtual_now.get().unwrap_or_else(Instant::now);
        loop {
            let due = {
                let mut timers = ex.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(entry)) if entry.deadline <= now => timers.pop(),
                    _ => None,
                }
            };
            match due {
                Some(Reverse(entry)) => {
                    if timing {
                        let lag = now.saturating_duration_since(entry.deadline);
                        crate::telemetry::observe("rt.timer_lag_us", lag.as_micros() as u64);
                    }
                    entry.waker.wake();
                    let mut m = ex.metrics.get();
                    m.timer_fires += 1;
                    ex.metrics.set(m);
                }
                None => break,
            }
        }

        // One pass: poll exactly the woken tasks.
        {
            let mut m = ex.metrics.get();
            m.passes += 1;
            ex.metrics.set(m);
        }
        if timing {
            crate::telemetry::observe("rt.ready_depth", ex.ready.len() as u64);
        }
        while let Some(id) = ex.ready.pop() {
            let mut m = ex.metrics.get();
            m.task_polls += 1;
            ex.metrics.set(m);
            let poll_start = if timing { Some(Instant::now()) } else { None };
            if id == ROOT_ID {
                let mut cx = Context::from_waker(&root_waker);
                let res = main_fut.as_mut().poll(&mut cx);
                if let Some(t0) = poll_start {
                    crate::telemetry::observe("rt.poll_us", t0.elapsed().as_micros() as u64);
                }
                if let Poll::Ready(out) = res {
                    return out;
                }
                continue;
            }
            // Take the task out of its slot while polling, so the poll
            // can reentrantly spawn (which touches the slab) without a
            // double borrow.
            let slot = ex.tasks.borrow_mut()[id].take();
            let Some(mut slot) = slot else { continue }; // completed, stale wake
            let mut cx = Context::from_waker(&slot.waker);
            match slot.task.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    ex.free.borrow_mut().push(id);
                    ex.live.set(ex.live.get() - 1);
                }
                Poll::Pending => ex.tasks.borrow_mut()[id] = Some(slot),
            }
            if let Some(t0) = poll_start {
                crate::telemetry::observe("rt.poll_us", t0.elapsed().as_micros() as u64);
            }
        }

        // Nothing ready (a task's own wake during its poll re-enters the
        // queue and is caught here): sleep until the earliest timer — or,
        // under a virtual clock, consult the stall hook and then *jump*
        // to the earliest timer.
        if ex.ready.is_empty() {
            if let Some((_, on_stall)) = virt.as_mut() {
                if on_stall() {
                    continue; // the hook woke something; no time passes
                }
                let next = ex.timers.borrow().peek().map(|Reverse(e)| e.deadline);
                match next {
                    Some(deadline) => {
                        // Monotone: a due-now timer leaves the clock put.
                        // lint: allow(panic): `virt.is_some()` on this
                        // branch implies `virtual_now` was seeded by
                        // `block_on_virtual`; never reachable in serve.
                        let now = ex.virtual_now.get().expect("virtual mode set");
                        ex.virtual_now.set(Some(deadline.max(now)));
                    }
                    // lint: allow(panic): virtual-time (test/explore)
                    // mode only — a stuck schedule must fail loudly,
                    // and the wall-clock serve path never enters here.
                    None => panic!(
                        "virtual deadlock: no ready tasks, no timers, and the \
                         stall hook produced no work"
                    ),
                }
                continue;
            }
            let next = ex.timers.borrow().peek().map(|Reverse(e)| e.deadline);
            let now = Instant::now();
            let until_timer = match next {
                Some(deadline) if deadline > now => Some(deadline - now),
                Some(_) => continue, // a timer is already due: loop around
                None => None,
            };
            // With a reactor live, park in epoll_wait: a datagram or a
            // cross-thread wake (doorbell) ends the sleep immediately,
            // and with no timer pending we can wait indefinitely — any
            // wake reaches us through a registered fd. Without one,
            // plain thread::sleep; a timerless idle is then a genuine
            // deadlock and we tick rather than spin (the pre-waker
            // executor's behavior).
            let reactor = ex.reactor.borrow().clone();
            match reactor {
                Some(r) => {
                    if !ex.ready.park_if_empty() {
                        continue; // a wake slipped in; don't sleep
                    }
                    let mut tokens = r.tokens.borrow_mut();
                    tokens.clear();
                    let res = r.epoll.wait(until_timer, &mut tokens);
                    ex.ready.unpark();
                    if res.is_ok() {
                        let mut fd_wakes = 0u64;
                        for &token in tokens.iter() {
                            if token == DOORBELL_TOKEN {
                                r.doorbell.drain();
                                continue;
                            }
                            let fd = token as i32;
                            let mut interest = r.interest.borrow_mut();
                            if let Some(slot) = interest.get_mut(&fd) {
                                match slot.take() {
                                    Some(w) => {
                                        w.wake();
                                        fd_wakes += 1;
                                    }
                                    None => {
                                        // Readable but nobody listening:
                                        // stop watching or the level-
                                        // triggered event would fire on
                                        // every park.
                                        interest.remove(&fd);
                                        r.epoll.del(fd);
                                    }
                                }
                            }
                        }
                        if fd_wakes > 0 {
                            let mut m = ex.metrics.get();
                            m.epoll_wakeups += fd_wakes;
                            ex.metrics.set(m);
                        }
                    }
                }
                None => match until_timer {
                    Some(d) => std::thread::sleep(d),
                    None => std::thread::sleep(TICK),
                },
            }
        }
    }
}

/// A timer future: ready once the deadline passes.
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if now() >= self.deadline {
            Poll::Ready(())
        } else {
            // Register once: the deadline is fixed, so the single heap
            // entry guarantees the wake. Re-registering on every poll
            // would let wakes from other sources (a stale timer, a
            // channel) mint fresh heap entries — a feedback loop that
            // grows the heap and the spurious-poll rate over a task's
            // lifetime.
            if !self.registered {
                self.registered = true;
                register_timer(self.deadline, cx.waker());
            }
            Poll::Pending
        }
    }
}

/// Completes after `d`.
pub fn sleep(d: Duration) -> Sleep {
    Sleep { deadline: now() + d, registered: false }
}

/// Completes at `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline, registered: false }
}

/// Yields once, letting other tasks run before this one resumes.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug, Default)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            // Immediately re-ready: the wake queues this task behind
            // everything already woken, which is the yield.
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// The timeout elapsed before the inner future completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "timeout elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
#[derive(Debug)]
pub struct Timeout<F> {
    fut: F,
    deadline: Instant,
    registered: bool,
}

impl<F: Future + Unpin> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        if let Poll::Ready(v) = Pin::new(&mut this.fut).poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if now() >= this.deadline {
            return Poll::Ready(Err(Elapsed));
        }
        // Register once per Timeout instance (see `Sleep::poll`): the
        // entry outlives an early completion as a single stale wake,
        // which the next pending future absorbs without re-arming —
        // the chain dies instead of compounding.
        if !this.registered {
            this.registered = true;
            register_timer(this.deadline, cx.waker());
        }
        Poll::Pending
    }
}

/// Limits `fut` to duration `d`. The future must be `Unpin` (wrap in
/// `Box::pin` otherwise).
pub fn timeout<F: Future + Unpin>(d: Duration, fut: F) -> Timeout<F> {
    Timeout { fut, deadline: now() + d, registered: false }
}

/// An unbounded single-threaded channel, in the mpsc shape the session
/// router needs. A send wakes (only) the task awaiting the receive.
pub mod chan {
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::future::Future;
    use std::pin::Pin;
    use std::rc::Rc;
    use std::task::{Context, Poll, Waker};

    struct Shared<T> {
        queue: RefCell<VecDeque<T>>,
        senders: std::cell::Cell<usize>,
        /// Waker of the task blocked in [`Receiver::recv`], if any.
        recv_waker: RefCell<Option<Waker>>,
    }

    impl<T> Shared<T> {
        fn wake_receiver(&self) {
            if let Some(w) = self.recv_waker.borrow_mut().take() {
                w.wake();
            }
        }
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Rc<Shared<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        shared: Rc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.set(self.shared.senders.get() + 1);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let left = self.shared.senders.get() - 1;
            self.shared.senders.set(left);
            if left == 0 {
                // Closing the channel is an event the receiver awaits.
                self.shared.wake_receiver();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a value (never blocks) and wakes the receiver.
        pub fn send(&self, v: T) {
            self.shared.queue.borrow_mut().push_back(v);
            self.shared.wake_receiver();
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next value; `None` once all senders are gone and
        /// the queue is drained.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv { rx: self }
        }

        /// Non-blocking pop.
        pub fn try_recv(&mut self) -> Option<T> {
            self.shared.queue.borrow_mut().pop_front()
        }
    }

    /// Future returned by [`Receiver::recv`]; `Unpin` so it can be used
    /// with [`super::timeout`].
    pub struct Recv<'a, T> {
        rx: &'a mut Receiver<T>,
    }

    impl<T> Future for Recv<'_, T> {
        type Output = Option<T>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
            let shared = &self.rx.shared;
            if let Some(v) = shared.queue.borrow_mut().pop_front() {
                return Poll::Ready(Some(v));
            }
            if shared.senders.get() == 0 {
                return Poll::Ready(None);
            }
            let mut slot = shared.recv_waker.borrow_mut();
            match slot.as_ref() {
                Some(w) if w.will_wake(cx.waker()) => {}
                _ => *slot = Some(cx.waker().clone()),
            }
            Poll::Pending
        }
    }

    /// Creates an unbounded channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Rc::new(Shared {
            queue: RefCell::new(VecDeque::new()),
            senders: std::cell::Cell::new(1),
            recv_waker: RefCell::new(None),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }
}

// Re-exported so `use rt::channel` works like `tokio::sync::mpsc`.
pub use chan::channel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_returns_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawned_tasks_run_and_join() {
        let out = block_on(async {
            let h1 = spawn(async { 10u32 });
            let h2 = spawn(async {
                yield_now().await;
                32u32
            });
            h1.await + h2.await
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn sleep_waits_roughly_right() {
        let start = Instant::now();
        block_on(async {
            sleep(Duration::from_millis(20)).await;
        });
        let dt = start.elapsed();
        assert!(dt >= Duration::from_millis(20), "slept {dt:?}");
        assert!(dt < Duration::from_millis(500), "slept {dt:?}");
    }

    #[test]
    fn timeout_fires_on_slow_future() {
        block_on(async {
            let (tx, mut rx) = channel::<u8>();
            let r = timeout(Duration::from_millis(10), rx.recv()).await;
            assert_eq!(r, Err(Elapsed));
            tx.send(7);
            let r = timeout(Duration::from_millis(10), rx.recv()).await;
            assert_eq!(r, Ok(Some(7)));
        });
    }

    #[test]
    fn channel_round_trips_in_order() {
        block_on(async {
            let (tx, mut rx) = channel();
            let sender = spawn(async move {
                for i in 0..100u32 {
                    tx.send(i);
                    if i % 10 == 0 {
                        yield_now().await;
                    }
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            sender.await;
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn channel_closes_when_senders_drop() {
        block_on(async {
            let (tx, mut rx) = channel::<u8>();
            drop(tx);
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn cross_task_channel_wakes_receiver() {
        // The receiver blocks first; only the sender's wake may resume
        // it (no polling safety net in the waker executor).
        let got = block_on(async {
            let (tx, mut rx) = channel::<u32>();
            let recv_task = spawn(async move { rx.recv().await });
            spawn(async move {
                sleep(Duration::from_millis(5)).await;
                tx.send(99);
            });
            recv_task.await
        });
        assert_eq!(got, Some(99));
    }

    /// The busy-spin regression test: an executor with 1 000 idle
    /// (channel-blocked) tasks must not re-poll them when unrelated
    /// work happens — polls per pass are O(woken), not O(tasks).
    #[test]
    fn idle_tasks_poll_o1() {
        const IDLE: usize = 1_000;
        block_on(async {
            // Park 1k tasks on channels that never receive; keep the
            // senders alive so the channels never close.
            let mut keep: Vec<chan::Sender<u8>> = Vec::with_capacity(IDLE);
            for _ in 0..IDLE {
                let (tx, mut rx) = channel::<u8>();
                keep.push(tx);
                spawn(async move {
                    rx.recv().await;
                });
            }
            // Let every parked task reach its first (and only) poll.
            yield_now().await;
            let before = metrics();
            // Unrelated busy work: a ping-pong task plus timers, over
            // many scheduler passes.
            for _ in 0..50 {
                let h = spawn(async {
                    yield_now().await;
                    7u8
                });
                assert_eq!(h.await, 7);
                sleep(Duration::from_micros(200)).await;
            }
            let after = metrics();
            let polls = after.task_polls - before.task_polls;
            let passes = after.passes - before.passes;
            assert!(passes >= 50, "expected many passes, got {passes}");
            // 50 iterations × a handful of polls each (root + ping-pong
            // task + wake bookkeeping). With the old polling executor
            // this would be ≥ passes × 1000 ≈ 100 000.
            assert!(
                polls < 1_000,
                "idle tasks were re-polled: {polls} polls over {passes} passes \
                 with {IDLE} idle tasks"
            );
            drop(keep);
        });
    }

    #[test]
    fn metrics_track_max_tasks() {
        block_on(async {
            let h1 = spawn(async { yield_now().await });
            let h2 = spawn(async { yield_now().await });
            h1.await;
            h2.await;
            assert!(metrics().max_tasks >= 2);
            assert_eq!(live_tasks(), 0);
        });
    }

    /// A virtual run never sleeps: an hour of virtual timers completes
    /// in (wall-clock) microseconds, in deadline order, and `rt::now()`
    /// tracks the virtual clock.
    #[test]
    fn virtual_clock_jumps_over_long_sleeps() {
        let wall_start = Instant::now();
        let base = Instant::now();
        let order = block_on_virtual(
            async move {
                let start = now();
                let order: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
                let (o1, o2) = (order.clone(), order.clone());
                let h1 = spawn(async move {
                    sleep(Duration::from_secs(3600)).await;
                    o1.borrow_mut().push(2);
                });
                let h2 = spawn(async move {
                    sleep(Duration::from_secs(60)).await;
                    o2.borrow_mut().push(1);
                });
                h1.await;
                h2.await;
                assert!(now() >= start + Duration::from_secs(3600), "clock advanced");
                Rc::try_unwrap(order).expect("sole owner").into_inner()
            },
            base,
            &mut || false,
        );
        assert_eq!(order, vec![1, 2]);
        assert!(wall_start.elapsed() < Duration::from_secs(10), "virtual run must not sleep");
    }

    /// The stall hook runs exactly at the quiescent points and can
    /// inject work without letting time pass.
    #[test]
    fn stall_hook_injects_work_before_time_advances() {
        let base = Instant::now();
        let (tx, mut rx) = channel::<u8>();
        let mut fed = false;
        let got = block_on_virtual(
            async move {
                // Without the hook this would time out: nothing sends.
                timeout(Duration::from_secs(5), rx.recv()).await
            },
            base,
            &mut move || {
                if fed {
                    return false;
                }
                fed = true;
                tx.send(42);
                true
            },
        );
        assert_eq!(got, Ok(Some(42)));
    }

    #[test]
    #[should_panic(expected = "virtual deadlock")]
    fn virtual_deadlock_panics_instead_of_hanging() {
        // The sender stays alive so the channel never closes: the root
        // blocks forever with no timer, and the hook has nothing to add.
        let (_tx, mut rx) = channel::<u8>();
        block_on_virtual(async move { rx.recv().await }, Instant::now(), &mut || false);
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let order = block_on(async {
            let order: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
            let (o1, o2, o3) = (order.clone(), order.clone(), order.clone());
            let h1 = spawn(async move {
                sleep(Duration::from_millis(30)).await;
                o1.borrow_mut().push(3);
            });
            let h2 = spawn(async move {
                sleep(Duration::from_millis(10)).await;
                o2.borrow_mut().push(1);
            });
            let h3 = spawn(async move {
                sleep(Duration::from_millis(20)).await;
                o3.borrow_mut().push(2);
            });
            h1.await;
            h2.await;
            h3.await;
            Rc::try_unwrap(order).expect("sole owner").into_inner()
        });
        assert_eq!(order, vec![1, 2, 3]);
    }
}
