//! A minimal single-threaded async runtime.
//!
//! The ISSUE for this subsystem calls for a tokio-based runtime; the
//! build environment is fully offline (no crates.io), so this module
//! provides the required subset in-tree: [`block_on`], [`spawn`] (local
//! tasks), [`sleep`] timers, and cooperative scheduling. The executor is
//! a *polling* executor: tasks are round-robin polled and the loop backs
//! off for [`TICK`] when a pass makes no progress, so timer resolution
//! and I/O latency are bounded by `TICK` (100 µs) — entirely adequate
//! for a protocol whose deadlines are milliseconds. Swapping in tokio
//! later only requires replacing this module and the socket wrapper in
//! [`crate::udp`]; the protocol state machines are executor-agnostic.
//!
//! Not thread-safe by design: one runtime per thread, tasks are
//! `!Send`-friendly (`Rc` everywhere). Nested [`block_on`] is not
//! allowed.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Scheduler granularity: the executor never sleeps longer than this
/// between polling passes.
pub const TICK: Duration = Duration::from_micros(100);

type Task = Pin<Box<dyn Future<Output = ()>>>;

#[derive(Default)]
struct Executor {
    /// Tasks spawned and not yet completed.
    tasks: RefCell<Vec<Task>>,
    /// Tasks spawned while a polling pass was in flight.
    incoming: RefCell<Vec<Task>>,
    /// Bumped by [`notify`]; a change suppresses the back-off sleep.
    notifies: RefCell<u64>,
}

thread_local! {
    static EXECUTOR: RefCell<Option<Rc<Executor>>> = const { RefCell::new(None) };
}

fn current() -> Rc<Executor> {
    EXECUTOR.with(|e| {
        e.borrow().clone().expect("no runtime: call from within thinair_net::rt::block_on")
    })
}

/// Signals that new work is available (e.g. a channel push), suppressing
/// the executor's back-off sleep for one pass.
pub fn notify() {
    EXECUTOR.with(|e| {
        if let Some(ex) = e.borrow().as_ref() {
            *ex.notifies.borrow_mut() += 1;
        }
    });
}

/// Handle to a spawned task's result.
pub struct JoinHandle<T> {
    slot: Rc<RefCell<Option<T>>>,
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        match self.slot.borrow_mut().take() {
            Some(v) => Poll::Ready(v),
            None => Poll::Pending,
        }
    }
}

/// Spawns a task onto the current runtime.
///
/// The task runs until completion or until [`block_on`] returns (tasks
/// still pending at that point are dropped).
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let slot: Rc<RefCell<Option<F::Output>>> = Rc::new(RefCell::new(None));
    let slot2 = slot.clone();
    let task: Task = Box::pin(async move {
        let out = fut.await;
        *slot2.borrow_mut() = Some(out);
    });
    let ex = current();
    ex.incoming.borrow_mut().push(task);
    *ex.notifies.borrow_mut() += 1;
    JoinHandle { slot }
}

/// Runs `main_fut` to completion, driving all spawned tasks.
///
/// # Panics
/// Panics when called from within an active runtime on the same thread.
pub fn block_on<F: Future>(main_fut: F) -> F::Output {
    EXECUTOR.with(|e| {
        let mut slot = e.borrow_mut();
        assert!(slot.is_none(), "nested rt::block_on is not supported");
        *slot = Some(Rc::new(Executor::default()));
    });
    // Ensure the executor slot is cleared even on panic.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            EXECUTOR.with(|e| *e.borrow_mut() = None);
        }
    }
    let _reset = Reset;

    let ex = current();
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    let mut main_fut = std::pin::pin!(main_fut);

    loop {
        let notifies_before = *ex.notifies.borrow();

        if let Poll::Ready(out) = main_fut.as_mut().poll(&mut cx) {
            return out;
        }

        // One round-robin pass over the spawned tasks.
        let mut tasks = std::mem::take(&mut *ex.tasks.borrow_mut());
        let mut completed_any = false;
        tasks.retain_mut(|task| match task.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                completed_any = true;
                false
            }
            Poll::Pending => true,
        });
        let mut incoming = std::mem::take(&mut *ex.incoming.borrow_mut());
        tasks.append(&mut incoming);
        *ex.tasks.borrow_mut() = tasks;

        // Back off when the pass made no observable progress; channel
        // sends and spawns bump `notifies` so purely in-memory pipelines
        // (the sim transport) run at full speed.
        let progressed = completed_any || *ex.notifies.borrow() != notifies_before;
        if !progressed {
            std::thread::sleep(TICK);
        }
    }
}

/// A timer future: ready once the deadline passes.
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

/// Completes after `d` (resolution: [`TICK`]).
pub fn sleep(d: Duration) -> Sleep {
    Sleep { deadline: Instant::now() + d }
}

/// Completes at `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}

/// Yields once, letting other tasks run before this one resumes.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug, Default)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            // Keep the executor spinning: this task is immediately ready
            // again.
            notify();
            Poll::Pending
        }
    }
}

/// The timeout elapsed before the inner future completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "timeout elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
#[derive(Debug)]
pub struct Timeout<F> {
    fut: F,
    deadline: Instant,
}

impl<F: Future + Unpin> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        if let Poll::Ready(v) = Pin::new(&mut this.fut).poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if Instant::now() >= this.deadline {
            return Poll::Ready(Err(Elapsed));
        }
        Poll::Pending
    }
}

/// Limits `fut` to duration `d`. The future must be `Unpin` (wrap in
/// `Box::pin` otherwise).
pub fn timeout<F: Future + Unpin>(d: Duration, fut: F) -> Timeout<F> {
    Timeout { fut, deadline: Instant::now() + d }
}

/// An unbounded single-threaded channel, in the mpsc shape the session
/// router needs.
pub mod chan {
    use super::notify;
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::future::Future;
    use std::pin::Pin;
    use std::rc::Rc;
    use std::task::{Context, Poll};

    struct Shared<T> {
        queue: RefCell<VecDeque<T>>,
        senders: std::cell::Cell<usize>,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Rc<Shared<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        shared: Rc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.set(self.shared.senders.get() + 1);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.senders.set(self.shared.senders.get() - 1);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a value (never blocks).
        pub fn send(&self, v: T) {
            self.shared.queue.borrow_mut().push_back(v);
            notify();
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next value; `None` once all senders are gone and
        /// the queue is drained.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv { rx: self }
        }

        /// Non-blocking pop.
        pub fn try_recv(&mut self) -> Option<T> {
            self.shared.queue.borrow_mut().pop_front()
        }
    }

    /// Future returned by [`Receiver::recv`]; `Unpin` so it can be used
    /// with [`super::timeout`].
    pub struct Recv<'a, T> {
        rx: &'a mut Receiver<T>,
    }

    impl<T> Future for Recv<'_, T> {
        type Output = Option<T>;
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Option<T>> {
            let shared = &self.rx.shared;
            if let Some(v) = shared.queue.borrow_mut().pop_front() {
                return Poll::Ready(Some(v));
            }
            if shared.senders.get() == 0 {
                return Poll::Ready(None);
            }
            Poll::Pending
        }
    }

    /// Creates an unbounded channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Rc::new(Shared {
            queue: RefCell::new(VecDeque::new()),
            senders: std::cell::Cell::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }
}

// Re-exported so `use rt::channel` works like `tokio::sync::mpsc`.
pub use chan::channel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_returns_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawned_tasks_run_and_join() {
        let out = block_on(async {
            let h1 = spawn(async { 10u32 });
            let h2 = spawn(async {
                yield_now().await;
                32u32
            });
            h1.await + h2.await
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn sleep_waits_roughly_right() {
        let start = Instant::now();
        block_on(async {
            sleep(Duration::from_millis(20)).await;
        });
        let dt = start.elapsed();
        assert!(dt >= Duration::from_millis(20), "slept {dt:?}");
        assert!(dt < Duration::from_millis(500), "slept {dt:?}");
    }

    #[test]
    fn timeout_fires_on_slow_future() {
        block_on(async {
            let (tx, mut rx) = channel::<u8>();
            let r = timeout(Duration::from_millis(10), rx.recv()).await;
            assert_eq!(r, Err(Elapsed));
            tx.send(7);
            let r = timeout(Duration::from_millis(10), rx.recv()).await;
            assert_eq!(r, Ok(Some(7)));
        });
    }

    #[test]
    fn channel_round_trips_in_order() {
        block_on(async {
            let (tx, mut rx) = channel();
            let sender = spawn(async move {
                for i in 0..100u32 {
                    tx.send(i);
                    if i % 10 == 0 {
                        yield_now().await;
                    }
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            sender.await;
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn channel_closes_when_senders_drop() {
        block_on(async {
            let (tx, mut rx) = channel::<u8>();
            drop(tx);
            assert_eq!(rx.recv().await, None);
        });
    }
}
