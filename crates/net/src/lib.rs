//! `thinair-net` — the protocol over real packet I/O.
//!
//! Everything else in this workspace runs the HotNets'12
//! secret-agreement protocol inside an omniscient, synchronous
//! simulation. This crate is the path from simulation to system: an
//! async runtime executing phase-1/phase-2 group rounds over **real UDP
//! sockets**, with the same state machines also runnable against the
//! simulator for apples-to-apples validation.
//!
//! * [`rt`] — a minimal single-threaded async runtime (executor,
//!   timers, channels, and on Linux an epoll reactor so idle runtimes
//!   sleep in `epoll_wait`). The build environment is offline, so this
//!   stands in for tokio; the state machines only assume "futures +
//!   timers" and port directly.
//! * [`udp`] — nonblocking UDP for the runtime.
//! * [`frame`] — the versioned, checksummed datagram codec layered on
//!   the existing `thinair_core::wire::Message` encoding.
//! * [`transport`] — the [`transport::Transport`] trait and its two
//!   implementations: [`transport::UdpTransport`] (real sockets,
//!   unicast fan-out "broadcast") and [`transport::SimTransport`] (an
//!   adapter over [`thinair_netsim::Medium`] with exact bit
//!   accounting).
//! * [`chaos`] — the fault-injection layer for simulated transports:
//!   applies a deterministic `thinair_netsim::FaultPlan` (drop,
//!   corrupt, duplicate, reorder, delay jitter, partitions, terminal
//!   crash / late join, ACK-loss bursts) to every frame, with
//!   injection counters.
//! * [`reliable`] — per-peer ACK/retransmit for control frames,
//!   mirroring `thinair_core::transport` semantics on real I/O, with
//!   wraparound-safe anti-replay windows on the receive side. Closed
//!   loop since PR 7: RFC 6298-style per-peer RTO estimation, jittered
//!   exponential backoff, and a node-wide AIMD in-flight budget
//!   ([`reliable::FlowBudget`]) shared across sessions.
//! * [`session`] — shared session configuration, deterministic plan
//!   re-derivation, erasure injection (iid hash or pluggable per-receiver
//!   [`thinair_netsim::ErasureModel`] chains), secret reconstruction.
//! * [`coordinator`] / [`terminal`] — the two role state machines.
//! * [`node`] — one socket, many concurrent sessions (session-id
//!   routing), the daemon building block.
//! * [`serve`] — the long-lived daemon layer: a [`serve::Server`]
//!   auto-admits terminal sessions initiated by a coordinator, with
//!   admission caps, idle eviction and terminal-state GC
//!   ([`serve::SessionRegistry`]) — thousands of concurrent sessions
//!   multiplexed over one socket.
//! * [`shard`] — multi-core serve: N worker threads, each its own
//!   runtime + registry + `SO_REUSEPORT` socket on one shared address,
//!   with session-id-hash dispatch and cross-shard frame forwarding
//!   (the kernel steers by 4-tuple, so userspace re-dispatches).
//! * [`sys`] — the thin Linux FFI this rests on (epoll, eventfd,
//!   `SO_REUSEPORT`); the only module allowed `unsafe`, with graceful
//!   non-Linux fallbacks.
//! * [`driver`] — the multi-session experiment driver: a batch of
//!   concurrent sessions over prepared nodes or a simulated medium, with
//!   bit/frame measurements (`thinair-scenario`'s substrate).
//! * [`telemetry`] — the unified observability registry: named
//!   counters/gauges, log2-bucketed histograms with bounded-error
//!   percentiles, and a per-session span/event trace with JSONL
//!   export — the sink every other module's instrumentation feeds.
//!
//! The `thinaird` binary wraps this into a deployable daemon with
//! `coordinator`, `terminal`, and `demo` subcommands; see the README's
//! loopback quickstart.
//!
//! # Example (in-process loopback round)
//!
//! ```
//! use thinair_net::demo::loopback_round;
//! use thinair_net::session::SessionConfig;
//!
//! let cfg = SessionConfig { n_nodes: 4, ..SessionConfig::default() };
//! let outcomes = loopback_round(&cfg, 0x1234, 42).expect("round completes");
//! assert_eq!(outcomes.len(), 4);
//! // Every node derived the identical secret.
//! for pair in outcomes.windows(2) {
//!     assert_eq!(pair[0].secret, pair[1].secret);
//! }
//! ```

// `deny`, not `forbid`: the one exception is [`sys`], the thin Linux
// FFI module (epoll / eventfd / SO_REUSEPORT), which opts back in with
// a module-level `allow`. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod coordinator;
pub mod demo;
pub mod driver;
pub mod frame;
pub mod node;
pub mod reliable;
pub mod rt;
pub mod serve;
pub mod session;
pub mod shard;
pub mod sys;
pub mod telemetry;
pub mod terminal;
pub mod transport;
pub mod udp;

pub use chaos::FaultStats;
pub use driver::{drive_nodes, drive_sim, drive_sim_chaos, SimRun};
pub use frame::{Frame, NetPayload};
pub use node::Node;
pub use reliable::{backoff_delay, FlowBudget, RetransmitPolicy};
pub use serve::{ServeHandle, ServeLimits, ServeStats, Server, SessionRegistry};
pub use session::{AbortReason, NetError, SessionConfig, SessionOutcome, SessionTrace};
pub use shard::{
    bind_shard_sockets, run_sharded_serve, shard_group, shard_of, ShardReport, ShardTransport,
    ShardedServeOptions,
};
pub use telemetry::{Histogram, Snapshot, TraceEvent, TraceKind};
pub use transport::{
    PendingDelivery, SharedTransport, SimNet, SimTransport, StepHandle, Transport, UdpTransport,
};
