//! In-process multi-node convenience wrappers over [`crate::driver`]:
//! every protocol role as a task on one runtime, over real loopback UDP
//! sockets or a simulated medium.
//!
//! These are the building blocks of the `thinaird demo` subcommand, the
//! crate doctest, and the integration tests. Real multi-process
//! deployment uses the `coordinator` / `terminal` subcommands instead —
//! same state machines, one process per node. Harnesses that also need
//! measurements (bit ledger, frame counts) use [`crate::driver`]
//! directly.

use std::net::SocketAddr;

use thinair_netsim::Medium;

use crate::driver::{drive_nodes, drive_sim};
use crate::node::Node;
use crate::session::{NetError, SessionConfig, SessionOutcome};
use crate::transport::UdpTransport;
use crate::udp::AsyncUdpSocket;

pub use crate::driver::task_seed;

/// Runs `sessions.len()` concurrent group rounds with `cfg.n_nodes`
/// nodes over loopback UDP sockets, one node per task, one socket per
/// node, all multiplexed per node through a single pump.
///
/// Returns `outcomes[s][node]` in input order.
pub fn loopback_sessions(
    cfg: &SessionConfig,
    sessions: &[u64],
    seed: u64,
) -> Result<Vec<Vec<SessionOutcome>>, NetError> {
    let n = cfg.n_nodes as usize;
    // `n <= 256` by type (`n_nodes: u8`), so the `i as u8` node ids
    // below cannot wrap; larger rosters fail in `UdpTransport::new`.
    // Bind first so the full roster is known to every node.
    let socks: Vec<AsyncUdpSocket> =
        (0..n).map(|_| AsyncUdpSocket::bind("127.0.0.1:0")).collect::<std::io::Result<_>>()?;
    let addrs: Vec<SocketAddr> =
        socks.iter().map(|s| s.local_addr()).collect::<std::io::Result<_>>()?;
    let nodes: Vec<Node<UdpTransport>> = socks
        .into_iter()
        .enumerate()
        .map(|(i, s)| Node::new(UdpTransport::new(s, addrs.clone(), i as u8)))
        .collect();
    drive_nodes(cfg, &nodes, sessions, seed)
}

/// Runs one loopback UDP round; `outcomes[node]` for each node.
pub fn loopback_round(
    cfg: &SessionConfig,
    session: u64,
    seed: u64,
) -> Result<Vec<SessionOutcome>, NetError> {
    Ok(loopback_sessions(cfg, &[session], seed)?.remove(0))
}

/// Runs rounds over a simulated [`Medium`] — the **same** coordinator
/// and terminal state machines as the UDP path, driven through
/// [`crate::transport::SimTransport`]. Medium nodes beyond
/// `cfg.n_nodes` (e.g. a trailing Eve antenna) receive nothing but
/// shape every delivery.
pub fn sim_sessions<M: Medium + 'static>(
    medium: M,
    cfg: &SessionConfig,
    sessions: &[u64],
    seed: u64,
) -> Result<Vec<Vec<SessionOutcome>>, NetError> {
    Ok(drive_sim(medium, cfg, sessions, seed)?.outcomes)
}

/// Runs one simulated round.
pub fn sim_round<M: Medium + 'static>(
    medium: M,
    cfg: &SessionConfig,
    session: u64,
    seed: u64,
) -> Result<Vec<SessionOutcome>, NetError> {
    Ok(sim_sessions(medium, cfg, &[session], seed)?.remove(0))
}
