//! In-process multi-node drivers: every protocol role as a task on one
//! runtime, over real loopback UDP sockets or a simulated medium.
//!
//! These are the building blocks of the `thinaird demo` subcommand, the
//! crate doctest, and the integration tests. Real multi-process
//! deployment uses the `coordinator` / `terminal` subcommands instead —
//! same state machines, one process per node.

use std::net::SocketAddr;

use thinair_netsim::Medium;

use crate::node::Node;
use crate::rt;
use crate::session::{NetError, SessionConfig, SessionOutcome};
use crate::transport::{SimNet, UdpTransport};
use crate::udp::AsyncUdpSocket;

/// Mixes a per-task seed out of the demo seed, the session id and the
/// node id, so no two tasks draw identical payload streams.
pub fn task_seed(seed: u64, session: u64, node: u8) -> u64 {
    crate::session::splitmix64(
        seed ^ session.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (node as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    )
}

/// Runs `sessions.len()` concurrent group rounds with `cfg.n_nodes`
/// nodes over loopback UDP sockets, one node per task, one socket per
/// node, all multiplexed per node through a single pump.
///
/// Returns `outcomes[s][node]` in input order.
pub fn loopback_sessions(
    cfg: &SessionConfig,
    sessions: &[u64],
    seed: u64,
) -> Result<Vec<Vec<SessionOutcome>>, NetError> {
    let n = cfg.n_nodes as usize;
    // Bind first so the full roster is known to every node.
    let socks: Vec<AsyncUdpSocket> =
        (0..n).map(|_| AsyncUdpSocket::bind("127.0.0.1:0")).collect::<std::io::Result<_>>()?;
    let addrs: Vec<SocketAddr> =
        socks.iter().map(|s| s.local_addr()).collect::<std::io::Result<_>>()?;
    let nodes: Vec<Node<UdpTransport>> = socks
        .into_iter()
        .enumerate()
        .map(|(i, s)| Node::new(UdpTransport::new(s, addrs.clone(), i as u8)))
        .collect();
    run_nodes(cfg, &nodes, sessions, seed)
}

/// Runs one loopback UDP round; `outcomes[node]` for each node.
pub fn loopback_round(
    cfg: &SessionConfig,
    session: u64,
    seed: u64,
) -> Result<Vec<SessionOutcome>, NetError> {
    Ok(loopback_sessions(cfg, &[session], seed)?.remove(0))
}

/// Runs rounds over a simulated [`Medium`] — the **same** coordinator
/// and terminal state machines as the UDP path, driven through
/// [`crate::transport::SimTransport`]. Medium nodes beyond
/// `cfg.n_nodes` (e.g. a trailing Eve antenna) receive nothing but
/// shape every delivery.
pub fn sim_sessions<M: Medium + 'static>(
    medium: M,
    cfg: &SessionConfig,
    sessions: &[u64],
    seed: u64,
) -> Result<Vec<Vec<SessionOutcome>>, NetError> {
    let n = cfg.n_nodes as usize;
    let net = SimNet::new(medium, n);
    let nodes: Vec<_> = (0..n).map(|i| Node::new(net.transport(i as u8))).collect();
    run_nodes(cfg, &nodes, sessions, seed)
}

/// Runs one simulated round.
pub fn sim_round<M: Medium + 'static>(
    medium: M,
    cfg: &SessionConfig,
    session: u64,
    seed: u64,
) -> Result<Vec<SessionOutcome>, NetError> {
    Ok(sim_sessions(medium, cfg, &[session], seed)?.remove(0))
}

fn run_nodes<T: crate::transport::Transport + 'static>(
    cfg: &SessionConfig,
    nodes: &[Node<T>],
    sessions: &[u64],
    seed: u64,
) -> Result<Vec<Vec<SessionOutcome>>, NetError> {
    let n = cfg.n_nodes as usize;
    rt::block_on(async {
        for node in nodes {
            node.start_pump();
        }
        // Spawn every (session, node) role task up front: sessions truly
        // run concurrently, multiplexed over each node's one socket.
        let mut handles: Vec<Vec<rt::JoinHandle<Result<SessionOutcome, NetError>>>> =
            Vec::with_capacity(sessions.len());
        for &session in sessions {
            let mut per_session = Vec::with_capacity(n);
            for (i, node) in nodes.iter().enumerate() {
                let node = node.clone();
                let cfg = cfg.clone();
                let task_seed = task_seed(seed, session, i as u8);
                let role = i as u8 == cfg.coordinator;
                per_session.push(rt::spawn(async move {
                    if role {
                        node.coordinate(session, cfg, task_seed).await
                    } else {
                        node.participate(session, cfg, task_seed).await
                    }
                }));
            }
            handles.push(per_session);
        }
        let mut all = Vec::with_capacity(sessions.len());
        for per_session in handles {
            let mut outcomes = Vec::with_capacity(n);
            for h in per_session {
                outcomes.push(h.await?);
            }
            all.push(outcomes);
        }
        Ok(all)
    })
}
