//! Shared session machinery: configuration, deterministic erasure
//! injection, and secret reconstruction.
//!
//! # How a distributed round stays consistent
//!
//! The omniscient simulator hands every terminal the coordinator's
//! [`Plan`] object. Over real sockets nothing is shared, so the plan
//! must be *re-derivable*: `build_plan` is a pure function of the known
//! sets (reconstructed from everyone's reception reports + the
//! deterministic [`owner_order`] map), the estimator (part of the static
//! session configuration), and an RNG seed (announced in
//! `Message::PlanAnnounce`). Every node therefore computes bit-identical
//! plans — the announced `(m, l)` double-checks it.
//!
//! # Why erasures are injected
//!
//! The protocol mines secrecy out of packet loss; loopback UDP loses
//! essentially nothing, and a lossless broadcast gives the leave-one-out
//! estimator zero budget (every candidate Eve heard everything), so
//! `L = 0` — correct, but a useless demo. [`SessionConfig::drop_prob`]
//! injects receiver-side i.i.d. erasures on the *data plane only*
//! (x-packets and z-combos, never control frames), as a stand-in for a
//! lossy radio link. The erasure decision is a pure hash of
//! `(drop_seed, session, receiver, packet)` so a retransmitted datagram
//! is dropped consistently. Over an actually lossy network, set it to 0.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use thinair_core::construct::{build_plan, Plan, PlanParams};
use thinair_core::estimate::{Estimator, Tuning};
use thinair_core::kdf::derive_key;
use thinair_core::packet::{random_payload_bytes, Payload};
use thinair_core::phase1::owner_order;
use thinair_core::round::XSchedule;
use thinair_core::wire::{bitmap_from_received, received_from_bitmap, Message};
use thinair_core::ProtocolError;
use thinair_gf::{kernel, Gf256, PayloadPlane, RowEchelon};
use thinair_netsim::ErasureModel;

use crate::frame::{Frame, FrameError, NetPayload};
use crate::reliable::Reliable;
use crate::transport::{SharedTransport, Transport};

/// Infrastructure failures of a networked session. Conditions a
/// session can hit in normal (if hostile) operation — deadline,
/// attempt-budget exhaustion, config or plan mismatch — are *not*
/// errors: they terminate with a clean [`AbortReason`] inside an `Ok`
/// outcome instead.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Protocol-level failure (construction, decoding, config).
    Protocol(ProtocolError),
    /// A frame failed to parse (only surfaced from strict contexts;
    /// transports normally just drop bad datagrams).
    Frame(FrameError),
    /// The session's frame channel closed (node shut down).
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Protocol(e) => write!(f, "protocol: {e}"),
            NetError::Frame(e) => write!(f, "frame: {e}"),
            NetError::Closed => write!(f, "session channel closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}

/// Static per-session configuration; must be identical on every node
/// (checked via [`SessionConfig::digest`] at the start barrier).
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Number of protocol nodes (coordinator included).
    pub n_nodes: u8,
    /// Which node coordinates ("Alice").
    pub coordinator: u8,
    /// Phase-1 x-packet schedule.
    pub schedule: XSchedule,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Eve-erasure estimator (must not be `Oracle`: there is no ground
    /// truth on a real network).
    pub estimator: Estimator,
    /// Construction tunables.
    pub plan_params: PlanParams,
    /// Receiver-side data-plane erasure probability (see module docs).
    /// Ignored when [`SessionConfig::drop_models`] is set.
    pub drop_prob: f64,
    /// Seed of the erasure injection (both the iid hash and the
    /// per-receiver model patterns).
    pub drop_seed: u64,
    /// Per-receiver data-plane erasure models (indexed by node id).
    /// When set, receiver `r` drops data-plane packet `id` according to
    /// `drop_models[r]`'s deterministic pattern over the id sequence —
    /// so iid *and* bursty (Gilbert-Elliott) loss stay a pure function
    /// of `(model, drop_seed, session, receiver)`, independent of task
    /// scheduling, exactly like the legacy hash. `None` keeps the
    /// single-probability iid hash driven by `drop_prob`.
    pub drop_models: Option<Vec<ErasureModel>>,
    /// Initial retransmit timeout for reliable control frames: the RTO
    /// before any RTT sample exists, and the anchor of the adaptive
    /// RTO's floor (see [`crate::reliable`]).
    pub retransmit: Duration,
    /// Ceiling of the adaptive, exponentially backed-off retransmit
    /// delay.
    pub rto_cap: Duration,
    /// How long after the start barrier the x phase is considered
    /// settled (reports are sent at this point).
    pub x_settle: Duration,
    /// Overall session deadline.
    pub deadline: Duration,
    /// Attempt budget per reliable frame.
    pub max_attempts: u32,
    /// Fountain budget: most z-combos the coordinator streams in phase
    /// 2, and the length of every node's deterministic z-erasure
    /// pattern. Protocol-relevant (it bounds the shared fountain-index
    /// space each node precomputes drops over), so it folds into the
    /// config digest — unlike `max_attempts`, which is pure control-
    /// plane timing and must stay free to tune.
    pub z_budget: u32,
    /// **Test-only seeded bug** for validating the exhaustive
    /// interleaving explorer (`thinair-scenario`'s `explore` module): a
    /// terminal running with this flag rebuilds its plan as soon as its
    /// own report plus the coordinator's announcement exist —
    /// substituting empty bitmaps for peer reports it has not seen yet
    /// and skipping the `(m, l)` cross-check — which is exactly the
    /// kind of ordering bug the explorer must find and shrink. Never
    /// set outside explorer self-tests; deliberately excluded from
    /// [`SessionConfig::digest`] so a buggy terminal still pairs with a
    /// correct coordinator (the bug is local, not a config mismatch).
    pub bug_premature_plan: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            n_nodes: 4,
            coordinator: 0,
            schedule: XSchedule::CoordinatorOnly(60),
            payload_len: 32,
            estimator: Estimator::LeaveOneOut(Tuning::default()),
            plan_params: PlanParams::default(),
            drop_prob: 0.4,
            drop_seed: 7,
            drop_models: None,
            retransmit: Duration::from_millis(25),
            rto_cap: Duration::from_secs(1),
            x_settle: Duration::from_millis(150),
            deadline: Duration::from_secs(30),
            max_attempts: 400,
            z_budget: 400,
            bug_premature_plan: false,
        }
    }
}

impl SessionConfig {
    /// The resolved per-terminal x counts.
    pub fn x_counts(&self) -> Vec<usize> {
        self.schedule.resolve(self.n_nodes as usize, self.coordinator as usize)
    }

    /// The deterministic id → owner map of the x-pool.
    pub fn owners(&self) -> Vec<usize> {
        owner_order(&self.x_counts())
    }

    /// Total x-packets in a round.
    pub fn n_packets(&self) -> usize {
        self.x_counts().iter().sum()
    }

    /// Checks the parameters that must ride `u16` wire fields. A
    /// violation is not an infrastructure error but a *clean abort*:
    /// both role state machines call this on entry and terminate with
    /// the structured [`AbortReason::PlanOverflow`] instead of
    /// announcing a silently truncated plan (the pre-fix behavior was
    /// an unchecked `as u16` cast).
    pub fn plan_bounds(&self) -> Result<(), AbortReason> {
        let n_packets = self.n_packets();
        if n_packets > u16::MAX as usize {
            return Err(AbortReason::PlanOverflow {
                what: "n_packets",
                value: n_packets as u64,
                limit: u16::MAX as u64,
            });
        }
        Ok(())
    }

    /// Checks the configuration against the codec's and protocol's hard
    /// limits, so a bad `--payload-len` fails fast with a named error
    /// instead of silently emitting frames every receiver rejects
    /// (`Frame::encode` only debug-asserts [`crate::frame::MAX_PAYLOAD`]).
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.n_nodes < 2 {
            return Err(ProtocolError::BadConfig("need at least two nodes"));
        }
        if self.coordinator >= self.n_nodes {
            return Err(ProtocolError::BadConfig("coordinator outside roster"));
        }
        let n_packets = self.n_packets();
        if n_packets == 0 {
            return Err(ProtocolError::BadConfig("no x-packets scheduled"));
        }
        if n_packets > u16::MAX as usize {
            return Err(ProtocolError::BadConfig("x-pool exceeds u16 packet ids"));
        }
        // An x/z frame carries one payload plus bounded headers and
        // coefficient vectors; 16 KiB keeps every frame far inside
        // MAX_PAYLOAD (and inside a realistic unfragmented datagram).
        if self.payload_len == 0 || self.payload_len > 16 * 1024 {
            return Err(ProtocolError::BadConfig("payload_len must be in 1..=16384"));
        }
        if !(0.0..1.0).contains(&self.drop_prob) {
            return Err(ProtocolError::BadConfig("drop_prob must be in [0, 1)"));
        }
        if let Some(models) = &self.drop_models {
            if models.len() != self.n_nodes as usize {
                return Err(ProtocolError::BadConfig("drop_models must cover every node"));
            }
            if models.iter().any(|m| m.validate().is_err()) {
                return Err(ProtocolError::BadConfig("invalid drop model"));
            }
            if models.iter().any(|m| m.mean_erasure() >= 1.0) {
                return Err(ProtocolError::BadConfig("drop model erases everything"));
            }
        }
        if matches!(self.estimator, Estimator::Oracle { .. }) {
            // There is no ground-truth Eve on a real network.
            return Err(ProtocolError::BadConfig("oracle estimator is sim-only"));
        }
        if self.z_budget == 0 {
            return Err(ProtocolError::BadConfig("z_budget must be positive"));
        }
        Ok(())
    }

    /// FNV-1a digest over every field that affects protocol agreement.
    /// Two nodes with different digests would derive different plans, so
    /// the start barrier refuses to pair them.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        fold(self.n_nodes as u64);
        fold(self.coordinator as u64);
        for c in self.x_counts() {
            fold(c as u64);
        }
        fold(self.payload_len as u64);
        for b in self.estimator.name().bytes() {
            fold(b as u64);
        }
        let t = self.estimator.tuning();
        fold(t.scale.to_bits());
        fold(t.slack as u64);
        match &self.estimator {
            Estimator::FixedFraction { fraction } => fold(fraction.to_bits()),
            Estimator::Custom { candidates, .. } => {
                // The candidate sets define the plan; two nodes with the
                // same label but different sets must not pair up.
                for cand in candidates {
                    fold(cand.len() as u64);
                    for &j in cand {
                        fold(j as u64);
                    }
                }
            }
            _ => {}
        }
        fold(self.plan_params.max_rows as u64);
        fold(self.plan_params.support_floor as u64);
        fold(self.plan_params.support_slack as u64);
        fold(self.drop_prob.to_bits());
        fold(self.drop_seed);
        fold(self.z_budget as u64);
        if let Some(models) = &self.drop_models {
            fold(models.len() as u64);
            for m in models {
                for b in m.kind().bytes() {
                    fold(b as u64);
                }
                for p in m.params() {
                    fold(p.to_bits());
                }
            }
        }
        h
    }
}

// The canonical SplitMix64 finalizer; its output must be bit-identical
// on every node — it decides which packets are "erased".
pub(crate) use thinair_netsim::erasure::splitmix64;

/// Data-plane frame kinds for erasure injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataKind {
    /// Phase-1 x-packet.
    X,
    /// Phase-2 z-combo.
    Z,
}

/// Pure-hash erasure decision: should `receiver` drop this data-plane
/// packet?
pub fn inject_erasure(
    cfg: &SessionConfig,
    session: u64,
    receiver: u8,
    kind: DataKind,
    id: u64,
) -> bool {
    if cfg.drop_prob <= 0.0 {
        return false;
    }
    let salt = match kind {
        DataKind::X => 0x58u64,
        DataKind::Z => 0x5Au64,
    };
    let h = splitmix64(
        cfg.drop_seed
            ^ session.rotate_left(17)
            ^ (receiver as u64).wrapping_mul(0xA24B_AED4_963E_E407)
            ^ salt.wrapping_mul(0x9FB2_1C65_1E98_DF25)
            ^ id.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    );
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < cfg.drop_prob
}

/// Seed of one receiver's data-plane erasure chain (same mixing as the
/// iid hash, minus the per-packet id: the chain consumes ids in order).
fn chain_seed(cfg: &SessionConfig, session: u64, receiver: u8, kind: DataKind) -> u64 {
    let salt = match kind {
        DataKind::X => 0x58u64,
        DataKind::Z => 0x5Au64,
    };
    splitmix64(
        cfg.drop_seed
            ^ session.rotate_left(17)
            ^ (receiver as u64).wrapping_mul(0xA24B_AED4_963E_E407)
            ^ salt.wrapping_mul(0x9FB2_1C65_1E98_DF25),
    )
}

/// The first `len` drop decisions of `receiver`'s configured erasure
/// model for `kind` packets, or `None` when the session runs the legacy
/// iid hash ([`SessionConfig::drop_models`] unset). Packet `id` is the
/// chain position: phase-1 x ids and phase-2 fountain indices are both
/// sequential, so a burst model erases *consecutive transmissions* —
/// exactly what a fade does — while staying a pure function of the
/// configuration, independent of timing and task scheduling.
pub fn drop_pattern(
    cfg: &SessionConfig,
    session: u64,
    receiver: u8,
    kind: DataKind,
    len: usize,
) -> Option<Vec<bool>> {
    let models = cfg.drop_models.as_ref()?;
    let model = models.get(receiver as usize)?;
    Some(model.pattern(chain_seed(cfg, session, receiver, kind), len))
}

/// Rebuilds every node's known set from the collected reception-report
/// bitmaps (`reports[t]`) plus the deterministic ownership map.
pub fn known_sets(cfg: &SessionConfig, reports: &[Vec<u8>]) -> Vec<BTreeSet<usize>> {
    let owners = cfg.owners();
    let n_packets = owners.len();
    let mut known: Vec<BTreeSet<usize>> = reports
        .iter()
        .map(|bm| received_from_bitmap(n_packets, bm).into_iter().collect())
        .collect();
    for (id, &o) in owners.iter().enumerate() {
        known[o].insert(id);
    }
    known
}

/// Derives the plan every node must agree on from the shared reports
/// and the announced seed.
pub fn derive_plan(
    cfg: &SessionConfig,
    reports: &[Vec<u8>],
    plan_seed: u64,
) -> Result<Plan, ProtocolError> {
    let known = known_sets(cfg, reports);
    let mut rng = StdRng::seed_from_u64(plan_seed);
    build_plan(
        &known,
        cfg.coordinator as usize,
        cfg.n_packets(),
        &cfg.estimator,
        &mut rng,
        cfg.plan_params,
    )
}

/// Phase-1 data-plane state shared by both role state machines: this
/// node's slice of the x-pool, everything it received, and the
/// validation every incoming x-packet must clear.
pub(crate) struct XState {
    cfg: SessionConfig,
    session: u64,
    me: u8,
    owners: Vec<usize>,
    /// Precomputed drop decisions per data-plane kind when the session
    /// runs per-receiver erasure models ([`SessionConfig::drop_models`]).
    x_drops: Option<Vec<bool>>,
    z_drops: Option<Vec<bool>>,
    /// Payloads this node holds (own + received), by packet id, as raw
    /// byte rows (the kernels and the wire both speak bytes).
    pub store: BTreeMap<usize, Vec<u8>>,
    received: BTreeSet<usize>,
}

impl XState {
    pub fn new(cfg: &SessionConfig, session: u64, me: u8) -> Self {
        let owners = cfg.owners();
        // Fountain indices are capped by the fountain budget; the frame
        // carries them as u16.
        let z_len = (cfg.z_budget as usize).min(u16::MAX as usize + 1);
        let x_drops = drop_pattern(cfg, session, me, DataKind::X, owners.len());
        let z_drops = drop_pattern(cfg, session, me, DataKind::Z, z_len);
        XState {
            cfg: cfg.clone(),
            session,
            me,
            owners,
            x_drops,
            z_drops,
            store: BTreeMap::new(),
            received: BTreeSet::new(),
        }
    }

    /// Receiver-side data-plane erasure decision for this node: the
    /// configured model's chain when present, the iid hash otherwise.
    /// Ids beyond a chain's horizon are dropped (they can only come from
    /// a spoofed or corrupt frame).
    pub fn drops(&self, kind: DataKind, id: u64) -> bool {
        let pattern = match kind {
            DataKind::X => &self.x_drops,
            DataKind::Z => &self.z_drops,
        };
        match pattern {
            Some(p) => p.get(id as usize).copied().unwrap_or(true),
            None => inject_erasure(&self.cfg, self.session, self.me, kind, id),
        }
    }

    pub fn n_packets(&self) -> usize {
        self.owners.len()
    }

    /// Broadcasts this node's share of the x-pool (plain,
    /// unacknowledged: erasures are the point).
    pub fn broadcast_own<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        rel: &mut Reliable,
        rng: &mut StdRng,
    ) -> std::io::Result<()> {
        for (id, &o) in self.owners.iter().enumerate() {
            if o != self.me as usize {
                continue;
            }
            let payload = random_payload_bytes(self.cfg.payload_len, rng);
            // In range: the state machines abort (PlanOverflow) before
            // broadcasting when the x-pool exceeds the u16 id space.
            let id16 = u16::try_from(id).expect("x ids bounded by plan_bounds");
            let msg = Message::XPacket { id: id16, owner: self.me, payload: payload.clone() };
            self.store.insert(id, payload);
            let frame = Frame {
                flags: 0,
                sender: self.me,
                session: self.session,
                seq: rel.next_seq(),
                payload: NetPayload::Proto(msg),
            };
            t.broadcast(&frame)?;
        }
        Ok(())
    }

    /// Validates and stores an incoming x-packet; silently drops
    /// anything malformed (wrong owner, impersonated sender, wrong
    /// payload length — the UDP port is an open attack surface) and
    /// anything the configured erasure injection erases.
    pub fn on_frame(&mut self, frame: &Frame) {
        let NetPayload::Proto(Message::XPacket { id, owner, payload }) = &frame.payload else {
            return;
        };
        let id = *id as usize;
        if id < self.owners.len()
            && self.owners[id] == *owner as usize
            && *owner == frame.sender
            && *owner != self.me
            && payload.len() == self.cfg.payload_len
            && !self.drops(DataKind::X, id as u64)
        {
            self.store.insert(id, payload.clone());
            self.received.insert(id);
        }
    }

    /// This node's reception-report bitmap (received packets only; own
    /// packets are implicit in the ownership map).
    pub fn report_bitmap(&self) -> Vec<u8> {
        bitmap_from_received(self.owners.len(), self.received.iter().copied())
    }
}

/// Records a peer's reception report if it is fresh and well-formed.
pub(crate) fn accept_report(
    reports: &mut [Option<Vec<u8>>],
    n_packets: usize,
    fresh: bool,
    sender: u8,
    terminal: u8,
    np: u16,
    bitmap: Vec<u8>,
) {
    if fresh
        && terminal == sender
        && (terminal as usize) < reports.len()
        && np as usize == n_packets
    {
        reports[terminal as usize] = Some(bitmap);
    }
}

/// Why a session terminated without a usable secret.
///
/// A session that cannot complete must *abort* — terminate within its
/// deadline carrying a machine-readable reason — never hang and never
/// silently diverge. The reason rides in [`SessionOutcome::abort`] on
/// every node and in [`SessionTrace::abort`] on the coordinator, so an
/// offline auditor (the soak harness) can explain each failed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The session deadline passed while in the named phase.
    Deadline {
        /// Protocol phase at the moment the deadline fired.
        phase: &'static str,
    },
    /// A peer never acknowledged a control frame within the attempt
    /// budget.
    Unreachable {
        /// Peers that never acknowledged.
        missing: Vec<u8>,
        /// Attempts spent.
        attempts: u32,
    },
    /// The coordinator announced a configuration digest that differs
    /// from the local one.
    ConfigMismatch {
        /// Digest announced by the coordinator.
        got: u64,
        /// Digest of the local configuration.
        want: u64,
    },
    /// The locally rebuilt plan disagrees with the announced `(m, l)`.
    PlanMismatch,
    /// A session parameter outgrew the `u16` field that carries it on
    /// the wire (x-pool size, plan dimensions, fountain index). The
    /// session aborts with the offending value named instead of
    /// announcing a silently truncated plan.
    PlanOverflow {
        /// Which quantity overflowed (`"n_packets"`, `"plan m"`,
        /// `"plan l"`, `"fountain index"`).
        what: &'static str,
        /// The value that did not fit.
        value: u64,
        /// The wire field's maximum.
        limit: u64,
    },
}

impl AbortReason {
    /// A short stable label for histograms (`"deadline:z fountain"`,
    /// `"unreachable"`, …). Carries the phase but not the peer list, so
    /// identical failure modes aggregate.
    pub fn kind(&self) -> String {
        match self {
            AbortReason::Deadline { phase } => format!("deadline:{phase}"),
            AbortReason::Unreachable { .. } => "unreachable".into(),
            AbortReason::ConfigMismatch { .. } => "config-mismatch".into(),
            AbortReason::PlanMismatch => "plan-mismatch".into(),
            AbortReason::PlanOverflow { what, .. } => format!("plan-overflow:{what}"),
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Deadline { phase } => {
                write!(f, "session deadline passed during {phase}")
            }
            AbortReason::Unreachable { missing, attempts } => {
                write!(f, "peers {missing:?} unreachable after {attempts} attempts")
            }
            AbortReason::ConfigMismatch { got, want } => {
                write!(f, "config digest mismatch: coordinator {got:#018x}, local {want:#018x}")
            }
            AbortReason::PlanMismatch => write!(f, "rebuilt plan disagrees with announcement"),
            AbortReason::PlanOverflow { what, value, limit } => {
                write!(f, "{what} = {value} exceeds the wire limit {limit}")
            }
        }
    }
}

/// What a terminated session yields on one node: either a completed
/// round (`abort == None`) or a clean structured abort.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// Session id.
    pub session: u64,
    /// This node's id.
    pub node: u8,
    /// Group-secret length in packets (0: no secret this round).
    pub l: usize,
    /// Number of y-packets.
    pub m: usize,
    /// x-pool size.
    pub n_packets: usize,
    /// The group secret (empty when `l == 0` or the session aborted).
    pub secret: Vec<Payload>,
    /// `Some` when the session terminated without completing. An
    /// aborted outcome never carries a secret: a node that derived one
    /// but missed the final barrier discards it (it cannot know whether
    /// the group converged).
    pub abort: Option<AbortReason>,
    /// Coordinator-side audit trail (None on terminals): everything an
    /// offline analyzer needs to rebuild the plan via [`derive_plan`] —
    /// e.g. to score the round against a ground-truth Eve model.
    pub trace: Option<SessionTrace>,
}

/// The coordinator's record of how a session's plan came to be (or why
/// it never did).
#[derive(Clone, Debug)]
pub struct SessionTrace {
    /// The announced plan seed (0 when the session aborted before the
    /// plan was drawn — see `abort`).
    pub plan_seed: u64,
    /// Every node's reception-report bitmap, indexed by node id (empty
    /// bitmaps for reports never received).
    pub reports: Vec<Vec<u8>>,
    /// z-combos the fountain streamed before every terminal was done.
    pub z_sent: u32,
    /// Sends the transport's socket refused or dropped while this
    /// session ran (delta of [`crate::transport::Transport::send_errors`]
    /// between session start and end; 0 on the simulator). The counter
    /// is node-wide, so under concurrent sessions it attributes shared
    /// socket pressure to every session that lived through it.
    pub send_errors: u64,
    /// Why the coordinator aborted, when it did.
    pub abort: Option<AbortReason>,
}

impl SessionOutcome {
    /// A 32-byte key derived from the secret, or `None` when the round
    /// produced no secret (including every aborted round).
    pub fn key(&self) -> Option<[u8; 32]> {
        if self.secret.is_empty() || self.abort.is_some() {
            return None;
        }
        let bytes: Vec<u8> = self.secret.iter().flat_map(|p| p.iter().map(|s| s.value())).collect();
        Some(derive_key(&bytes, "thinair-net session key"))
    }

    /// Whether the session ran to completion on this node.
    pub fn completed(&self) -> bool {
        self.abort.is_none()
    }

    /// Builds the outcome of a cleanly aborted session.
    pub fn aborted(
        session: u64,
        node: u8,
        n_packets: usize,
        reason: AbortReason,
        trace: Option<SessionTrace>,
    ) -> Self {
        SessionOutcome {
            session,
            node,
            l: 0,
            m: 0,
            n_packets,
            secret: Vec::new(),
            abort: Some(reason),
            trace,
        }
    }
}

/// Incremental y/secret reconstruction for one node.
///
/// Directly computable rows come from the node's stored payloads; the
/// rest accumulate fountain combos until the projected system reaches
/// full rank, then one linear solve recovers the missing y-packets and
/// the secret is `D·y` (identities-only: nothing about `s` ever went on
/// the air).
pub struct Reconstructor {
    plan: Plan,
    payload_len: usize,
    /// One contiguous row per y-packet; `have[r]` marks filled rows.
    y: PayloadPlane,
    have: Vec<bool>,
    missing: Vec<usize>,
    tracker: RowEchelon,
    combos: Vec<(Vec<u8>, Vec<u8>)>,
}

impl Reconstructor {
    /// Builds the reconstructor for node `me` from its payload store.
    ///
    /// # Panics
    /// Panics if a directly decodable row references a payload `me`
    /// does not hold — impossible when the plan was derived from `me`'s
    /// own report.
    pub fn new(plan: Plan, payload_len: usize, me: u8, store: &BTreeMap<usize, Vec<u8>>) -> Self {
        let m = plan.m();
        let mut y = PayloadPlane::zero(m, payload_len);
        let mut have = vec![false; m];
        for &r in &plan.decodable[me as usize] {
            let row = &plan.rows[r];
            let acc = y.row_mut(r);
            for (&j, &c) in row.support.iter().zip(row.coeffs.iter()) {
                let p = store.get(&j).expect("decodable row references a payload this node holds");
                kernel::axpy(acc, p, c.value());
            }
            have[r] = true;
        }
        let missing: Vec<usize> = (0..m).filter(|r| !have[*r]).collect();
        let tracker = RowEchelon::new(missing.len());
        Reconstructor { plan, payload_len, y, have, missing, tracker, combos: Vec::new() }
    }

    /// Rows still unknown.
    pub fn needs(&self) -> usize {
        self.missing.len() - self.tracker.rank()
    }

    /// Whether enough combos have been collected to solve.
    pub fn complete(&self) -> bool {
        self.needs() == 0
    }

    /// Projection of fountain coefficients `q` onto y-column `col`:
    /// `(q·C)[col]`.
    #[inline]
    fn project(&self, q: &[u8], col: usize) -> u8 {
        q.iter()
            .enumerate()
            .fold(0u8, |acc, (k, &qk)| acc ^ kernel::gf_mul(qk, self.plan.c_mat[(k, col)].value()))
    }

    /// Offers one fountain combo (coefficients over the z-packets, and
    /// the combined payload). Returns `true` when the combo was
    /// innovative for this node.
    pub fn offer(&mut self, coeffs: &[u8], payload: &[u8]) -> bool {
        if self.complete() {
            return false;
        }
        let z_count = self.plan.c_mat.rows();
        if coeffs.len() != z_count || payload.len() != self.payload_len {
            return false; // malformed or stale combo
        }
        let qc: Vec<u8> = self.missing.iter().map(|&col| self.project(coeffs, col)).collect();
        if self.tracker.insert_bytes(&qc) {
            self.combos.push((coeffs.to_vec(), payload.to_vec()));
            true
        } else {
            false
        }
    }

    /// Solves for the missing y-packets and returns the group secret.
    pub fn secret(mut self, me: u8) -> Result<Vec<Payload>, NetError> {
        if !self.missing.is_empty() {
            if self.combos.len() < self.missing.len() {
                return Err(NetError::Protocol(ProtocolError::DecodeFailed {
                    terminal: me as usize,
                    what: "not enough z combos received",
                }));
            }
            let mut a = thinair_gf::Matrix::zero(0, self.missing.len());
            let mut rhs = PayloadPlane::with_capacity(self.combos.len(), self.payload_len);
            for (q, payload) in &self.combos {
                let row: Vec<Gf256> =
                    self.missing.iter().map(|&col| Gf256(self.project(q, col))).collect();
                a.push_row(&row);
                let mut acc = payload.clone();
                for (j, &have_j) in self.have.iter().enumerate() {
                    if have_j {
                        kernel::axpy(&mut acc, self.y.row(j), self.project(q, j));
                    }
                }
                rhs.push_row(&acc);
            }
            let solved =
                a.solve_plane(&rhs).ok_or(NetError::Protocol(ProtocolError::DecodeFailed {
                    terminal: me as usize,
                    what: "y from z system",
                }))?;
            for (pos, &r) in self.missing.iter().enumerate() {
                self.y.row_mut(r).copy_from_slice(solved.row(pos));
            }
        }
        Ok(self.plan.d_mat.mul_plane(&self.y).to_payloads())
    }

    /// Access to the plan (for `(m, l)` checks).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SessionConfig {
        SessionConfig { n_nodes: 3, ..SessionConfig::default() }
    }

    #[test]
    fn digest_tracks_protocol_relevant_fields() {
        let a = cfg();
        let mut b = cfg();
        assert_eq!(a.digest(), b.digest());
        b.payload_len += 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = cfg();
        c.drop_prob = 0.11;
        assert_ne!(a.digest(), c.digest());
        let mut d = cfg();
        d.retransmit = Duration::from_millis(1); // timing is not protocol-relevant
        d.rto_cap = Duration::from_secs(9);
        d.max_attempts = 7;
        assert_eq!(a.digest(), d.digest());
        // The fountain budget bounds the shared z-erasure pattern, so it
        // IS protocol-relevant.
        let mut e = cfg();
        e.z_budget = 128;
        assert_ne!(a.digest(), e.digest());
    }

    #[test]
    fn erasure_injection_is_deterministic_and_rate_plausible() {
        let c = SessionConfig { drop_prob: 0.4, ..cfg() };
        let drops = (0..10_000).filter(|&id| inject_erasure(&c, 5, 1, DataKind::X, id)).count();
        assert!((3_400..4_600).contains(&drops), "drops {drops}");
        for id in 0..50 {
            assert_eq!(
                inject_erasure(&c, 5, 1, DataKind::X, id),
                inject_erasure(&c, 5, 1, DataKind::X, id),
            );
        }
        // Different receivers and kinds decorrelate.
        let same = (0..1000)
            .filter(|&id| {
                inject_erasure(&c, 5, 1, DataKind::X, id)
                    == inject_erasure(&c, 5, 2, DataKind::X, id)
            })
            .count();
        assert!(same < 900, "receivers too correlated: {same}");
    }

    #[test]
    fn zero_drop_prob_never_erases() {
        let c = SessionConfig { drop_prob: 0.0, ..cfg() };
        assert!((0..1000).all(|id| !inject_erasure(&c, 1, 0, DataKind::Z, id)));
    }

    #[test]
    fn known_sets_combine_reports_and_ownership() {
        let c = SessionConfig { n_nodes: 2, schedule: XSchedule::Explicit(vec![2, 1]), ..cfg() };
        // owners = [0, 1, 0]; node 1 received packet 0 only.
        let reports = vec![
            thinair_core::wire::bitmap_from_received(3, [1usize].into_iter()),
            thinair_core::wire::bitmap_from_received(3, [0usize].into_iter()),
        ];
        let known = known_sets(&c, &reports);
        assert_eq!(known[0], [0usize, 1, 2].into_iter().collect());
        assert_eq!(known[1], [0usize, 1].into_iter().collect());
    }
}
