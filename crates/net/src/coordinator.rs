//! The asynchronous coordinator ("Alice") state machine.
//!
//! Drives one group session over any [`Transport`]:
//!
//! 1. **Start barrier** — reliably delivers `Start{digest}` to every
//!    terminal, so sockets are live and configurations agree before any
//!    data-plane packet is spent.
//! 2. **Phase 1** — broadcasts its share of x-packets (plain,
//!    unacknowledged: erasures are the point), waits [`SessionConfig::
//!    x_settle`], then reliably broadcasts its reception report and
//!    collects everyone else's.
//! 3. **Plan** — draws a seed, builds the construction with
//!    `thinair_core::construct::build_plan`, and announces
//!    `PlanAnnounce{seed, m, l}` — the terminals rebuild the identical
//!    plan from the shared reports (see [`crate::session`]).
//! 4. **Phase 2** — fountain-codes the `M − L` z-packets: random
//!    combinations stream until every terminal has signalled `Done`
//!    (rank complete), which absorbs any data-plane loss without
//!    per-packet ACKs.
//! 5. **Fin** — reliably tells every terminal the session is complete.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thinair_core::wire::Message;
use thinair_gf::{kernel, PayloadPlane};

use crate::frame::{Frame, NetPayload};
use crate::reliable::{Dedup, Reliable, RetransmitPolicy};
use crate::rt;
use crate::rt::chan::Receiver;
use crate::session::{
    accept_report, derive_plan, AbortReason, NetError, SessionConfig, SessionOutcome, SessionTrace,
    XState,
};
use crate::transport::{SharedTransport, Transport};

enum Phase {
    StartBarrier { start_seq: u32 },
    XSettle { until: Instant },
    AwaitReports,
    Fountain { next_combo: Instant },
    FinBarrier { fin_seq: u32 },
}

impl Phase {
    fn name(&self) -> &'static str {
        match self {
            Phase::StartBarrier { .. } => "start barrier",
            Phase::XSettle { .. } => "x settle",
            Phase::AwaitReports => "report collection",
            Phase::Fountain { .. } => "z fountain",
            Phase::FinBarrier { .. } => "fin barrier",
        }
    }
}

/// Settles the telemetry for a phase transition: the `old` phase's
/// duration lands in its `phase.coord.*` histogram, the span clock
/// restarts, and the trace records entering `new`.
fn note_phase(session: u64, me: u8, old: &'static str, new: &'static str, entered: &mut Instant) {
    crate::telemetry::observe(
        crate::telemetry::phase_metric("coord", old),
        entered.elapsed().as_micros() as u64,
    );
    *entered = rt::now();
    crate::telemetry::trace_phase(session, me, new);
}

/// Runs one session as the coordinator. `seed` feeds all local
/// randomness (x payloads, the plan seed, fountain coefficients).
///
/// A session that cannot complete — deadline passed, a peer's attempt
/// budget exhausted — terminates with a *clean abort*: an `Ok` outcome
/// whose [`SessionOutcome::abort`] names the structured reason, with
/// the partial [`SessionTrace`] attached for offline audit. `Err` is
/// reserved for infrastructure failures (socket errors, a closed frame
/// channel, construction bugs).
pub async fn run_coordinator<T: Transport>(
    t: SharedTransport<T>,
    mut rx: Receiver<Frame>,
    session: u64,
    cfg: SessionConfig,
    seed: u64,
) -> Result<SessionOutcome, NetError> {
    // Wire-width bounds are a *clean abort*, not an error: an x-pool
    // that cannot ride the u16 fields must terminate with a structured
    // reason instead of announcing a truncated plan.
    if let Err(reason) = cfg.plan_bounds() {
        let me = cfg.coordinator;
        return Ok(SessionOutcome::aborted(session, me, cfg.n_packets(), reason, None));
    }
    cfg.validate()?;
    let me = cfg.coordinator;
    let n = cfg.n_nodes;
    let targets: Vec<u8> = (0..n).filter(|&p| p != me).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Reliable::with_policy(RetransmitPolicy {
        initial_rto: cfg.retransmit,
        cap: cfg.rto_cap,
        max_attempts: cfg.max_attempts,
        seed,
    });
    let mut dedup = Dedup::new(n as usize);

    // Ground truth this node holds: its own x payloads plus received ones.
    let mut xs = XState::new(&cfg, session, me);
    let n_packets = xs.n_packets();
    let mut reports: Vec<Option<Vec<u8>>> = vec![None; n as usize];
    let mut done: BTreeSet<u8> = BTreeSet::new();

    // Fountain state, filled once the plan exists. The combo scratch
    // buffers are allocated once per session and reused for every frame.
    let mut fountain = FountainState::default();
    let mut z_sent: u32 = 0;
    let mut outcome: Option<SessionOutcome> = None;

    let deadline = rt::now() + cfg.deadline;
    let tick = cfg.retransmit.min(Duration::from_millis(10));
    // Socket send failures are counted node-wide by the transport; the
    // session's trace carries the delta over its own lifetime.
    let send_errors_at_start = t.send_errors();

    let start_seq = rel.send(&t, session, NetPayload::Start { digest: cfg.digest() }, &targets)?;
    let mut phase = Phase::StartBarrier { start_seq };
    let mut phase_entered = rt::now();
    crate::telemetry::trace_session_start(session, me, "coordinator");
    crate::telemetry::trace_phase(session, me, phase.name());

    // Builds the clean-abort outcome: the trace carries whatever was
    // collected (reports so far, empty bitmaps for the missing ones) so
    // the auditor can see how far the session got.
    let abort = |reason: AbortReason,
                 reports: &[Option<Vec<u8>>],
                 outcome: Option<SessionOutcome>,
                 z_sent: u32,
                 send_errors: u64| {
        let trace = match outcome.and_then(|o| o.trace) {
            Some(mut t) => {
                t.z_sent = z_sent;
                t.send_errors = send_errors;
                t.abort = Some(reason.clone());
                t
            }
            None => SessionTrace {
                plan_seed: 0,
                reports: reports.iter().map(|r| r.clone().unwrap_or_default()).collect(),
                z_sent,
                send_errors,
                abort: Some(reason.clone()),
            },
        };
        crate::telemetry::trace_abort(session, me, reason.kind());
        crate::telemetry::trace_end(session, me, false, 0);
        SessionOutcome::aborted(session, me, n_packets, reason, Some(trace))
    };

    // Once the fin barrier has been entered, every terminal has
    // signalled `Done`: the group provably converged, so a fin-ACK that
    // never arrives (deadline or attempt budget) completes the session
    // instead of discarding it — mirroring the terminal's post-Fin
    // guard. (A terminal that never *received* Fin still aborts on its
    // side: it cannot know the group converged. That asymmetry is the
    // Two Generals residue documented in docs/ARCHITECTURE.md.)
    let finish = |mut out: SessionOutcome, z_sent: u32, send_errors: u64| {
        if let Some(trace) = out.trace.as_mut() {
            trace.z_sent = z_sent;
            trace.send_errors = send_errors;
        }
        crate::telemetry::trace_end(session, me, true, out.l as u32);
        out
    };
    // The send-error delta this session will report, read lazily so
    // every exit path shares one expression.
    let send_errs = |t: &SharedTransport<T>| t.send_errors().saturating_sub(send_errors_at_start);

    loop {
        if rt::now() > deadline {
            if matches!(phase, Phase::FinBarrier { .. }) {
                if let Some(out) = outcome.take() {
                    return Ok(finish(out, z_sent, send_errs(&t)));
                }
            }
            let reason = AbortReason::Deadline { phase: phase.name() };
            return Ok(abort(reason, &reports, outcome, z_sent, send_errs(&t)));
        }

        match rt::timeout(tick, rx.recv()).await {
            Err(rt::Elapsed) => {}
            Ok(None) => return Err(NetError::Closed),
            Ok(Some(frame)) => {
                let fresh = dedup.admit(&t, &frame)?;
                match frame.payload {
                    NetPayload::Ack { seq } => rel.on_ack(frame.sender, seq),
                    NetPayload::Proto(Message::XPacket { .. }) => xs.on_frame(&frame),
                    NetPayload::Proto(Message::ReceptionReport {
                        terminal,
                        n_packets: np,
                        bitmap,
                    }) => {
                        accept_report(
                            &mut reports,
                            n_packets,
                            fresh,
                            frame.sender,
                            terminal,
                            np,
                            bitmap,
                        );
                    }
                    NetPayload::Done if frame.sender != me => {
                        done.insert(frame.sender);
                    }
                    NetPayload::Busy { retry_after_ms } => {
                        // Explicit backpressure from an over-capacity
                        // serve daemon: pause the start barrier for the
                        // suggested delay (bounded — the field rides the
                        // wire) instead of retransmitting blind. Paced
                        // re-admission, not an abort: the deadline still
                        // bounds the session.
                        if let Phase::StartBarrier { start_seq } = phase {
                            let wait = Duration::from_millis(retry_after_ms.min(10_000) as u64);
                            rel.defer(start_seq, rt::now() + wait);
                            crate::telemetry::counter_add("net.busy.deferred", 1);
                        }
                    }
                    // Terminals never send plans, z-packets, Start or Fin.
                    _ => {}
                }
            }
        }

        let now = rt::now();
        match &phase {
            Phase::StartBarrier { start_seq } => {
                if rel.acked(*start_seq) {
                    // Broadcast this node's share of the x-pool.
                    xs.broadcast_own(&t, &mut rel, &mut rng)?;
                    let prev = phase.name();
                    phase = Phase::XSettle { until: now + cfg.x_settle };
                    note_phase(session, me, prev, phase.name(), &mut phase_entered);
                }
            }
            Phase::XSettle { until } => {
                if now >= *until {
                    let bitmap = xs.report_bitmap();
                    reports[me as usize] = Some(bitmap.clone());
                    let msg = Message::ReceptionReport {
                        terminal: me,
                        // In range: plan_bounds() aborted before this
                        // point when the pool exceeds u16.
                        n_packets: u16::try_from(n_packets).expect("bounded by plan_bounds"),
                        bitmap,
                    };
                    rel.send(&t, session, NetPayload::Proto(msg), &targets)?;
                    let prev = phase.name();
                    phase = Phase::AwaitReports;
                    note_phase(session, me, prev, phase.name(), &mut phase_entered);
                }
            }
            Phase::AwaitReports => {
                if reports.iter().all(|r| r.is_some()) {
                    let flat: Vec<Vec<u8>> =
                        reports.iter().map(|r| r.clone().expect("all present")).collect();
                    let plan_seed: u64 = rng.gen();
                    let plan = derive_plan(&cfg, &flat, plan_seed)?;
                    let (m, l) = (plan.m(), plan.l);
                    // The announcement carries (m, l) as u16; a plan too
                    // large for the wire is a structured abort, never a
                    // truncated announcement every terminal would
                    // mis-rebuild against.
                    let (m16, l16) = match (u16::try_from(m), u16::try_from(l)) {
                        (Ok(m16), Ok(l16)) => (m16, l16),
                        _ => {
                            // Label and value must describe the same
                            // dimension (m takes precedence when both
                            // overflow).
                            let (what, value) =
                                if m > u16::MAX as usize { ("plan m", m) } else { ("plan l", l) };
                            let reason = AbortReason::PlanOverflow {
                                what,
                                value: value as u64,
                                limit: u16::MAX as u64,
                            };
                            return Ok(abort(reason, &reports, outcome, z_sent, send_errs(&t)));
                        }
                    };
                    let msg = Message::PlanAnnounce { seed: plan_seed, m: m16, l: l16 };
                    rel.send(&t, session, NetPayload::Proto(msg), &targets)?;
                    // The coordinator decodes every row directly.
                    let secret = if l > 0 {
                        let mut y = PayloadPlane::zero(plan.rows.len(), cfg.payload_len);
                        for (r, row) in plan.rows.iter().enumerate() {
                            let acc = y.row_mut(r);
                            for (&j, &c) in row.support.iter().zip(row.coeffs.iter()) {
                                let p = xs.store.get(&j).expect("coordinator holds every support");
                                kernel::axpy(acc, p, c.value());
                            }
                        }
                        fountain.set_z(plan.c_mat.mul_plane(&y), cfg.payload_len);
                        plan.d_mat.mul_plane(&y).to_payloads()
                    } else {
                        Vec::new()
                    };
                    let trace = Some(SessionTrace {
                        plan_seed,
                        reports: flat,
                        z_sent: 0,
                        send_errors: 0,
                        abort: None,
                    });
                    outcome = Some(SessionOutcome {
                        session,
                        node: me,
                        l,
                        m,
                        n_packets,
                        secret,
                        abort: None,
                        trace,
                    });
                    let prev = phase.name();
                    phase = Phase::Fountain { next_combo: now };
                    note_phase(session, me, prev, phase.name(), &mut phase_entered);
                }
            }
            Phase::Fountain { next_combo } => {
                if targets.iter().all(|p| done.contains(p)) {
                    let fin_seq = rel.send(&t, session, NetPayload::Fin, &targets)?;
                    let prev = phase.name();
                    phase = Phase::FinBarrier { fin_seq };
                    note_phase(session, me, prev, phase.name(), &mut phase_entered);
                } else if now >= *next_combo && !fountain.is_empty() {
                    if z_sent >= cfg.z_budget {
                        let missing: Vec<u8> =
                            targets.iter().copied().filter(|p| !done.contains(p)).collect();
                        let reason = AbortReason::Unreachable { missing, attempts: z_sent };
                        return Ok(abort(reason, &reports, outcome, z_sent, send_errs(&t)));
                    }
                    // An initial burst covers the worst-case missing-row
                    // count; afterwards one combo per tick tops up losses.
                    let burst = if z_sent == 0 { (fountain.z_count() + 3) as u32 } else { 1 };
                    for _ in 0..burst {
                        // Combo indices ride the wire as u16; a fountain
                        // that outlives the index space (only reachable
                        // with z_budget > 65536) aborts cleanly
                        // instead of wrapping — a wrapped index would
                        // collide erasure-injection decisions.
                        let Ok(index) = u16::try_from(z_sent) else {
                            let reason = AbortReason::PlanOverflow {
                                what: "fountain index",
                                value: z_sent as u64,
                                limit: u16::MAX as u64,
                            };
                            return Ok(abort(reason, &reports, outcome, z_sent, send_errs(&t)));
                        };
                        fountain.send_combo(&t, session, index, &mut rng)?;
                        z_sent += 1;
                    }
                    phase = Phase::Fountain { next_combo: now + cfg.retransmit };
                }
            }
            Phase::FinBarrier { fin_seq } => {
                if rel.acked(*fin_seq) {
                    // The terminal span of a completed session: settle
                    // the fin-barrier histogram before returning.
                    crate::telemetry::observe(
                        crate::telemetry::phase_metric("coord", phase.name()),
                        phase_entered.elapsed().as_micros() as u64,
                    );
                    let out = outcome.take().expect("outcome set before fin");
                    return Ok(finish(out, z_sent, send_errs(&t)));
                }
            }
        }

        if let Err(u) = rel.tick(&t, rt::now())? {
            if matches!(phase, Phase::FinBarrier { .. }) {
                if let Some(out) = outcome.take() {
                    return Ok(finish(out, z_sent, send_errs(&t)));
                }
            }
            let reason = AbortReason::Unreachable { missing: u.missing, attempts: u.attempts };
            return Ok(abort(reason, &reports, outcome, z_sent, send_errs(&t)));
        }
    }
}

/// Per-session fountain state: the z plane plus reusable combo scratch
/// buffers, so streaming combos does not allocate per frame beyond the
/// owned vectors the outgoing message itself needs.
#[derive(Default)]
struct FountainState {
    z: PayloadPlane,
    q: Vec<u8>,
    acc: Vec<u8>,
}

impl FountainState {
    fn set_z(&mut self, z: PayloadPlane, payload_len: usize) {
        self.q = vec![0; z.rows()];
        self.acc = vec![0; payload_len];
        self.z = z;
    }

    fn is_empty(&self) -> bool {
        self.z.is_empty()
    }

    fn z_count(&self) -> usize {
        self.z.rows()
    }

    fn send_combo<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        session: u64,
        z_seq: u16,
        rng: &mut StdRng,
    ) -> Result<(), NetError> {
        let me = t.local_node();
        // Random non-zero combination: innovative for every needy receiver
        // with overwhelming probability (the receiver's rank tracker is the
        // ground truth).
        for qk in self.q.iter_mut() {
            *qk = rng.gen();
        }
        if self.q.iter().all(|&c| c == 0) {
            self.q[0] = 1;
        }
        self.acc.fill(0);
        for (k, &qk) in self.q.iter().enumerate() {
            kernel::axpy(&mut self.acc, self.z.row(k), qk);
        }
        let msg =
            Message::ZPacket { index: z_seq, coeffs: self.q.clone(), payload: self.acc.clone() };
        // z-combos are unreliable, so they carry their combo index as
        // the frame seq instead of consuming reliable-layer sequence
        // numbers: the fountain's length is timing-dependent (top-ups),
        // and burning shared seqs on it would make every later control
        // frame's identity — and its chaos-layer fault verdict —
        // timing-dependent too.
        let frame = Frame {
            flags: 0,
            sender: me,
            session,
            seq: z_seq as u32,
            payload: NetPayload::Proto(msg),
        };
        t.broadcast(&frame)?;
        Ok(())
    }
}
