//! Per-session span/event recording: the trace side of the telemetry
//! registry.
//!
//! Every instrumented state machine emits [`TraceEvent`]s through the
//! registry (`telemetry::trace_*` helpers); they accumulate in a
//! bounded [`TraceRing`] that callers drain (`telemetry::take_events`)
//! and append to a JSONL file. One line per event:
//!
//! ```json
//! {"ts_us": 1234, "session": 7, "node": 0, "event": "phase", "phase": "z fountain"}
//! ```
//!
//! The required fields on every line are `ts_us`, `session`, `node`,
//! `event`; the rest depend on the event kind. A session's span is the
//! bracket from its `session_start` line to its `session_end` line,
//! with `phase` lines marking the state-machine transitions between
//! them.
//!
//! **Determinism classes.** The *sequence* of `session_start`, `phase`,
//! `abort` and `session_end` events per `(session, node)` is a pure
//! function of the spec + seed when run over the simulated medium;
//! `retransmit` events and every `ts_us` value are timing-class
//! (scheduling-dependent) and excluded from the determinism contract —
//! the same split `soak_determinism.rs` pins for artifact fields.

use std::collections::VecDeque;

/// What happened. Each variant renders as a distinct `event` string.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceKind {
    /// A session's state machine came up (coordinator admitted /
    /// terminal started).
    SessionStart {
        /// `"coordinator"` or `"terminal"`.
        role: &'static str,
    },
    /// The state machine entered a named phase.
    Phase {
        /// Phase name, e.g. `"z fountain"` — the same names
        /// `AbortReason::Deadline` carries.
        phase: &'static str,
    },
    /// The reliable layer resent a frame (timing-class).
    Retransmit {
        /// Sequence number of the resent frame.
        seq: u64,
        /// Attempt count after this send.
        attempt: u32,
    },
    /// The session aborted cleanly.
    Abort {
        /// Structured reason kind, e.g. `"deadline:z fountain"`.
        kind: String,
    },
    /// The session's state machine finished.
    SessionEnd {
        /// Whether the protocol completed (false ⇒ aborted).
        completed: bool,
        /// Secret blocks agreed (`l`); 0 on abort.
        l: u32,
    },
}

impl TraceKind {
    /// The `event` field value for this kind.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::SessionStart { .. } => "session_start",
            TraceKind::Phase { .. } => "phase",
            TraceKind::Retransmit { .. } => "retransmit",
            TraceKind::Abort { .. } => "abort",
            TraceKind::SessionEnd { .. } => "session_end",
        }
    }

    /// Whether this event's *occurrence* depends on scheduling/timing
    /// (retransmits do; the state-machine milestones don't).
    pub fn is_timing_class(&self) -> bool {
        matches!(self, TraceKind::Retransmit { .. })
    }
}

/// One trace line: where, when, what.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the registry was reset (timing-class).
    pub ts_us: u64,
    /// Session id.
    pub session: u64,
    /// Emitting node id.
    pub node: u8,
    /// The event payload.
    pub kind: TraceKind,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let head = format!(
            "{{\"ts_us\": {}, \"session\": {}, \"node\": {}, \"event\": \"{}\"",
            self.ts_us,
            self.session,
            self.node,
            self.kind.name()
        );
        let tail = match &self.kind {
            TraceKind::SessionStart { role } => format!(", \"role\": \"{role}\"}}"),
            TraceKind::Phase { phase } => format!(", \"phase\": \"{phase}\"}}"),
            TraceKind::Retransmit { seq, attempt } => {
                format!(", \"seq\": {seq}, \"attempt\": {attempt}}}")
            }
            TraceKind::Abort { kind } => format!(", \"kind\": \"{}\"}}", escape(kind)),
            TraceKind::SessionEnd { completed, l } => {
                format!(", \"completed\": {completed}, \"l\": {l}}}")
            }
        };
        head + &tail
    }
}

/// A bounded event buffer: pushes past capacity drop the *oldest*
/// events and count them, so a stalled drain loses history rather than
/// memory.
#[derive(Debug)]
pub struct TraceRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// Default ring capacity (events) when tracing is enabled without an
/// explicit size.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl TraceRing {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing { buf: VecDeque::new(), capacity: capacity.max(1), dropped: 0 }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events evicted by overflow since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(session: u64) -> TraceEvent {
        TraceEvent {
            ts_us: session,
            session,
            node: 0,
            kind: TraceKind::Phase { phase: "x settle" },
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = TraceRing::new(3);
        for s in 0..5 {
            r.push(ev(s));
        }
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.drain().into_iter().map(|e| e.session).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert!(r.is_empty());
    }

    #[test]
    fn jsonl_has_required_fields_and_escapes() {
        let e = TraceEvent {
            ts_us: 42,
            session: 9,
            node: 2,
            kind: TraceKind::Abort { kind: "deadline:\"x\"".into() },
        };
        let line = e.to_jsonl();
        for needle in ["\"ts_us\": 42", "\"session\": 9", "\"node\": 2", "\"event\": \"abort\""] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert!(line.contains("deadline:\\\"x\\\""));
    }

    #[test]
    fn timing_class_split() {
        assert!(TraceKind::Retransmit { seq: 1, attempt: 2 }.is_timing_class());
        for k in [
            TraceKind::SessionStart { role: "terminal" },
            TraceKind::Phase { phase: "z fountain" },
            TraceKind::Abort { kind: "unreachable".into() },
            TraceKind::SessionEnd { completed: true, l: 3 },
        ] {
            assert!(!k.is_timing_class(), "{} misclassified", k.name());
        }
    }
}
