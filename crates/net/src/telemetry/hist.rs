//! A log2-bucketed histogram for latency and queue-depth distributions.
//!
//! The serve harness needs percentiles over millions of samples without
//! keeping (or sorting) the samples: a fixed array of counts whose
//! buckets grow geometrically. The layout is the HDR-style
//! "sub-bucketed octave" scheme:
//!
//! * values below [`SUB_BUCKETS`] (16) land in their own bucket —
//!   **exact**;
//! * every larger value lands in one of 16 equal-width sub-buckets of
//!   its power-of-two octave, so bucket width is always ≤ 1/16 of the
//!   bucket's lower bound.
//!
//! [`Histogram::percentile`] answers from the bucket containing the
//! requested rank, using the bucket midpoint. The estimate therefore
//! carries a **bounded relative error of 1/16 (6.25 %)** of the true
//! value (exact below 16) — the precision bound every artifact field
//! derived from a histogram cites. `tests/telemetry_obs.rs` pins the
//! bound against an exactly-sorted reference.
//!
//! All state is plain counts, so histograms can be cloned for
//! snapshots, merged across sources, and subtracted for per-interval
//! deltas.

/// Sub-buckets per power-of-two octave. Also the first-exact-bucket
/// count: values `< SUB_BUCKETS` are recorded exactly.
pub const SUB_BUCKETS: u64 = 16;

const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)

/// Bucket count covering the full `u64` range: 16 exact buckets plus
/// 16 sub-buckets for each octave `2^4 ..= 2^63`.
pub const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) + (64 - SUB_BITS as usize) * 16;

/// A fixed-size log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of `v` (total order, contiguous from 0).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = ((v >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
        ((msb - SUB_BITS) as usize) * 16 + SUB_BUCKETS as usize + sub
    }
}

/// Inclusive lower bound of bucket `idx`.
fn bucket_lo(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        idx as u64
    } else {
        let octave = (idx / 16 - 1) as u32 + SUB_BITS;
        let sub = (idx % 16) as u64;
        (1u64 << octave) + (sub << (octave - SUB_BITS))
    }
}

/// Inclusive upper bound of bucket `idx` (its width is `1/16` of its
/// lower octave).
fn bucket_hi(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        idx as u64
    } else {
        let octave = (idx / 16 - 1) as u32 + SUB_BITS;
        bucket_lo(idx) + ((1u64 << (octave - SUB_BITS)) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: Box::new([0; NUM_BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile estimate (`0.0 ..= 1.0`): the midpoint of the
    /// bucket holding the sample of that rank. Relative error is
    /// bounded by 1/16 of the true value (exact for values below 16);
    /// the exact `min`/`max` clamp the tails.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = bucket_lo(idx) + (bucket_hi(idx) - bucket_lo(idx)) / 2;
                // The exact extremes are known; never estimate outside
                // them.
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The samples recorded since `earlier` (a previous snapshot of the
    /// same histogram). Bucket counts subtract exactly; `min`/`max` are
    /// re-derived from the delta's nonzero buckets (bucket-precision,
    /// not exact — the exact extremes belong to the cumulative
    /// histogram).
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (idx, (a, b)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            let d = a.saturating_sub(*b);
            if d > 0 {
                out.counts[idx] = d;
                out.count += d;
                out.min = out.min.min(bucket_lo(idx));
                out.max = out.max.max(bucket_hi(idx));
            }
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Renders the summary as a JSON object fragment:
    /// `{"count": N, "min": .., "p50": .., "p90": .., "p99": ..,
    /// "p999": .., "max": .., "mean": ..}` — values in the unit the
    /// samples were recorded in.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
             \"p999\": {}, \"max\": {}, \"mean\": {:.1}}}",
            self.count,
            self.min(),
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.percentile(0.999),
            self.max,
            self.mean(),
        )
    }
}

/// Exposed for boundary tests: `(index, lower, upper)` of the bucket
/// holding `v`.
pub fn bucket_of(v: u64) -> (usize, u64, u64) {
    let idx = bucket_index(v);
    (idx, bucket_lo(idx), bucket_hi(idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every value maps into a bucket whose bounds contain it, and
        // bucket indices are monotone in the value.
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            255,
            256,
            257,
            1 << 20,
            (1 << 20) + 1,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut last_idx = 0usize;
        for &v in &probes {
            let (idx, lo, hi) = bucket_of(v);
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
            assert!(idx >= last_idx, "bucket order broken at {v}");
            assert!(idx < NUM_BUCKETS);
            last_idx = idx;
        }
        // Bucket width never exceeds 1/16 of the lower bound (for
        // values past the exact range).
        for idx in SUB_BUCKETS as usize..NUM_BUCKETS {
            let (lo, hi) = (bucket_lo(idx), bucket_hi(idx));
            assert!(hi - lo <= lo.div_ceil(16), "bucket {idx} too wide: [{lo}, {hi}]");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for p in [0.01, 0.25, 0.5, 0.75, 1.0] {
            let est = h.percentile(p);
            assert!(est < 16, "exact-range estimate escaped: {est}");
        }
        let mut single = Histogram::new();
        single.record(7);
        assert_eq!(single.percentile(0.5), 7);
        assert_eq!(single.min(), 7);
        assert_eq!(single.max(), 7);
    }

    #[test]
    fn merge_and_delta_roundtrip() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3u64, 100, 10_000] {
            a.record(v);
        }
        for v in [5u64, 1_000_000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        let d = merged.delta(&a);
        assert_eq!(d.count(), b.count());
        // The delta's percentile matches b's within bucket precision.
        let (db, bb) = (d.percentile(1.0) as f64, b.percentile(1.0) as f64);
        assert!((db - bb).abs() <= bb / 16.0 + 1.0);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }
}
