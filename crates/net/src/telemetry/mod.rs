//! Unified observability registry: named counters, gauges,
//! log2-bucketed histograms, and a per-session event trace.
//!
//! Before this module, every layer kept its own one-off stats —
//! `rt::metrics()`, `TxStats`, `ServeStats`, `SessionTrace` — with no
//! way to correlate them or ask "where did the time go *per phase*".
//! The registry is the one sink they all feed:
//!
//! * **Counters** (`counter_add`) — monotone event counts: frames
//!   sent/received, retransmits, send errors, admissions, evictions.
//! * **Gauges** (`gauge_set`) — point-in-time levels: open sessions.
//! * **Histograms** (`observe`) — distributions with bounded-error
//!   percentiles ([`hist::Histogram`]): poll latency, ready-queue
//!   depth, timer lag, batch drain size, ACK RTT, per-phase session
//!   durations.
//! * **Trace** (`trace_*`) — per-session span events into a bounded
//!   [`trace::TraceRing`], drained to JSONL by the CLI/benches.
//!
//! The registry is **per-thread**, matching the runtime's
//! one-executor-per-thread design: all writes go to the calling
//! thread's own registry behind an uncontended mutex (no cross-thread
//! contention on the hot path). Each thread's registry is also
//! published to a process-wide list, so the daemon's stats reporter can
//! gather every worker shard's view with [`snapshot_all`] — before
//! this, stats recorded on worker threads silently vanished from the
//! main thread's [`snapshot`]. (Bench harnesses that need strict
//! isolation from unrelated threads instead collect each worker's own
//! [`snapshot`] at join and combine them with [`Snapshot::merge`].)
//! Counters and the trace are always cheap; the high-frequency *timing*
//! instrumentation in the executor (`Instant::now` per poll) is
//! additionally gated behind [`set_timing`] so tests and production
//! paths that don't read it don't pay for it.
//!
//! Everything is read out via [`snapshot`]; [`Snapshot::delta`] gives
//! per-interval views (satellite fix for `rt::metrics()` being
//! cumulative).

pub mod hist;
pub mod trace;

pub use hist::Histogram;
pub use trace::{TraceEvent, TraceKind, TraceRing, DEFAULT_TRACE_CAPACITY};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    timing: bool,
    ring: Option<TraceRing>,
    epoch: Instant,
}

impl Registry {
    fn new() -> Self {
        Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            timing: false,
            ring: None,
            epoch: Instant::now(),
        }
    }
}

/// One thread's registry, shareable so [`snapshot_all`] can read it
/// from the gathering thread. The mutex is uncontended in steady state
/// (only the owning thread writes; readers are rare stats flushes).
struct ThreadRegistry {
    inner: Mutex<Registry>,
}

/// Every live thread's registry (weak: a finished thread's registry —
/// and its data — goes away with the thread; collect its [`snapshot`]
/// before joining it if the numbers must survive).
static ALL_REGISTRIES: Mutex<Vec<Weak<ThreadRegistry>>> = Mutex::new(Vec::new());

thread_local! {
    static REGISTRY: Arc<ThreadRegistry> = {
        let tr = Arc::new(ThreadRegistry { inner: Mutex::new(Registry::new()) });
        ALL_REGISTRIES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::downgrade(&tr));
        tr
    };
}

fn with_reg<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    REGISTRY.with(|r| f(&mut r.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)))
}

/// Adds `n` to the named counter (creating it at zero).
pub fn counter_add(name: &'static str, n: u64) {
    with_reg(|reg| *reg.counters.entry(name).or_insert(0) += n);
}

/// Sets the named gauge to `v`.
pub fn gauge_set(name: &'static str, v: u64) {
    with_reg(|reg| {
        reg.gauges.insert(name, v);
    });
}

/// Records `v` into the named histogram (creating it empty).
pub fn observe(name: &'static str, v: u64) {
    with_reg(|reg| reg.hists.entry(name).or_default().record(v));
}

/// Enables or disables the high-frequency timing instrumentation
/// (executor poll latency / timer lag — anything needing an
/// `Instant::now` per event). Off by default, per-thread.
pub fn set_timing(on: bool) {
    with_reg(|reg| reg.timing = on);
}

/// Whether timing instrumentation is on for this thread.
pub fn timing_enabled() -> bool {
    with_reg(|reg| reg.timing)
}

/// Clears all counters, gauges, histograms and the trace ring, and
/// restarts the trace clock — **this thread only**. The timing flag
/// and trace enablement are preserved.
pub fn reset() {
    with_reg(|reg| {
        reg.counters.clear();
        reg.gauges.clear();
        reg.hists.clear();
        reg.epoch = Instant::now();
        if let Some(ring) = &mut reg.ring {
            *ring = TraceRing::new(DEFAULT_TRACE_CAPACITY);
        }
    });
}

/// Turns on event tracing with a ring of `capacity` events (replacing
/// any existing ring).
pub fn enable_trace(capacity: usize) {
    with_reg(|reg| reg.ring = Some(TraceRing::new(capacity)));
}

/// Whether event tracing is on for this thread.
pub fn trace_enabled() -> bool {
    with_reg(|reg| reg.ring.is_some())
}

/// Drains all buffered trace events (empty when tracing is off).
pub fn take_events() -> Vec<TraceEvent> {
    with_reg(|reg| reg.ring.as_mut().map(|ring| ring.drain()).unwrap_or_default())
}

/// Events lost to ring overflow since tracing was enabled.
pub fn trace_dropped() -> u64 {
    with_reg(|reg| reg.ring.as_ref().map(|ring| ring.dropped()).unwrap_or(0))
}

fn emit(session: u64, node: u8, kind: TraceKind) {
    with_reg(|reg| {
        if reg.ring.is_none() {
            return;
        }
        let ts_us = reg.epoch.elapsed().as_micros() as u64;
        if let Some(ring) = &mut reg.ring {
            ring.push(TraceEvent { ts_us, session, node, kind });
        }
    });
}

/// Emits a `session_start` event (no-op when tracing is off).
pub fn trace_session_start(session: u64, node: u8, role: &'static str) {
    emit(session, node, TraceKind::SessionStart { role });
}

/// Emits a `phase` transition event.
pub fn trace_phase(session: u64, node: u8, phase: &'static str) {
    emit(session, node, TraceKind::Phase { phase });
}

/// Emits a (timing-class) `retransmit` event.
pub fn trace_retransmit(session: u64, node: u8, seq: u64, attempt: u32) {
    emit(session, node, TraceKind::Retransmit { seq, attempt });
}

/// Emits an `abort` event with the structured reason kind.
pub fn trace_abort(session: u64, node: u8, kind: String) {
    emit(session, node, TraceKind::Abort { kind });
}

/// Emits a `session_end` event.
pub fn trace_end(session: u64, node: u8, completed: bool, l: u32) {
    emit(session, node, TraceKind::SessionEnd { completed, l });
}

/// Maps a role + dynamic phase name to the static histogram name its
/// duration is recorded under (`phase.<role>.<phase>`), so the hot
/// path never allocates metric names.
pub fn phase_metric(role: &str, phase: &str) -> &'static str {
    match (role, phase) {
        ("coord", "start barrier") => "phase.coord.start_barrier",
        ("coord", "x settle") => "phase.coord.x_settle",
        ("coord", "report collection") => "phase.coord.report_collection",
        ("coord", "z fountain") => "phase.coord.z_fountain",
        ("coord", "fin barrier") => "phase.coord.fin_barrier",
        ("term", "await start") => "phase.term.await_start",
        ("term", "x settle") => "phase.term.x_settle",
        ("term", "await plan") => "phase.term.await_plan",
        ("term", "z fountain") => "phase.term.z_fountain",
        ("term", "await fin") => "phase.term.await_fin",
        _ => "phase.other",
    }
}

/// A point-in-time copy of the registry's counters, gauges and
/// histograms.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Histogram>,
}

/// Copies the current thread's registry contents.
pub fn snapshot() -> Snapshot {
    with_reg(|reg| Snapshot {
        counters: reg.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        gauges: reg.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        hists: reg.hists.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
    })
}

/// Gathers a merged [`Snapshot`] across **every live thread's**
/// registry ([`Snapshot::merge`] semantics: counters and gauges add,
/// histograms merge), pruning registries of threads that have exited.
///
/// This is the daemon stats path: the serve workers each run their own
/// runtime on their own thread, and the reporter on the main thread
/// would otherwise see only its own (empty) registry. Note it is
/// process-wide — a test harness running unrelated threads in parallel
/// should prefer per-thread [`snapshot`]s merged explicitly.
pub fn snapshot_all() -> Snapshot {
    let mut regs = ALL_REGISTRIES.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = Snapshot::default();
    regs.retain(|weak| {
        let Some(tr) = weak.upgrade() else { return false };
        let reg = tr.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let one = Snapshot {
            counters: reg.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: reg.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            hists: reg.hists.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        out.merge(&one);
        true
    });
    out
}

impl Snapshot {
    /// What happened since `earlier`: counters and histogram buckets
    /// subtract; gauges keep their current (latest) value.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot { gauges: self.gauges.clone(), ..Snapshot::default() };
        for (k, v) in &self.counters {
            let prev = earlier.counters.get(k).copied().unwrap_or(0);
            let d = v.saturating_sub(prev);
            if d > 0 {
                out.counters.insert(k.clone(), d);
            }
        }
        for (k, h) in &self.hists {
            let d = match earlier.hists.get(k) {
                Some(prev) => h.delta(prev),
                None => h.clone(),
            };
            if !d.is_empty() {
                out.hists.insert(k.clone(), d);
            }
        }
        out
    }

    /// Merges another snapshot into this one (counters add, gauges add
    /// — levels on disjoint threads stack — histograms merge).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Renders the snapshot as a compact JSON object:
    /// `{"counters": {..}, "gauges": {..}, "hists": {name: summary}}`.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> =
            self.counters.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        let gauges: Vec<String> =
            self.gauges.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        let hists: Vec<String> =
            self.hists.iter().map(|(k, h)| format!("\"{k}\": {}", h.summary_json())).collect();
        format!(
            "{{\"counters\": {{{}}}, \"gauges\": {{{}}}, \"hists\": {{{}}}}}",
            counters.join(", "),
            gauges.join(", "),
            hists.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip_and_delta() {
        reset();
        counter_add("t.frames", 3);
        counter_add("t.frames", 2);
        gauge_set("t.open", 7);
        observe("t.lat_us", 100);
        observe("t.lat_us", 200);
        let first = snapshot();
        assert_eq!(first.counters["t.frames"], 5);
        assert_eq!(first.gauges["t.open"], 7);
        assert_eq!(first.hists["t.lat_us"].count(), 2);

        counter_add("t.frames", 10);
        observe("t.lat_us", 400);
        gauge_set("t.open", 4);
        let second = snapshot();
        let d = second.delta(&first);
        assert_eq!(d.counters["t.frames"], 10);
        assert_eq!(d.gauges["t.open"], 4, "gauge keeps latest value");
        assert_eq!(d.hists["t.lat_us"].count(), 1);
        reset();
        assert!(snapshot().counters.is_empty());
    }

    #[test]
    fn trace_off_is_silent_and_on_records() {
        reset();
        // Default: off — emitters are no-ops.
        trace_phase(1, 0, "x settle");
        assert!(take_events().is_empty());
        enable_trace(8);
        trace_session_start(1, 0, "coordinator");
        trace_phase(1, 0, "x settle");
        trace_end(1, 0, true, 2);
        let evs = take_events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind.name(), "session_start");
        assert_eq!(evs[2].kind.name(), "session_end");
    }

    #[test]
    fn phase_metric_is_total() {
        for (role, phase) in [
            ("coord", "start barrier"),
            ("coord", "z fountain"),
            ("term", "await plan"),
            ("term", "x settle"),
        ] {
            assert!(phase_metric(role, phase).starts_with("phase."));
            assert_ne!(phase_metric(role, phase), "phase.other");
        }
        assert_eq!(phase_metric("coord", "nonsense"), "phase.other");
    }

    /// The worker-thread-stats bugfix pin: values recorded on a spawned
    /// thread must be visible in the gathered snapshot while the worker
    /// lives — before per-thread registration they vanished entirely.
    #[test]
    fn snapshot_all_sees_worker_thread_stats() {
        counter_add("test.mt.main_counter", 2);
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            counter_add("test.mt.worker_counter", 41);
            counter_add("test.mt.worker_counter", 1);
            observe("test.mt.worker_hist", 7);
            ready_tx.send(()).expect("main alive");
            // Stay alive until the main thread has gathered: a dead
            // thread's registry is pruned, by design.
            done_rx.recv().ok();
        });
        ready_rx.recv().expect("worker recorded");
        let all = snapshot_all();
        assert_eq!(all.counters["test.mt.worker_counter"], 42);
        assert_eq!(all.hists["test.mt.worker_hist"].count(), 1);
        assert!(all.counters["test.mt.main_counter"] >= 2);
        // The plain per-thread snapshot still does NOT see the worker.
        assert!(!snapshot().counters.contains_key("test.mt.worker_counter"));
        done_tx.send(()).expect("worker alive");
        worker.join().expect("worker exits cleanly");
    }

    #[test]
    fn snapshot_json_shape() {
        reset();
        counter_add("a.b", 1);
        observe("c.d", 50);
        let js = snapshot().to_json();
        for needle in ["\"counters\"", "\"gauges\"", "\"hists\"", "\"a.b\": 1", "\"p999\""] {
            assert!(js.contains(needle), "missing {needle} in {js}");
        }
    }
}
