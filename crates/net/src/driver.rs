//! The multi-session driver: many concurrent group rounds over any
//! transport, with measurement.
//!
//! [`crate::demo`]'s helpers run rounds and return outcomes; experiment
//! harnesses need more — the transmitted-bit ledger, the frame count,
//! and every node's outcome — without hand-wiring nodes, pumps and
//! tasks themselves. This module is that API: [`drive_nodes`] runs a
//! batch of sessions across an arbitrary set of prepared nodes, and
//! [`drive_sim`] wraps a [`Medium`] in a [`SimNet`], drives the batch,
//! and returns the outcomes *plus* the simulation-side measurements
//! ([`SimRun`]). The `thinair-scenario` engine is its main consumer; the
//! demo helpers are now thin wrappers over it.
//!
//! Every (session, node) role task is spawned up front, so sessions are
//! genuinely concurrent — multiplexed by session id over each node's one
//! transport, exercising the same routing a long-lived daemon uses.

use thinair_netsim::{FaultPlan, Medium, TxStats};

use crate::chaos::FaultStats;
use crate::node::Node;
use crate::rt;
use crate::session::{NetError, SessionConfig, SessionOutcome};
use crate::transport::{SimNet, Transport};

/// Mixes a per-task seed out of the run seed, the session id and the
/// node id, so no two tasks draw identical payload streams.
pub fn task_seed(seed: u64, session: u64, node: u8) -> u64 {
    crate::session::splitmix64(
        seed ^ session.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (node as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    )
}

/// Outcomes plus simulation-side measurements of one [`drive_sim`] batch.
pub struct SimRun {
    /// `outcomes[s][node]`: every node's view of session `sessions[s]`.
    pub outcomes: Vec<Vec<SessionOutcome>>,
    /// Per-node transmitted-bit ledger (the efficiency denominator).
    pub stats: TxStats,
    /// Frames put on the air (one medium transmission each).
    pub frames: u64,
    /// Faults the chaos layer injected (all zero without a
    /// [`FaultPlan`]; timing-class, like the frame counters).
    pub faults: FaultStats,
}

impl SimRun {
    /// Total bits transmitted across every node and session.
    pub fn bits_transmitted(&self) -> u64 {
        self.stats.total()
    }
}

/// Runs `sessions` concurrent group rounds across the prepared `nodes`
/// (node `i` plays `cfg.coordinator`'s role iff `i == cfg.coordinator`).
/// Returns `outcomes[s][node]` in input order.
pub fn drive_nodes<T: Transport + 'static>(
    cfg: &SessionConfig,
    nodes: &[Node<T>],
    sessions: &[u64],
    seed: u64,
) -> Result<Vec<Vec<SessionOutcome>>, NetError> {
    let n = cfg.n_nodes as usize;
    assert_eq!(nodes.len(), n, "one node per roster slot");
    // Node ids ride the wire as u8. `cfg.n_nodes` is itself a u8, so the
    // `i as u8` casts below cannot wrap; rosters beyond 256 nodes are
    // rejected at transport construction (`UdpTransport::new`,
    // `SimNet::build`) — a construction-time error, never a wrap.
    debug_assert!(n <= u8::MAX as usize + 1);
    rt::block_on(async {
        for node in nodes {
            node.start_pump();
        }
        // Spawn every (session, node) role task up front: sessions truly
        // run concurrently, multiplexed over each node's one socket.
        let mut handles: Vec<Vec<rt::JoinHandle<Result<SessionOutcome, NetError>>>> =
            Vec::with_capacity(sessions.len());
        for &session in sessions {
            let mut per_session = Vec::with_capacity(n);
            for (i, node) in nodes.iter().enumerate() {
                let node = node.clone();
                let cfg = cfg.clone();
                let task_seed = task_seed(seed, session, i as u8);
                let role = i as u8 == cfg.coordinator;
                per_session.push(rt::spawn(async move {
                    if role {
                        node.coordinate(session, cfg, task_seed).await
                    } else {
                        node.participate(session, cfg, task_seed).await
                    }
                }));
            }
            handles.push(per_session);
        }
        let mut all = Vec::with_capacity(sessions.len());
        for per_session in handles {
            let mut outcomes = Vec::with_capacity(n);
            for h in per_session {
                outcomes.push(h.await?);
            }
            all.push(outcomes);
        }
        Ok(all)
    })
}

/// Drives a batch of sessions over a simulated [`Medium`] and returns
/// outcomes plus measurements. Medium nodes beyond `cfg.n_nodes` (e.g. a
/// trailing Eve antenna) receive nothing but shape every delivery.
pub fn drive_sim<M: Medium + 'static>(
    medium: M,
    cfg: &SessionConfig,
    sessions: &[u64],
    seed: u64,
) -> Result<SimRun, NetError> {
    drive_sim_chaos(medium, cfg, sessions, seed, FaultPlan::none(), 0)
}

/// [`drive_sim`] with an adversarial chaos layer: every frame passes
/// through `plan`'s deterministic fault schedule under `fault_seed`
/// (see [`crate::chaos`]). Sessions hit by unsurvivable faults
/// terminate with clean structured aborts
/// ([`SessionOutcome::abort`]) instead of failing the batch, so a soak
/// harness gets every node's view of every session.
pub fn drive_sim_chaos<M: Medium + 'static>(
    medium: M,
    cfg: &SessionConfig,
    sessions: &[u64],
    seed: u64,
    plan: FaultPlan,
    fault_seed: u64,
) -> Result<SimRun, NetError> {
    let n = cfg.n_nodes as usize;
    let net = SimNet::with_faults(medium, n, plan, fault_seed, cfg.coordinator);
    let nodes: Vec<_> = (0..n).map(|i| Node::new(net.transport(i as u8))).collect();
    let outcomes = drive_nodes(cfg, &nodes, sessions, seed)?;
    Ok(SimRun {
        outcomes,
        stats: net.stats(),
        frames: net.frames_transmitted(),
        faults: net.fault_stats(),
    })
}
