//! The node: one transport, one receive pump, many concurrent sessions.
//!
//! A daemon owns a single socket; the pump task reads frames and routes
//! them by session id to whichever session state machines are open —
//! that's how one `thinaird` process multiplexes many concurrent group
//! rounds ("session-id routing"). Frames for unknown sessions are
//! dropped and counted.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::coordinator::run_coordinator;
use crate::frame::Frame;
use crate::rt;
use crate::rt::chan::{channel, Receiver, Sender};
use crate::session::{NetError, SessionConfig, SessionOutcome};
use crate::terminal::run_terminal;
use crate::transport::{SharedTransport, Transport};

struct Routes {
    by_session: BTreeMap<u64, Sender<Frame>>,
    orphans: u64,
}

/// One protocol node over one transport.
pub struct Node<T> {
    t: SharedTransport<T>,
    routes: Rc<RefCell<Routes>>,
}

impl<T> Clone for Node<T> {
    fn clone(&self) -> Self {
        Node { t: self.t.clone(), routes: self.routes.clone() }
    }
}

impl<T: Transport + 'static> Node<T> {
    /// Wraps a transport.
    pub fn new(transport: T) -> Self {
        Self::new_shared(SharedTransport::new(transport))
    }

    /// Wraps an already-shared transport (e.g. when a harness keeps its
    /// own handle to read counters after the node is done).
    pub fn new_shared(t: SharedTransport<T>) -> Self {
        Node {
            t,
            routes: Rc::new(RefCell::new(Routes { by_session: BTreeMap::new(), orphans: 0 })),
        }
    }

    /// The underlying shared transport.
    pub fn transport(&self) -> SharedTransport<T> {
        self.t.clone()
    }

    /// Frames received for sessions nobody had open.
    pub fn orphan_frames(&self) -> u64 {
        self.routes.borrow().orphans
    }

    /// Spawns the receive pump; it runs until the runtime is dropped or
    /// the socket fails. On a socket error every open session's channel
    /// is closed, so sessions fail promptly with [`NetError::Closed`]
    /// instead of idling to their deadline.
    ///
    /// Receives are batched: one wakeup drains everything the transport
    /// has ready (up to [`crate::transport::DEFAULT_RECV_BATCH`] frames)
    /// and routes the whole batch under a single borrow, so a busy
    /// multiplexed socket pays per-batch, not per-frame, scheduling
    /// overhead.
    pub fn start_pump(&self) -> rt::JoinHandle<std::io::Result<()>> {
        let t = self.t.clone();
        let routes = self.routes.clone();
        rt::spawn(async move {
            loop {
                let batch = match t.recv_batch(crate::transport::DEFAULT_RECV_BATCH).await {
                    Ok(batch) => batch,
                    Err(e) => {
                        eprintln!("thinair-net: receive pump failed: {e}");
                        routes.borrow_mut().by_session.clear();
                        return Err(e);
                    }
                };
                let mut r = routes.borrow_mut();
                for frame in batch {
                    match r.by_session.get(&frame.session) {
                        Some(tx) => tx.send(frame),
                        None => r.orphans += 1,
                    }
                }
            }
        })
    }

    /// Opens a routing entry for `session`.
    ///
    /// # Panics
    /// Panics when the session is already open on this node.
    pub fn open_session(&self, session: u64) -> Receiver<Frame> {
        let (tx, rx) = channel();
        let prev = self.routes.borrow_mut().by_session.insert(session, tx);
        assert!(prev.is_none(), "session {session} already open");
        rx
    }

    /// Drops the routing entry for `session`.
    pub fn close_session(&self, session: u64) {
        self.routes.borrow_mut().by_session.remove(&session);
    }

    /// Runs one session as the coordinator.
    pub async fn coordinate(
        &self,
        session: u64,
        cfg: SessionConfig,
        seed: u64,
    ) -> Result<SessionOutcome, NetError> {
        let rx = self.open_session(session);
        let result = run_coordinator(self.t.clone(), rx, session, cfg, seed).await;
        self.close_session(session);
        result
    }

    /// Runs one session as a terminal.
    pub async fn participate(
        &self,
        session: u64,
        cfg: SessionConfig,
        seed: u64,
    ) -> Result<SessionOutcome, NetError> {
        let rx = self.open_session(session);
        let result = run_terminal(self.t.clone(), rx, session, cfg, seed).await;
        self.close_session(session);
        result
    }
}
