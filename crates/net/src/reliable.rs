//! Per-peer ACK/retransmit bookkeeping for control frames.
//!
//! Mirrors the semantics of `thinair_core::transport::reliable_message`
//! — a control message is re-sent until every target has acknowledged
//! it, with a bounded attempt budget — transposed to asynchronous real
//! packet I/O: instead of the omniscient "who received this
//! transmission" answer the simulator gives, the sender learns about
//! delivery from [`NetPayload::Ack`] frames and re-sends on a timer.
//!
//! The receive side ([`Dedup`]) acknowledges *every* reliable frame,
//! including duplicates (the previous ACK may have been the lost
//! datagram), and tells the caller whether the frame is fresh.
//!
//! # Wraparound and replay floods
//!
//! Sequence numbers are 32-bit and allocated with `wrapping_add`, so a
//! long-lived session eventually wraps. Freshness therefore cannot be a
//! grow-forever set: [`ReplayWindow`] keeps, per sender, a fixed
//! [`DEDUP_WINDOW`]-wide bitmap anchored at the newest sequence seen
//! (RFC 6479-style). Anything newer advances the window; anything
//! inside it is deduplicated exactly; anything older than the window is
//! *treated as a duplicate* — under a replay flood the attacker can
//! therefore neither grow memory nor resurrect ancient frames. On the
//! send side, [`Reliable`] matches ACKs by exact sequence against its
//! (short-lived) in-flight list, which is wraparound-safe as long as
//! fewer than 2³² frames are in flight at once.

use std::collections::BTreeSet;
use std::io;
use std::time::{Duration, Instant};

use crate::frame::{Frame, NetPayload, FLAG_RELIABLE};
use crate::transport::{SharedTransport, Transport};

/// Width of the per-sender replay window, in sequence numbers.
pub const DEDUP_WINDOW: u32 = 1024;

/// One in-flight reliable frame.
#[derive(Debug)]
struct Entry {
    seq: u32,
    frame: Frame,
    pending: BTreeSet<u8>,
    due: Instant,
    attempts: u32,
    /// When the first copy went out — the anchor for the ACK-RTT
    /// histogram (`net.ack.rtt_us`).
    first_sent: Instant,
}

/// Sender-side reliability state for one session.
pub struct Reliable {
    next_seq: u32,
    entries: Vec<Entry>,
    interval: Duration,
    max_attempts: u32,
}

/// The retransmission budget for some peer ran out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unreachable {
    /// Peers that never acknowledged.
    pub missing: Vec<u8>,
    /// Attempts spent on the frame.
    pub attempts: u32,
}

impl Reliable {
    /// Creates the bookkeeping with the given retransmit `interval` and
    /// per-frame attempt budget.
    pub fn new(interval: Duration, max_attempts: u32) -> Self {
        Self::with_first_seq(interval, max_attempts, 1)
    }

    /// Like [`Reliable::new`] but starting the sequence counter at
    /// `first_seq` — lets tests pin wraparound behavior without sending
    /// 2³² frames.
    pub fn with_first_seq(interval: Duration, max_attempts: u32, first_seq: u32) -> Self {
        Reliable { next_seq: first_seq, entries: Vec::new(), interval, max_attempts }
    }

    /// Allocates the next sequence number (shared by unreliable frames
    /// so that per-sender seqs stay unique within a session). Skips 0
    /// on wraparound: seq 0 is reserved for ACK frames.
    pub fn next_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        if self.next_seq == 0 {
            self.next_seq = 1;
        }
        s
    }

    /// Sends `payload` reliably to `targets`, returning the assigned
    /// sequence number.
    pub fn send<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        session: u64,
        payload: NetPayload,
        targets: &[u8],
    ) -> io::Result<u32> {
        let seq = self.next_seq();
        let frame = Frame { flags: FLAG_RELIABLE, sender: t.local_node(), session, seq, payload };
        for &to in targets {
            t.send_to(to, &frame)?;
        }
        let now = Instant::now();
        self.entries.push(Entry {
            seq,
            frame,
            pending: targets.iter().copied().collect(),
            due: now + self.interval,
            attempts: 1,
            first_sent: now,
        });
        Ok(seq)
    }

    /// Records an ACK from `from` for `seq`.
    pub fn on_ack(&mut self, from: u8, seq: u32) {
        let now = Instant::now();
        self.entries.retain_mut(|e| {
            if e.seq == seq {
                e.pending.remove(&from);
                if e.pending.is_empty() {
                    // Fully acknowledged: settle the frame's telemetry.
                    // RTT is first-send → last-ACK, so a retransmitted
                    // frame's RTT includes the retransmit delay — that
                    // is the latency the protocol actually experienced.
                    let rtt = now.saturating_duration_since(e.first_sent);
                    crate::telemetry::observe("net.ack.rtt_us", rtt.as_micros() as u64);
                    crate::telemetry::observe("net.reliable.attempts", e.attempts as u64);
                }
            }
            !e.pending.is_empty()
        });
    }

    /// Whether `seq` has been acknowledged by every target.
    pub fn acked(&self, seq: u32) -> bool {
        !self.entries.iter().any(|e| e.seq == seq)
    }

    /// Whether every reliable frame has been fully acknowledged.
    pub fn idle(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-sends every due entry to its still-pending peers. Returns an
    /// [`Unreachable`] error once an entry exhausts the attempt budget.
    pub fn tick<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        now: Instant,
    ) -> io::Result<Result<(), Unreachable>> {
        for e in &mut self.entries {
            if now < e.due {
                continue;
            }
            if e.attempts >= self.max_attempts {
                return Ok(Err(Unreachable {
                    missing: e.pending.iter().copied().collect(),
                    attempts: e.attempts,
                }));
            }
            e.attempts += 1;
            e.due = now + self.interval;
            crate::telemetry::counter_add("net.retransmit.frames", 1);
            crate::telemetry::trace_retransmit(
                e.frame.session,
                t.local_node(),
                e.seq as u64,
                e.attempts,
            );
            for &to in e.pending.iter() {
                t.send_to(to, &e.frame)?;
            }
        }
        Ok(Ok(()))
    }
}

/// Wraparound-safe anti-replay window for one sender's sequence stream.
///
/// A fixed [`DEDUP_WINDOW`]-bit bitmap anchored at the newest sequence
/// admitted. [`ReplayWindow::admit`] returns `true` exactly once per
/// fresh in-window sequence; sequences that have fallen behind the
/// window are reported as duplicates (the conservative choice: a replay
/// flood must never re-admit ancient frames). Memory is O(window),
/// independent of how many frames — or forged frames — arrive.
#[derive(Clone, Debug)]
pub struct ReplayWindow {
    /// Newest sequence admitted (the window anchor).
    horizon: u32,
    /// Whether any sequence has been admitted yet.
    started: bool,
    /// One bit per sequence in `(horizon - DEDUP_WINDOW, horizon]`,
    /// indexed by `seq % DEDUP_WINDOW`.
    bits: Vec<u64>,
}

impl Default for ReplayWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplayWindow {
    /// An empty window.
    pub fn new() -> Self {
        ReplayWindow { horizon: 0, started: false, bits: vec![0; (DEDUP_WINDOW as usize) / 64] }
    }

    fn bit(&self, seq: u32) -> bool {
        let slot = (seq % DEDUP_WINDOW) as usize;
        self.bits[slot / 64] >> (slot % 64) & 1 != 0
    }

    fn set(&mut self, seq: u32) {
        let slot = (seq % DEDUP_WINDOW) as usize;
        self.bits[slot / 64] |= 1 << (slot % 64);
    }

    fn clear(&mut self, seq: u32) {
        let slot = (seq % DEDUP_WINDOW) as usize;
        self.bits[slot / 64] &= !(1 << (slot % 64));
    }

    /// Records `seq`; returns `true` when it is fresh (first sighting,
    /// not older than the window).
    pub fn admit(&mut self, seq: u32) -> bool {
        if !self.started {
            self.started = true;
            self.horizon = seq;
            self.set(seq);
            return true;
        }
        let ahead = seq.wrapping_sub(self.horizon);
        if ahead != 0 && ahead < (1 << 31) {
            // Newer than anything seen: slide the window forward,
            // clearing the slots the anchor moves past.
            if ahead >= DEDUP_WINDOW {
                self.bits.fill(0);
            } else {
                for step in 1..=ahead {
                    self.clear(self.horizon.wrapping_add(step));
                }
            }
            self.horizon = seq;
            self.set(seq);
            return true;
        }
        let behind = self.horizon.wrapping_sub(seq);
        if behind >= DEDUP_WINDOW {
            // Fell off the window: conservatively a duplicate.
            return false;
        }
        if self.bit(seq) {
            false
        } else {
            self.set(seq);
            true
        }
    }
}

/// Receive-side duplicate suppression + acknowledgement.
pub struct Dedup {
    seen: Vec<ReplayWindow>,
}

impl Dedup {
    /// State for `n` possible senders.
    pub fn new(n: usize) -> Self {
        Dedup { seen: (0..n).map(|_| ReplayWindow::new()).collect() }
    }

    /// Handles the reliability duties for a received frame: sends the
    /// ACK when the frame is reliable, and returns `true` when the frame
    /// has not been seen before (i.e. the caller should process it).
    pub fn admit<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        frame: &Frame,
    ) -> io::Result<bool> {
        if !frame.reliable() {
            return Ok(true);
        }
        // A session may span fewer nodes than the transport roster; a
        // reliable frame from a node outside this session is ignored
        // (never a panic — the sender field rides the wire).
        if (frame.sender as usize) >= self.seen.len() {
            return Ok(false);
        }
        let ack = Frame {
            flags: 0,
            sender: t.local_node(),
            session: frame.session,
            seq: 0,
            payload: NetPayload::Ack { seq: frame.seq },
        };
        t.send_to(frame.sender, &ack)?;
        Ok(self.seen[frame.sender as usize].admit(frame.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt;
    use crate::transport::{SharedTransport, SimNet};
    use thinair_netsim::IidMedium;

    #[test]
    fn retransmits_until_acked() {
        // Lossless 2-node sim; ack manually.
        let net = SimNet::new(IidMedium::symmetric(3, 0.0, 1), 2);
        let t0 = SharedTransport::new(net.transport(0));
        let t1 = SharedTransport::new(net.transport(1));
        let mut rel = Reliable::new(Duration::from_millis(1), 10);
        let seq = rel.send(&t0, 9, NetPayload::Done, &[1]).unwrap();
        assert!(!rel.acked(seq));
        rt::block_on(async {
            // Let a couple of retransmit ticks fire.
            rt::sleep(Duration::from_millis(3)).await;
            rel.tick(&t0, Instant::now()).unwrap().unwrap();
            let mut dedup = Dedup::new(2);
            // First copy is fresh, the retransmit is a duplicate.
            let f1 = t1.recv().await.unwrap();
            assert!(dedup.admit(&t1, &f1).unwrap());
            let f2 = t1.recv().await.unwrap();
            assert_eq!(f1.seq, f2.seq);
            assert!(!dedup.admit(&t1, &f2).unwrap());
            // Route the (two) acks back.
            let a = t0.recv().await.unwrap();
            if let NetPayload::Ack { seq: s } = a.payload {
                rel.on_ack(a.sender, s);
            }
            assert!(rel.acked(seq));
            assert!(rel.idle());
        });
    }

    #[test]
    fn attempt_budget_reports_unreachable() {
        let net = SimNet::new(IidMedium::symmetric(3, 1.0, 2), 2);
        let t0 = SharedTransport::new(net.transport(0));
        let mut rel = Reliable::new(Duration::from_micros(10), 3);
        rel.send(&t0, 1, NetPayload::Fin, &[1]).unwrap();
        let mut last = Ok(());
        for _ in 0..10 {
            std::thread::sleep(Duration::from_micros(50));
            last = rel.tick(&t0, Instant::now()).unwrap();
            if last.is_err() {
                break;
            }
        }
        let err = last.unwrap_err();
        assert_eq!(err.missing, vec![1]);
        assert!(err.attempts >= 3);
    }
}
