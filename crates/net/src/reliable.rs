//! Per-peer ACK/retransmit bookkeeping for control frames.
//!
//! Mirrors the semantics of `thinair_core::transport::reliable_message`
//! — a control message is re-sent until every target has acknowledged
//! it, with a bounded attempt budget — transposed to asynchronous real
//! packet I/O: instead of the omniscient "who received this
//! transmission" answer the simulator gives, the sender learns about
//! delivery from [`NetPayload::Ack`] frames and re-sends on a timer.
//!
//! The receive side ([`Dedup`]) acknowledges *every* reliable frame,
//! including duplicates (the previous ACK may have been the lost
//! datagram), and tells the caller whether the frame is fresh.

use std::collections::BTreeSet;
use std::io;
use std::time::{Duration, Instant};

use crate::frame::{Frame, NetPayload, FLAG_RELIABLE};
use crate::transport::{SharedTransport, Transport};

/// One in-flight reliable frame.
#[derive(Debug)]
struct Entry {
    seq: u32,
    frame: Frame,
    pending: BTreeSet<u8>,
    due: Instant,
    attempts: u32,
}

/// Sender-side reliability state for one session.
pub struct Reliable {
    next_seq: u32,
    entries: Vec<Entry>,
    interval: Duration,
    max_attempts: u32,
}

/// The retransmission budget for some peer ran out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unreachable {
    /// Peers that never acknowledged.
    pub missing: Vec<u8>,
    /// Attempts spent on the frame.
    pub attempts: u32,
}

impl Reliable {
    /// Creates the bookkeeping with the given retransmit `interval` and
    /// per-frame attempt budget.
    pub fn new(interval: Duration, max_attempts: u32) -> Self {
        Reliable { next_seq: 1, entries: Vec::new(), interval, max_attempts }
    }

    /// Allocates the next sequence number (shared by unreliable frames
    /// so that per-sender seqs stay unique within a session).
    pub fn next_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        s
    }

    /// Sends `payload` reliably to `targets`, returning the assigned
    /// sequence number.
    pub fn send<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        session: u64,
        payload: NetPayload,
        targets: &[u8],
    ) -> io::Result<u32> {
        let seq = self.next_seq();
        let frame = Frame { flags: FLAG_RELIABLE, sender: t.local_node(), session, seq, payload };
        for &to in targets {
            t.send_to(to, &frame)?;
        }
        self.entries.push(Entry {
            seq,
            frame,
            pending: targets.iter().copied().collect(),
            due: Instant::now() + self.interval,
            attempts: 1,
        });
        Ok(seq)
    }

    /// Records an ACK from `from` for `seq`.
    pub fn on_ack(&mut self, from: u8, seq: u32) {
        self.entries.retain_mut(|e| {
            if e.seq == seq {
                e.pending.remove(&from);
            }
            !e.pending.is_empty()
        });
    }

    /// Whether `seq` has been acknowledged by every target.
    pub fn acked(&self, seq: u32) -> bool {
        !self.entries.iter().any(|e| e.seq == seq)
    }

    /// Whether every reliable frame has been fully acknowledged.
    pub fn idle(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-sends every due entry to its still-pending peers. Returns an
    /// [`Unreachable`] error once an entry exhausts the attempt budget.
    pub fn tick<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        now: Instant,
    ) -> io::Result<Result<(), Unreachable>> {
        for e in &mut self.entries {
            if now < e.due {
                continue;
            }
            if e.attempts >= self.max_attempts {
                return Ok(Err(Unreachable {
                    missing: e.pending.iter().copied().collect(),
                    attempts: e.attempts,
                }));
            }
            e.attempts += 1;
            e.due = now + self.interval;
            for &to in e.pending.iter() {
                t.send_to(to, &e.frame)?;
            }
        }
        Ok(Ok(()))
    }
}

/// Receive-side duplicate suppression + acknowledgement.
pub struct Dedup {
    seen: Vec<BTreeSet<u32>>,
}

impl Dedup {
    /// State for `n` possible senders.
    pub fn new(n: usize) -> Self {
        Dedup { seen: vec![BTreeSet::new(); n] }
    }

    /// Handles the reliability duties for a received frame: sends the
    /// ACK when the frame is reliable, and returns `true` when the frame
    /// has not been seen before (i.e. the caller should process it).
    pub fn admit<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        frame: &Frame,
    ) -> io::Result<bool> {
        if !frame.reliable() {
            return Ok(true);
        }
        // A session may span fewer nodes than the transport roster; a
        // reliable frame from a node outside this session is ignored
        // (never a panic — the sender field rides the wire).
        if (frame.sender as usize) >= self.seen.len() {
            return Ok(false);
        }
        let ack = Frame {
            flags: 0,
            sender: t.local_node(),
            session: frame.session,
            seq: 0,
            payload: NetPayload::Ack { seq: frame.seq },
        };
        t.send_to(frame.sender, &ack)?;
        Ok(self.seen[frame.sender as usize].insert(frame.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt;
    use crate::transport::{SharedTransport, SimNet};
    use thinair_netsim::IidMedium;

    #[test]
    fn retransmits_until_acked() {
        // Lossless 2-node sim; ack manually.
        let net = SimNet::new(IidMedium::symmetric(3, 0.0, 1), 2);
        let t0 = SharedTransport::new(net.transport(0));
        let t1 = SharedTransport::new(net.transport(1));
        let mut rel = Reliable::new(Duration::from_millis(1), 10);
        let seq = rel.send(&t0, 9, NetPayload::Done, &[1]).unwrap();
        assert!(!rel.acked(seq));
        rt::block_on(async {
            // Let a couple of retransmit ticks fire.
            rt::sleep(Duration::from_millis(3)).await;
            rel.tick(&t0, Instant::now()).unwrap().unwrap();
            let mut dedup = Dedup::new(2);
            // First copy is fresh, the retransmit is a duplicate.
            let f1 = t1.recv().await.unwrap();
            assert!(dedup.admit(&t1, &f1).unwrap());
            let f2 = t1.recv().await.unwrap();
            assert_eq!(f1.seq, f2.seq);
            assert!(!dedup.admit(&t1, &f2).unwrap());
            // Route the (two) acks back.
            let a = t0.recv().await.unwrap();
            if let NetPayload::Ack { seq: s } = a.payload {
                rel.on_ack(a.sender, s);
            }
            assert!(rel.acked(seq));
            assert!(rel.idle());
        });
    }

    #[test]
    fn attempt_budget_reports_unreachable() {
        let net = SimNet::new(IidMedium::symmetric(3, 1.0, 2), 2);
        let t0 = SharedTransport::new(net.transport(0));
        let mut rel = Reliable::new(Duration::from_micros(10), 3);
        rel.send(&t0, 1, NetPayload::Fin, &[1]).unwrap();
        let mut last = Ok(());
        for _ in 0..10 {
            std::thread::sleep(Duration::from_micros(50));
            last = rel.tick(&t0, Instant::now()).unwrap();
            if last.is_err() {
                break;
            }
        }
        let err = last.unwrap_err();
        assert_eq!(err.missing, vec![1]);
        assert!(err.attempts >= 3);
    }
}
