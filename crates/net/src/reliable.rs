//! Per-peer ACK/retransmit bookkeeping for control frames.
//!
//! Mirrors the semantics of `thinair_core::transport::reliable_message`
//! — a control message is re-sent until every target has acknowledged
//! it, with a bounded attempt budget — transposed to asynchronous real
//! packet I/O: instead of the omniscient "who received this
//! transmission" answer the simulator gives, the sender learns about
//! delivery from [`NetPayload::Ack`] frames and re-sends on a timer.
//!
//! The receive side ([`Dedup`]) acknowledges *every* reliable frame,
//! including duplicates (the previous ACK may have been the lost
//! datagram), and tells the caller whether the frame is fresh.
//!
//! # Wraparound and replay floods
//!
//! Sequence numbers are 32-bit and allocated with `wrapping_add`, so a
//! long-lived session eventually wraps. Freshness therefore cannot be a
//! grow-forever set: [`ReplayWindow`] keeps, per sender, a fixed
//! [`DEDUP_WINDOW`]-wide bitmap anchored at the newest sequence seen
//! (RFC 6479-style). Anything newer advances the window; anything
//! inside it is deduplicated exactly; anything older than the window is
//! *treated as a duplicate* — under a replay flood the attacker can
//! therefore neither grow memory nor resurrect ancient frames. On the
//! send side, [`Reliable`] matches ACKs by exact sequence against its
//! (short-lived) in-flight list, which is wraparound-safe as long as
//! fewer than 2³² frames are in flight at once.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::frame::{Frame, NetPayload, FLAG_RELIABLE};
use crate::transport::{SharedTransport, Transport};

/// Width of the per-sender replay window, in sequence numbers.
pub const DEDUP_WINDOW: u32 = 1024;

/// Largest exponent the backoff schedule applies to the base RTO; the
/// cap clamps the result long before this, it only guards the shift.
const BACKOFF_MAX_SHIFT: u32 = 20;

/// Jitter band of the backoff schedule: each delay is drawn uniformly
/// from `base ± base/JITTER_DIV` (±25%), deterministically keyed by
/// `(seed, peer, seq, attempt)`.
pub const JITTER_DIV: u64 = 4;

/// Starting congestion window of a node's [`FlowBudget`], in unACKed
/// reliable frames. Sized for a node multiplexing hundreds of
/// concurrent sessions — the window is per *node*, not per session.
pub const FLOW_INITIAL_CWND: f64 = 256.0;
/// Multiplicative decrease never shrinks the window below this.
pub const FLOW_MIN_CWND: f64 = 32.0;
/// Additive increase never grows the window beyond this.
pub const FLOW_MAX_CWND: f64 = 8192.0;

/// The jittered exponential-backoff schedule, as a pure function so
/// property tests can pin it: the delay between transmission `attempt`
/// and `attempt + 1` of frame `seq` to `peer`.
///
/// The base is `rto · 2^(attempt-1)` clamped to `cap`; on top rides a
/// uniform ±`base`/[`JITTER_DIV`] jitter drawn from
/// `splitmix64(seed, peer, seq, attempt)` — deterministic, so chaos and
/// soak runs with a pinned seed reproduce the same schedule. With a 2×
/// growth and a ±25% band, successive delays are strictly monotone
/// until the base reaches the cap.
pub fn backoff_delay(
    rto: Duration,
    attempt: u32,
    cap: Duration,
    seed: u64,
    peer: u8,
    seq: u32,
) -> Duration {
    let attempt = attempt.max(1);
    let rto_us = (rto.as_micros() as u64).max(1);
    let cap_us = (cap.as_micros() as u64).max(rto_us);
    let shift = (attempt - 1).min(BACKOFF_MAX_SHIFT);
    let base = rto_us.checked_shl(shift).unwrap_or(u64::MAX).min(cap_us);
    let span = base / JITTER_DIV;
    let key = seed
        ^ (peer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (seq as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (attempt as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    let h = thinair_netsim::erasure::splitmix64(key);
    let jitter = if span == 0 { 0 } else { (h % (2 * span + 1)) as i64 - span as i64 };
    Duration::from_micros((base as i64).saturating_add(jitter).max(1) as u64)
}

/// Per-node AIMD budget over unACKed reliable frames, shared by every
/// session multiplexed over one transport (the handle lives in
/// [`SharedTransport`]). Under overload a saturated link would otherwise
/// compound: more sessions ⇒ more retransmits ⇒ more queueing ⇒ more
/// timeouts. The budget closes the loop — frames ACKed cleanly grow the
/// window additively, retransmit timeouts halve it (at most once per
/// RTO), and session-opening `Start`s defer (admission pacing) while
/// the window is full. Mid-session frames and retransmits are never
/// blocked: a round past admission holds registry slots on every peer,
/// so stalling its frames behind new launches would be a congestion
/// collapse where demand only grows — they charge unconditionally
/// (the window may over-commit) and the pressure throttles launches
/// instead, so running sessions always drain the window back down.
#[derive(Debug)]
pub struct FlowBudget {
    cwnd: f64,
    in_flight: u64,
    last_cut: Option<Instant>,
}

/// The shared handle: one per node, cloned into every session's
/// [`Reliable`] on first use.
pub type SharedFlow = Rc<RefCell<FlowBudget>>;

impl Default for FlowBudget {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowBudget {
    /// A fresh budget at [`FLOW_INITIAL_CWND`].
    pub fn new() -> Self {
        FlowBudget { cwnd: FLOW_INITIAL_CWND, in_flight: 0, last_cut: None }
    }

    /// Current congestion window, in frames.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Reliable frames currently charged against the window.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// The integer window the charge check uses (`cwnd` truncated).
    pub fn window(&self) -> u64 {
        self.cwnd as u64
    }

    /// Charges one frame if the window has room; `false` means the
    /// caller must defer (only session-opening `Start` frames take this
    /// path — see [`FlowBudget::force_charge`]).
    pub fn try_charge(&mut self) -> bool {
        if self.in_flight < self.window() {
            self.in_flight += 1;
            crate::telemetry::gauge_set("net.inflight", self.in_flight);
            true
        } else {
            false
        }
    }

    /// Charges a frame against the window unconditionally — the
    /// in-flight count may exceed the window. Reliable frames of
    /// sessions already past admission use this: deferring them would
    /// starve in-progress rounds behind new launches (open sessions
    /// could never finish while `Start`s kept grabbing freed slots —
    /// a congestion collapse where demand only ever grows). The
    /// over-commit instead back-pressures [`FlowBudget::try_charge`],
    /// throttling session *openings* until running work drains.
    pub fn force_charge(&mut self) {
        self.in_flight += 1;
        crate::telemetry::gauge_set("net.inflight", self.in_flight);
    }

    /// Returns one charged frame to the window (its ACK arrived or its
    /// entry was abandoned).
    pub fn release(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
        crate::telemetry::gauge_set("net.inflight", self.in_flight);
    }

    /// Additive increase: +1 frame per window's worth of clean ACKs.
    pub fn on_clean_ack(&mut self) {
        if self.cwnd < FLOW_MAX_CWND {
            self.cwnd = (self.cwnd + 1.0 / self.cwnd).min(FLOW_MAX_CWND);
            crate::telemetry::counter_add("net.cwnd.increase", 1);
            crate::telemetry::gauge_set("net.cwnd", self.cwnd as u64);
        }
    }

    /// Multiplicative decrease on a retransmit timeout, rate-limited to
    /// one cut per `holdoff` so a burst of simultaneous timeouts (one
    /// loss event) does not collapse the window to the floor.
    ///
    /// A timeout only counts as congestion while the window is at least
    /// half loaded: with the pipe mostly idle, a timeout can only mean
    /// random link loss, and halving a window nobody is filling would
    /// let a lossy-but-uncongested path grind a many-session node down
    /// to the floor.
    pub fn on_loss(&mut self, now: Instant, holdoff: Duration) {
        if self.in_flight * 2 < self.window() {
            return;
        }
        let due = match self.last_cut {
            None => true,
            Some(t) => now.duration_since(t) >= holdoff,
        };
        if due {
            self.last_cut = Some(now);
            self.cwnd = (self.cwnd * 0.5).max(FLOW_MIN_CWND);
            crate::telemetry::counter_add("net.cwnd.cut", 1);
            crate::telemetry::gauge_set("net.cwnd", self.cwnd as u64);
        }
    }
}

/// RFC 6298-style smoothed RTT state for one peer.
#[derive(Clone, Copy, Debug, Default)]
struct PeerRtt {
    srtt_us: u64,
    rttvar_us: u64,
    init: bool,
}

impl PeerRtt {
    fn sample(&mut self, rtt_us: u64) {
        if !self.init {
            self.init = true;
            self.srtt_us = rtt_us;
            self.rttvar_us = rtt_us / 2;
        } else {
            let err = self.srtt_us.abs_diff(rtt_us);
            self.rttvar_us = (3 * self.rttvar_us + err) / 4;
            self.srtt_us = (7 * self.srtt_us + rtt_us) / 8;
        }
    }

    fn rto_us(&self) -> u64 {
        self.srtt_us + 4 * self.rttvar_us.max(1)
    }
}

/// Retransmission policy of one [`Reliable`] instance.
#[derive(Clone, Copy, Debug)]
pub struct RetransmitPolicy {
    /// RTO before any RTT sample exists; also anchors the RTO floor
    /// (`initial_rto / 4`).
    pub initial_rto: Duration,
    /// Ceiling of the adaptive, exponentially backed-off delay.
    pub cap: Duration,
    /// Attempt budget per reliable frame.
    pub max_attempts: u32,
    /// Keys the deterministic jitter (see [`backoff_delay`]).
    pub seed: u64,
}

/// One in-flight reliable frame.
#[derive(Debug)]
struct Entry {
    seq: u32,
    frame: Frame,
    pending: BTreeSet<u8>,
    due: Instant,
    /// Total transmissions — the [`RetransmitPolicy::max_attempts`]
    /// budget and the Karn first-attempt test count these.
    attempts: u32,
    /// Consecutive timeouts since the last forward progress — the
    /// backoff exponent. Unlike `attempts` it *resets* whenever a new
    /// peer acknowledges (RFC 6298 §5.3 re-arms the timer on an ACK of
    /// new data): partial progress proves the path works, so the delay
    /// must not keep compounding toward the stragglers.
    level: u32,
    /// When the first copy went out — the anchor for the ACK-RTT
    /// histogram (`net.ack.rtt_us`).
    first_sent: Instant,
    /// Whether this frame holds a slot in the node's [`FlowBudget`].
    charged: bool,
}

/// Sender-side reliability state for one session.
pub struct Reliable {
    next_seq: u32,
    entries: Vec<Entry>,
    initial_rto: Duration,
    cap: Duration,
    max_attempts: u32,
    seed: u64,
    /// Per-peer smoothed RTT state (peers are dense u8 node ids).
    peers: BTreeMap<u8, PeerRtt>,
    /// The node-wide budget, captured from the transport on first use.
    flow: Option<SharedFlow>,
}

/// The retransmission budget for some peer ran out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unreachable {
    /// Peers that never acknowledged.
    pub missing: Vec<u8>,
    /// Attempts spent on the frame.
    pub attempts: u32,
}

impl Reliable {
    /// Creates the bookkeeping with the given initial retransmit
    /// timeout and per-frame attempt budget (backoff cap 32× the
    /// initial RTO, jitter seed 0).
    pub fn new(initial_rto: Duration, max_attempts: u32) -> Self {
        Self::with_first_seq(initial_rto, max_attempts, 1)
    }

    /// Like [`Reliable::new`] but starting the sequence counter at
    /// `first_seq` — lets tests pin wraparound behavior without sending
    /// 2³² frames.
    pub fn with_first_seq(initial_rto: Duration, max_attempts: u32, first_seq: u32) -> Self {
        let policy = RetransmitPolicy {
            initial_rto,
            cap: initial_rto.saturating_mul(32),
            max_attempts,
            seed: 0,
        };
        Self::with_policy_first_seq(policy, first_seq)
    }

    /// Full-policy constructor (the role state machines use this, with
    /// the session seed keying the jitter).
    pub fn with_policy(policy: RetransmitPolicy) -> Self {
        Self::with_policy_first_seq(policy, 1)
    }

    fn with_policy_first_seq(policy: RetransmitPolicy, first_seq: u32) -> Self {
        Reliable {
            next_seq: first_seq,
            entries: Vec::new(),
            initial_rto: policy.initial_rto,
            cap: policy.cap.max(policy.initial_rto),
            max_attempts: policy.max_attempts,
            seed: policy.seed,
            peers: BTreeMap::new(),
            flow: None,
        }
    }

    /// Allocates the next sequence number (shared by unreliable frames
    /// so that per-sender seqs stay unique within a session). Skips 0
    /// on wraparound: seq 0 is reserved for ACK frames.
    pub fn next_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        if self.next_seq == 0 {
            self.next_seq = 1;
        }
        s
    }

    /// The adaptive RTO toward `peer`: smoothed RTT + 4·RTTVAR, clamped
    /// between `initial_rto / 4` and the backoff cap; `initial_rto`
    /// while no sample exists. `None` in the public accessor means no
    /// RTT sample has been taken yet.
    pub fn rto_estimate_us(&self, peer: u8) -> Option<u64> {
        self.peers.get(&peer).map(|p| p.rto_us())
    }

    fn peer_rto_us(&self, peer: u8) -> u64 {
        let init = (self.initial_rto.as_micros() as u64).max(1);
        let clamp = |rto: u64| rto.clamp((init / 4).max(1), (self.cap.as_micros() as u64).max(1));
        match self.peers.get(&peer) {
            Some(p) => clamp(p.rto_us()),
            // No sample for this peer yet: seed from the slowest peer
            // that *has* been sampled — peers share the medium, so a
            // measured path beats the configured cold-start guess (the
            // same reasoning as TCP's per-destination RTT cache).
            None => self.peers.values().map(|p| clamp(p.rto_us())).max().unwrap_or(init),
        }
    }

    /// The delay until the next transmission of an entry at backoff
    /// `level` (1 = freshly sent or just re-armed by partial progress).
    /// The RTO is the slowest pending peer's (don't spam the
    /// straggler); the jitter is keyed by the lowest pending peer id.
    fn schedule(&self, pending: &BTreeSet<u8>, level: u32, seq: u32) -> Duration {
        let peer = pending.iter().next().copied().unwrap_or(0);
        let rto_us = pending
            .iter()
            .map(|&p| self.peer_rto_us(p))
            .max()
            .unwrap_or_else(|| (self.initial_rto.as_micros() as u64).max(1));
        let d = backoff_delay(Duration::from_micros(rto_us), level, self.cap, self.seed, peer, seq);
        if level > 1 {
            crate::telemetry::counter_add("net.backoff.scheduled", 1);
            crate::telemetry::observe("net.backoff.delay_us", d.as_micros() as u64);
        }
        d
    }

    fn flow<T: Transport>(&mut self, t: &SharedTransport<T>) -> SharedFlow {
        self.flow.get_or_insert_with(|| t.flow()).clone()
    }

    /// Sends `payload` reliably to `targets`, returning the assigned
    /// sequence number. When the node's [`FlowBudget`] is exhausted the
    /// first copy is deferred — [`Reliable::tick`] transmits it as soon
    /// as the window has room (admission pacing, not an error).
    pub fn send<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        session: u64,
        payload: NetPayload,
        targets: &[u8],
    ) -> io::Result<u32> {
        let seq = self.next_seq();
        let frame = Frame { flags: FLAG_RELIABLE, sender: t.local_node(), session, seq, payload };
        let flow = self.flow(t);
        // Only session-*opening* frames contend for the window: a
        // deferred `Start` merely delays a launch, while a deferred
        // mid-session frame (plan chunk, report, fin) would stall a
        // round that already holds registry slots on every peer. Those
        // force-charge — their in-flight pressure throttles further
        // launches instead, so running sessions always drain.
        let charged = if matches!(frame.payload, NetPayload::Start { .. }) {
            flow.borrow_mut().try_charge()
        } else {
            flow.borrow_mut().force_charge();
            true
        };
        let now = crate::rt::now();
        let mut e = Entry {
            seq,
            frame,
            pending: targets.iter().copied().collect(),
            due: now,
            attempts: 0,
            level: 0,
            first_sent: now,
            charged,
        };
        if charged {
            for &to in targets {
                t.send_to(to, &e.frame)?;
            }
            e.attempts = 1;
            e.level = 1;
            e.due = now + self.schedule(&e.pending, 1, seq);
        } else {
            crate::telemetry::counter_add("net.backoff.admit_deferred", 1);
        }
        self.entries.push(e);
        Ok(seq)
    }

    /// Records an ACK from `from` for `seq`.
    pub fn on_ack(&mut self, from: u8, seq: u32) {
        let now = crate::rt::now();
        let Some(i) = self.entries.iter().position(|e| e.seq == seq) else {
            return;
        };
        if !self.entries[i].pending.remove(&from) {
            // Duplicate ACK: no new information, no re-arm.
            return;
        }
        if self.entries[i].attempts == 1 {
            // Karn's algorithm: only a frame ACKed on its first
            // attempt yields an RTT sample — a retransmitted frame's
            // ACK is ambiguous (it may answer any copy) and would
            // poison the estimate with the retransmit delay itself.
            let rtt_us =
                now.saturating_duration_since(self.entries[i].first_sent).as_micros() as u64;
            let p = self.peers.entry(from).or_default();
            p.sample(rtt_us);
            crate::telemetry::observe("net.ack.rtt_us", rtt_us);
            crate::telemetry::observe("net.backoff.rto_us", p.rto_us());
        }
        if !self.entries[i].pending.is_empty() {
            // Partial progress: re-arm the timer at the base RTO
            // (RFC 6298 §5.3) — the backoff exponent must not keep a
            // delay earned by a lost ACK compounding against the peers
            // still pending.
            let delay = self.schedule(&self.entries[i].pending, 1, seq);
            let e = &mut self.entries[i];
            e.level = 1;
            e.due = now + delay;
            return;
        }
        // Fully acknowledged: settle telemetry and the flow budget.
        let mut e = self.entries.swap_remove(i);
        crate::telemetry::observe("net.reliable.attempts", e.attempts.max(1) as u64);
        if let Some(f) = &self.flow {
            let mut f = f.borrow_mut();
            if e.charged {
                e.charged = false;
                f.release();
            }
            if e.attempts == 1 {
                f.on_clean_ack();
            }
        }
    }

    /// Pushes `seq`'s next (re)transmission to at least `until` without
    /// spending an attempt — paced re-admission when a serve daemon
    /// answers `Start` with [`NetPayload::Busy`].
    pub fn defer(&mut self, seq: u32, until: Instant) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            if e.due < until {
                e.due = until;
            }
        }
    }

    /// Whether `seq` has been acknowledged by every target.
    pub fn acked(&self, seq: u32) -> bool {
        !self.entries.iter().any(|e| e.seq == seq)
    }

    /// Whether every reliable frame has been fully acknowledged.
    pub fn idle(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-sends every due entry to its still-pending peers. A timeout
    /// halves the node's shared window (which gates admission of *new*
    /// frames), and budget-deferred first copies transmit as soon as a
    /// slot frees up. Returns an [`Unreachable`] error once an entry
    /// exhausts the attempt budget.
    pub fn tick<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        now: Instant,
    ) -> io::Result<Result<(), Unreachable>> {
        let flow = self.flow(t);
        for i in 0..self.entries.len() {
            if self.entries[i].attempts == 0 {
                // Budget-deferred first copy: transmit once a slot opens.
                if !flow.borrow_mut().try_charge() {
                    continue;
                }
                let e = &mut self.entries[i];
                e.charged = true;
                e.attempts = 1;
                e.level = 1;
                e.first_sent = now;
                for &to in e.pending.iter() {
                    t.send_to(to, &e.frame)?;
                }
                let delay = self.schedule(&self.entries[i].pending, 1, self.entries[i].seq);
                self.entries[i].due = now + delay;
                continue;
            }
            if now < self.entries[i].due {
                continue;
            }
            if self.entries[i].attempts >= self.max_attempts {
                let e = &self.entries[i];
                return Ok(Err(Unreachable {
                    missing: e.pending.iter().copied().collect(),
                    attempts: e.attempts,
                }));
            }
            // A retransmit timeout is the loss signal: multiplicative
            // decrease, rate-limited to one cut per entry RTO. The cut
            // gates *admission* of new frames only — the retransmit
            // itself always proceeds (its exponential backoff is the
            // pacing): blocking retransmits on the window would
            // livelock, since ACKing the frames already charged is the
            // only way in-flight load drains.
            let rto = Duration::from_micros(
                self.entries[i]
                    .pending
                    .iter()
                    .map(|&p| self.peer_rto_us(p))
                    .max()
                    .unwrap_or_else(|| (self.initial_rto.as_micros() as u64).max(1)),
            );
            flow.borrow_mut().on_loss(now, rto);
            let e = &mut self.entries[i];
            e.attempts += 1;
            e.level += 1;
            crate::telemetry::counter_add("net.retransmit.frames", 1);
            crate::telemetry::trace_retransmit(
                e.frame.session,
                t.local_node(),
                e.seq as u64,
                e.attempts,
            );
            for &to in e.pending.iter() {
                t.send_to(to, &e.frame)?;
            }
            let (level, seq) = (self.entries[i].level, self.entries[i].seq);
            let delay = self.schedule(&self.entries[i].pending, level, seq);
            self.entries[i].due = now + delay;
        }
        Ok(Ok(()))
    }
}

impl Drop for Reliable {
    /// Releases any flow-budget slots still held by unACKed entries, so
    /// an aborted session cannot leak window capacity node-wide.
    fn drop(&mut self) {
        if let Some(flow) = &self.flow {
            let mut f = flow.borrow_mut();
            for e in &self.entries {
                if e.charged {
                    f.release();
                }
            }
        }
    }
}

/// Wraparound-safe anti-replay window for one sender's sequence stream.
///
/// A fixed [`DEDUP_WINDOW`]-bit bitmap anchored at the newest sequence
/// admitted. [`ReplayWindow::admit`] returns `true` exactly once per
/// fresh in-window sequence; sequences that have fallen behind the
/// window are reported as duplicates (the conservative choice: a replay
/// flood must never re-admit ancient frames). Memory is O(window),
/// independent of how many frames — or forged frames — arrive.
#[derive(Clone, Debug)]
pub struct ReplayWindow {
    /// Newest sequence admitted (the window anchor).
    horizon: u32,
    /// Whether any sequence has been admitted yet.
    started: bool,
    /// One bit per sequence in `(horizon - DEDUP_WINDOW, horizon]`,
    /// indexed by `seq % DEDUP_WINDOW`.
    bits: Vec<u64>,
}

impl Default for ReplayWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplayWindow {
    /// An empty window.
    pub fn new() -> Self {
        ReplayWindow { horizon: 0, started: false, bits: vec![0; (DEDUP_WINDOW as usize) / 64] }
    }

    fn bit(&self, seq: u32) -> bool {
        let slot = (seq % DEDUP_WINDOW) as usize;
        self.bits[slot / 64] >> (slot % 64) & 1 != 0
    }

    fn set(&mut self, seq: u32) {
        let slot = (seq % DEDUP_WINDOW) as usize;
        self.bits[slot / 64] |= 1 << (slot % 64);
    }

    fn clear(&mut self, seq: u32) {
        let slot = (seq % DEDUP_WINDOW) as usize;
        self.bits[slot / 64] &= !(1 << (slot % 64));
    }

    /// Records `seq`; returns `true` when it is fresh (first sighting,
    /// not older than the window).
    pub fn admit(&mut self, seq: u32) -> bool {
        if !self.started {
            self.started = true;
            self.horizon = seq;
            self.set(seq);
            return true;
        }
        let ahead = seq.wrapping_sub(self.horizon);
        if ahead != 0 && ahead < (1 << 31) {
            // Newer than anything seen: slide the window forward,
            // clearing the slots the anchor moves past.
            if ahead >= DEDUP_WINDOW {
                self.bits.fill(0);
            } else {
                for step in 1..=ahead {
                    self.clear(self.horizon.wrapping_add(step));
                }
            }
            self.horizon = seq;
            self.set(seq);
            return true;
        }
        let behind = self.horizon.wrapping_sub(seq);
        if behind >= DEDUP_WINDOW {
            // Fell off the window: conservatively a duplicate.
            return false;
        }
        if self.bit(seq) {
            false
        } else {
            self.set(seq);
            true
        }
    }
}

/// Receive-side duplicate suppression + acknowledgement.
pub struct Dedup {
    seen: Vec<ReplayWindow>,
}

impl Dedup {
    /// State for `n` possible senders.
    pub fn new(n: usize) -> Self {
        Dedup { seen: (0..n).map(|_| ReplayWindow::new()).collect() }
    }

    /// Handles the reliability duties for a received frame: sends the
    /// ACK when the frame is reliable, and returns `true` when the frame
    /// has not been seen before (i.e. the caller should process it).
    pub fn admit<T: Transport>(
        &mut self,
        t: &SharedTransport<T>,
        frame: &Frame,
    ) -> io::Result<bool> {
        if !frame.reliable() {
            return Ok(true);
        }
        // A session may span fewer nodes than the transport roster; a
        // reliable frame from a node outside this session is ignored
        // (never a panic — the sender field rides the wire).
        if (frame.sender as usize) >= self.seen.len() {
            return Ok(false);
        }
        let ack = Frame {
            flags: 0,
            sender: t.local_node(),
            session: frame.session,
            seq: 0,
            payload: NetPayload::Ack { seq: frame.seq },
        };
        t.send_to(frame.sender, &ack)?;
        Ok(self.seen[frame.sender as usize].admit(frame.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt;
    use crate::transport::{SharedTransport, SimNet};
    use thinair_netsim::IidMedium;

    #[test]
    fn retransmits_until_acked() {
        // Lossless 2-node sim; ack manually.
        let net = SimNet::new(IidMedium::symmetric(3, 0.0, 1), 2);
        let t0 = SharedTransport::new(net.transport(0));
        let t1 = SharedTransport::new(net.transport(1));
        let mut rel = Reliable::new(Duration::from_millis(1), 10);
        let seq = rel.send(&t0, 9, NetPayload::Done, &[1]).unwrap();
        assert!(!rel.acked(seq));
        rt::block_on(async {
            // Let a couple of retransmit ticks fire.
            rt::sleep(Duration::from_millis(3)).await;
            rel.tick(&t0, Instant::now()).unwrap().unwrap();
            let mut dedup = Dedup::new(2);
            // First copy is fresh, the retransmit is a duplicate.
            let f1 = t1.recv().await.unwrap();
            assert!(dedup.admit(&t1, &f1).unwrap());
            let f2 = t1.recv().await.unwrap();
            assert_eq!(f1.seq, f2.seq);
            assert!(!dedup.admit(&t1, &f2).unwrap());
            // Route the (two) acks back.
            let a = t0.recv().await.unwrap();
            if let NetPayload::Ack { seq: s } = a.payload {
                rel.on_ack(a.sender, s);
            }
            assert!(rel.acked(seq));
            assert!(rel.idle());
        });
    }

    #[test]
    fn attempt_budget_reports_unreachable() {
        let net = SimNet::new(IidMedium::symmetric(3, 1.0, 2), 2);
        let t0 = SharedTransport::new(net.transport(0));
        let mut rel = Reliable::new(Duration::from_micros(10), 3);
        rel.send(&t0, 1, NetPayload::Fin, &[1]).unwrap();
        let mut last = Ok(());
        for _ in 0..10 {
            std::thread::sleep(Duration::from_micros(50));
            last = rel.tick(&t0, Instant::now()).unwrap();
            if last.is_err() {
                break;
            }
        }
        let err = last.unwrap_err();
        assert_eq!(err.missing, vec![1]);
        assert!(err.attempts >= 3);
    }
}
