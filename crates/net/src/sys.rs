//! Thin Linux syscall bindings: `epoll`, `eventfd`, `SO_REUSEPORT`.
//!
//! Every `unsafe` block in this crate lives in this module. The rest of
//! the crate (and the workspace) stays `deny(unsafe_code)`; what is
//! exported from here is a small **safe** surface:
//!
//! * [`Epoll`] — an epoll instance: register interest in fd readability,
//!   block in `epoll_wait` until an fd is readable or a timeout passes.
//!   This is what lets the [`crate::rt`] executor sleep until a UDP
//!   datagram actually arrives instead of re-polling sockets on a
//!   100 µs–1 ms timer.
//! * [`EventFd`] — a kernel event counter registered in the epoll set so
//!   *other threads* can interrupt the executor's sleep (the cross-shard
//!   frame-injection path in [`crate::shard`] needs this).
//! * [`bind_reuseport`] — a UDP socket bound with `SO_REUSEPORT`, so N
//!   worker shards can share one daemon address.
//!
//! The bindings are declarations of the libc symbols every Rust binary
//! already links; no new dependency is introduced. On non-Linux targets
//! the same API exists but [`Epoll::new`] / [`EventFd::new`] report
//! `Unsupported` (callers fall back to the timer bridge) and
//! [`bind_reuseport`] degrades to a plain bind.

#![allow(unsafe_code)]

use std::io;
use std::net::UdpSocket;
use std::time::Duration;

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use std::net::SocketAddr;
    use std::os::fd::{AsRawFd, FromRawFd, RawFd};

    // Linux UAPI constants (x86-64 values; identical on every Linux
    // architecture this workspace targets).
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLLIN: u32 = 0x001;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const AF_INET: i32 = 2;
    const SOCK_DGRAM: i32 = 2;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEPORT: i32 = 15;
    const EINTR: i32 = 4;
    const EAGAIN: i32 = 11;

    /// `struct epoll_event`. On x86 the kernel ABI packs it to 12 bytes;
    /// elsewhere it is the natural 16-byte layout.
    #[derive(Clone, Copy)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// `struct sockaddr_in` (16 bytes).
    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, addrlen: u32) -> i32;
    }

    fn last_errno() -> i32 {
        io::Error::last_os_error().raw_os_error().unwrap_or(0)
    }

    /// An epoll instance plus its registration table capacity. Closes
    /// the fd on drop.
    #[derive(Debug)]
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// Creates an epoll instance (`EPOLL_CLOEXEC`).
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes a plain flag word and returns
            // a new fd or -1; no memory is passed.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        /// Registers level-triggered read interest in `fd`; `token` is
        /// returned by [`Epoll::wait`] when the fd is readable.
        pub fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events: EPOLLIN, data: token };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Removes `fd` from the interest set (ignores "not registered").
        pub fn del(&self, fd: RawFd) {
            // SAFETY: kernels >= 2.6.9 accept a null event for DEL, but
            // passing a real one is portable to older ABIs.
            let mut ev = EpollEvent { events: 0, data: 0 };
            let _ = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        /// Blocks until at least one registered fd is readable or
        /// `timeout` passes (`None`: wait indefinitely). Appends the
        /// ready tokens to `out` and returns how many were added.
        /// `EINTR` reads as a zero-event wakeup.
        pub fn wait(&self, timeout: Option<Duration>, out: &mut Vec<u64>) -> io::Result<usize> {
            // Round up: waking *before* the earliest timer deadline
            // would spin (the executor would see nothing due and sleep
            // again for 0 ms).
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().saturating_add(1).min(i32::MAX as u128) as i32,
            };
            let mut events = [EpollEvent { events: 0, data: 0 }; 64];
            // SAFETY: `events` is a valid writable buffer of 64 entries
            // and maxevents matches its length.
            let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), 64, timeout_ms) };
            if n < 0 {
                if last_errno() == EINTR {
                    return Ok(0);
                }
                return Err(io::Error::last_os_error());
            }
            for ev in events.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct by value.
                let token = ev.data;
                out.push(token);
            }
            Ok(n as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `self.fd` is an fd this struct owns exclusively.
            let _ = unsafe { close(self.fd) };
        }
    }

    /// A kernel event counter (`eventfd`), nonblocking. Registered in an
    /// [`Epoll`] set it becomes a cross-thread "wake the sleeper" doorbell:
    /// [`EventFd::signal`] from any thread makes the fd readable, which
    /// pops the sleeping thread out of `epoll_wait`; the woken side
    /// [`EventFd::drain`]s the counter back to zero.
    #[derive(Debug)]
    pub struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        /// Creates a nonblocking eventfd.
        pub fn new() -> io::Result<EventFd> {
            // SAFETY: plain flag arguments; returns a new fd or -1.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EventFd { fd })
        }

        /// The raw fd, for epoll registration.
        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Increments the counter, making the fd readable. Callable from
        /// any thread; a full counter (`EAGAIN`) already means "signaled"
        /// and is not an error.
        pub fn signal(&self) {
            let one: u64 = 1;
            // SAFETY: writes exactly 8 bytes from a live stack value,
            // the only width eventfd accepts.
            let _ = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Resets the counter to zero (consumes all pending signals).
        pub fn drain(&self) {
            let mut buf: u64 = 0;
            loop {
                // SAFETY: reads exactly 8 bytes into a live stack value.
                let n = unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
                if n == 8 {
                    continue; // counter was nonzero; check for a race
                }
                if n < 0 && last_errno() == EINTR {
                    continue;
                }
                break; // EAGAIN (drained) or any other condition
            }
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            // SAFETY: `self.fd` is an fd this struct owns exclusively.
            let _ = unsafe { close(self.fd) };
        }
    }

    /// Binds a UDP socket to `addr` with `SO_REUSEPORT`, so several
    /// sockets (one per worker shard) can share the address. IPv4 only —
    /// everything this workspace binds is `127.0.0.1`/`0.0.0.0`.
    pub fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
        let SocketAddr::V4(v4) = addr else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "bind_reuseport: IPv4 addresses only",
            ));
        };
        // SAFETY: plain arguments; returns a new fd or -1.
        let fd = unsafe { socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // From here on the fd must be closed on every error path; wrap
        // it immediately so drop handles that.
        // SAFETY: `fd` is a fresh, owned datagram socket.
        let sock = unsafe { UdpSocket::from_raw_fd(fd) };
        let on: i32 = 1;
        // SAFETY: passes a 4-byte option value the kernel copies.
        let rc = unsafe { setsockopt(sock.as_raw_fd(), SOL_SOCKET, SO_REUSEPORT, &on, 4) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let sa = SockAddrIn {
            family: AF_INET as u16,
            port_be: v4.port().to_be(),
            addr_be: u32::from_ne_bytes(v4.ip().octets()),
            zero: [0; 8],
        };
        // SAFETY: `sa` is a properly initialized sockaddr_in and the
        // length matches its size.
        let rc = unsafe { bind(sock.as_raw_fd(), &sa, std::mem::size_of::<SockAddrIn>() as u32) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(sock)
    }

    // EAGAIN is referenced for documentation symmetry with drain().
    const _: i32 = EAGAIN;
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;
    use std::net::SocketAddr;

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "epoll is Linux-only")
    }

    /// Stub: epoll is unavailable off Linux; callers fall back to the
    /// adaptive re-poll timer bridge.
    #[derive(Debug)]
    pub struct Epoll {}

    impl Epoll {
        /// Always fails off Linux.
        pub fn new() -> io::Result<Epoll> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: i32, _token: u64) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn del(&self, _fd: i32) {}

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _timeout: Option<Duration>, _out: &mut Vec<u64>) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Stub eventfd; always fails to construct off Linux.
    #[derive(Debug)]
    pub struct EventFd {}

    impl EventFd {
        /// Always fails off Linux.
        pub fn new() -> io::Result<EventFd> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn raw_fd(&self) -> i32 {
            -1
        }

        /// Unreachable (no instance can exist).
        pub fn signal(&self) {}

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {}
    }

    /// Off Linux: a plain bind (no port sharing — multi-worker shards on
    /// one address are a Linux deployment feature).
    pub fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
        UdpSocket::bind(addr)
    }
}

pub use imp::{bind_reuseport, Epoll, EventFd};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_udp_readability() {
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        let ep = Epoll::new().expect("epoll");
        ep.add(b.as_raw_fd(), 7).expect("add");

        // Nothing sent yet: a zero timeout returns no events.
        let mut out = Vec::new();
        let n = ep.wait(Some(Duration::ZERO), &mut out).expect("wait");
        assert_eq!(n, 0);

        a.send_to(b"ping", b.local_addr().expect("addr")).expect("send");
        let n = ep.wait(Some(Duration::from_secs(2)), &mut out).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn eventfd_signals_through_epoll_across_threads() {
        let efd = std::sync::Arc::new(EventFd::new().expect("eventfd"));
        let ep = Epoll::new().expect("epoll");
        ep.add(efd.raw_fd(), 42).expect("add");

        let efd2 = efd.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            efd2.signal();
        });
        let mut out = Vec::new();
        let n = ep.wait(Some(Duration::from_secs(2)), &mut out).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(out, vec![42]);
        efd.drain();
        // Drained: an immediate re-wait sees nothing.
        out.clear();
        let n = ep.wait(Some(Duration::ZERO), &mut out).expect("wait");
        assert_eq!(n, 0);
        t.join().expect("signaler");
    }

    #[test]
    fn reuseport_allows_two_binds_on_one_port() {
        let first = bind_reuseport("127.0.0.1:0".parse().expect("addr")).expect("first");
        let addr = first.local_addr().expect("addr");
        let second = bind_reuseport(addr).expect("second bind on same port");
        assert_eq!(second.local_addr().expect("addr").port(), addr.port());
    }
}
