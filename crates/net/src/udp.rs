//! Nonblocking UDP for the polling runtime.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};

/// A nonblocking UDP socket usable from [`crate::rt`] tasks.
#[derive(Debug)]
pub struct AsyncUdpSocket {
    inner: UdpSocket,
}

impl AsyncUdpSocket {
    /// Binds and switches the socket to nonblocking mode.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let inner = UdpSocket::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(AsyncUdpSocket { inner })
    }

    /// Binds with `SO_REUSEPORT` (see [`crate::sys::bind_reuseport`]):
    /// several sockets — one per worker shard — share one address, all
    /// sending with the same source address so roster validation on the
    /// remote side is indifferent to which shard sent a frame.
    pub fn bind_reuseport(addr: SocketAddr) -> io::Result<Self> {
        let inner = crate::sys::bind_reuseport(addr)?;
        inner.set_nonblocking(true)?;
        Ok(AsyncUdpSocket { inner })
    }

    /// The raw fd, for reactor registration
    /// ([`crate::rt::register_fd_readable`]).
    #[cfg(unix)]
    pub fn raw_fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.inner.as_raw_fd()
    }

    /// Non-unix: no usable fd (`-1` makes reactor registration fail
    /// harmlessly into the timer fallback).
    #[cfg(not(unix))]
    pub fn raw_fd(&self) -> i32 {
        -1
    }

    /// The bound local address (with the OS-assigned port when bound to
    /// port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Sends one datagram. UDP sends don't meaningfully block; a full
    /// socket buffer drops the datagram (reported as `Ok(0)`), which
    /// the retransmission layer absorbs like any other loss —
    /// [`crate::transport::UdpTransport`] counts both that and outright
    /// send errors into its send-error ledger so they never vanish.
    pub fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        match self.inner.send_to(buf, addr) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
            other => other,
        }
    }

    /// Non-blocking receive: `Ok(None)` when no datagram is queued.
    pub fn try_recv_from(&self, buf: &mut [u8]) -> io::Result<Option<(usize, SocketAddr)>> {
        match self.inner.recv_from(buf) {
            Ok(v) => Ok(Some(v)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            // Linux reports ICMP port-unreachable from a previous send
            // as ECONNREFUSED on the next receive; that's not fatal for
            // a broadcast protocol — treat as "nothing received".
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_datagram_round_trip() {
        let a = AsyncUdpSocket::bind("127.0.0.1:0").unwrap();
        let b = AsyncUdpSocket::bind("127.0.0.1:0").unwrap();
        let b_addr = b.local_addr().unwrap();
        a.send_to(b"hello", b_addr).unwrap();
        let mut buf = [0u8; 16];
        // Poll until delivery (loopback is effectively instant).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            if let Some((n, from)) = b.try_recv_from(&mut buf).unwrap() {
                assert_eq!(&buf[..n], b"hello");
                assert_eq!(from, a.local_addr().unwrap());
                break;
            }
            assert!(std::time::Instant::now() < deadline, "datagram never arrived");
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    #[test]
    fn empty_queue_reports_none() {
        let s = AsyncUdpSocket::bind("127.0.0.1:0").unwrap();
        let mut buf = [0u8; 8];
        assert!(s.try_recv_from(&mut buf).unwrap().is_none());
    }
}
