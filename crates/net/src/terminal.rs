//! The asynchronous terminal state machine.
//!
//! The mirror image of [`crate::coordinator`]: acknowledges the start
//! barrier (checking the configuration digest), contributes its share
//! of x-packets (when the schedule rotates transmission), reliably
//! reports its receptions, rebuilds the coordinator's plan from the
//! shared reports plus the announced seed, drinks from the z fountain
//! until its missing y-rows reach full rank, derives the group secret
//! locally, and signals `Done`.
//!
//! Frames arrive in any order — a z-combo can outrun the plan
//! announcement, a peer's report can outrun `Start` — so every handler
//! is phase-independent and out-of-order data is buffered.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use thinair_core::wire::Message;

use crate::frame::{Frame, NetPayload};
use crate::reliable::{Dedup, Reliable, RetransmitPolicy};
use crate::rt;
use crate::rt::chan::Receiver;
use crate::session::{
    accept_report, derive_plan, AbortReason, DataKind, NetError, Reconstructor, SessionConfig,
    SessionOutcome, XState,
};
use crate::transport::{SharedTransport, Transport};

/// Runs one session as terminal `me`. `seed` feeds the terminal's own
/// x payloads (only used when the schedule gives it packets).
///
/// Sessions that cannot complete — deadline passed, a peer's attempt
/// budget exhausted, a configuration or plan mismatch — terminate with
/// a *clean abort*: an `Ok` outcome whose [`SessionOutcome::abort`]
/// names the structured reason. A terminal that derived a secret but
/// never saw `Fin` aborts and **discards** the secret: without the
/// final barrier it cannot know the group converged. `Err` is reserved
/// for infrastructure failures.
pub async fn run_terminal<T: Transport>(
    t: SharedTransport<T>,
    mut rx: Receiver<Frame>,
    session: u64,
    cfg: SessionConfig,
    seed: u64,
) -> Result<SessionOutcome, NetError> {
    let me = t.local_node();
    // Wire-width bounds abort cleanly (mirroring the coordinator): the
    // u16 fields cannot carry this session's parameters.
    if let Err(reason) = cfg.plan_bounds() {
        return Ok(SessionOutcome::aborted(session, me, cfg.n_packets(), reason, None));
    }
    cfg.validate()?;
    assert_ne!(me, cfg.coordinator, "coordinator must run run_coordinator");
    let n = cfg.n_nodes;
    let peers: Vec<u8> = (0..n).filter(|&p| p != me).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Reliable::with_policy(RetransmitPolicy {
        initial_rto: cfg.retransmit,
        cap: cfg.rto_cap,
        max_attempts: cfg.max_attempts,
        seed,
    });
    let mut dedup = Dedup::new(n as usize);

    let mut xs = XState::new(&cfg, session, me);
    let n_packets = xs.n_packets();
    let mut reports: Vec<Option<Vec<u8>>> = vec![None; n as usize];
    let mut announce: Option<(u64, usize, usize)> = None; // (seed, m, l)
    let mut z_buffer: Vec<(Vec<u8>, Vec<u8>)> = Vec::new(); // pre-plan combos
    let mut recon: Option<Reconstructor> = None;
    let mut outcome: Option<SessionOutcome> = None;
    let mut started = false;
    let mut report_at: Option<Instant> = None;
    let mut report_sent = false;
    let mut fin_seen = false;
    let mut linger_until: Option<Instant> = None;

    let deadline = rt::now() + cfg.deadline;
    let tick = cfg.retransmit.min(Duration::from_millis(10));

    let aborted = |reason: AbortReason| {
        crate::telemetry::trace_abort(session, me, reason.kind());
        crate::telemetry::trace_end(session, me, false, 0);
        SessionOutcome::aborted(session, me, n_packets, reason, None)
    };

    let mut cur_phase = phase_name(false, false, false, false);
    let mut phase_entered = rt::now();
    crate::telemetry::trace_session_start(session, me, "terminal");
    crate::telemetry::trace_phase(session, me, cur_phase);

    loop {
        if rt::now() > deadline {
            // A terminal that derived its secret AND saw Fin has a
            // converged round — the deadline firing mid-linger must not
            // retroactively abort it.
            if fin_seen {
                if let Some(out) = outcome.take() {
                    note_complete(session, me, cur_phase, phase_entered, out.l as u32);
                    return Ok(out);
                }
            }
            let phase = phase_name(started, report_sent, announce.is_some(), outcome.is_some());
            return Ok(aborted(AbortReason::Deadline { phase }));
        }

        match rt::timeout(tick, rx.recv()).await {
            Err(rt::Elapsed) => {}
            Ok(None) => return Err(NetError::Closed),
            Ok(Some(frame)) => {
                let fresh = dedup.admit(&t, &frame)?;
                match frame.payload {
                    NetPayload::Ack { seq } => rel.on_ack(frame.sender, seq),
                    NetPayload::Start { digest } if frame.sender == cfg.coordinator => {
                        let want = cfg.digest();
                        if digest != want {
                            return Ok(aborted(AbortReason::ConfigMismatch { got: digest, want }));
                        }
                        if !started {
                            started = true;
                            // Contribute this terminal's x share, if any.
                            xs.broadcast_own(&t, &mut rel, &mut rng)?;
                            report_at = Some(rt::now() + cfg.x_settle);
                        }
                    }
                    NetPayload::Proto(Message::XPacket { .. }) => xs.on_frame(&frame),
                    NetPayload::Proto(Message::ReceptionReport {
                        terminal,
                        n_packets: np,
                        bitmap,
                    }) => {
                        accept_report(
                            &mut reports,
                            n_packets,
                            fresh,
                            frame.sender,
                            terminal,
                            np,
                            bitmap,
                        );
                    }
                    NetPayload::Proto(Message::PlanAnnounce { seed, m, l })
                        if fresh && frame.sender == cfg.coordinator =>
                    {
                        announce = Some((seed, m as usize, l as usize));
                    }
                    NetPayload::Proto(Message::ZPacket { index, coeffs, payload })
                        if frame.sender == cfg.coordinator
                            && !xs.drops(DataKind::Z, index as u64) =>
                    {
                        match recon.as_mut() {
                            Some(r) => {
                                r.offer(&coeffs, &payload);
                            }
                            // The solver can use at most M innovative
                            // combos; cap the pre-plan buffer so a
                            // spoofed z-stream cannot grow it without
                            // bound.
                            None if z_buffer.len() < 2 * cfg.plan_params.max_rows => {
                                z_buffer.push((coeffs, payload))
                            }
                            None => {}
                        }
                    }
                    NetPayload::Fin if frame.sender == cfg.coordinator => {
                        fin_seen = true;
                    }
                    _ => {}
                }
            }
        }

        let now = rt::now();

        // Reception report, once the x phase has settled.
        if let Some(at) = report_at {
            if !report_sent && now >= at {
                let bitmap = xs.report_bitmap();
                reports[me as usize] = Some(bitmap.clone());
                let msg = Message::ReceptionReport {
                    terminal: me,
                    // In range: plan_bounds() aborted on entry otherwise.
                    n_packets: u16::try_from(n_packets).expect("bounded by plan_bounds"),
                    bitmap,
                };
                rel.send(&t, session, NetPayload::Proto(msg), &peers)?;
                report_sent = true;
            }
        }

        // Plan reconstruction, once every report and the announcement
        // are in. The seeded explorer-validation bug
        // (`cfg.bug_premature_plan`) relaxes the gate: it builds the
        // plan as soon as the announcement lands, substituting all-zero
        // bitmaps for reports it has not seen — an ordering bug only a
        // reordered/dropped report schedule can expose.
        let reports_ready =
            reports.iter().all(|r| r.is_some()) || (cfg.bug_premature_plan && announce.is_some());
        if recon.is_none() && outcome.is_none() && report_sent && reports_ready {
            if let Some((plan_seed, m, l)) = announce {
                let flat: Vec<Vec<u8>> = reports
                    .iter()
                    .map(|r| r.clone().unwrap_or_else(|| vec![0u8; n_packets.div_ceil(8)]))
                    .collect();
                let plan = derive_plan(&cfg, &flat, plan_seed)?;
                // The seeded bug also skips the dimension cross-check —
                // the safety net that would otherwise turn its premature
                // plan into a clean PlanMismatch abort.
                if !cfg.bug_premature_plan && (plan.m() != m || plan.l != l) {
                    return Ok(aborted(AbortReason::PlanMismatch));
                }
                if l == 0 {
                    // No secret this round; report completion directly.
                    outcome = Some(SessionOutcome {
                        session,
                        node: me,
                        l: 0,
                        m,
                        n_packets,
                        secret: Vec::new(),
                        abort: None,
                        trace: None,
                    });
                    rel.send(&t, session, NetPayload::Done, &[cfg.coordinator])?;
                } else {
                    let mut r = Reconstructor::new(plan, cfg.payload_len, me, &xs.store);
                    for (coeffs, payload) in z_buffer.drain(..) {
                        r.offer(&coeffs, &payload);
                    }
                    recon = Some(r);
                }
            }
        }

        // Secret derivation, once the fountain has filled the gap.
        if let Some(r) = recon.as_ref() {
            if r.complete() {
                let r = recon.take().expect("checked");
                let (m, l) = (r.plan().m(), r.plan().l);
                let secret = r.secret(me)?;
                outcome = Some(SessionOutcome {
                    session,
                    node: me,
                    l,
                    m,
                    n_packets,
                    secret,
                    abort: None,
                    trace: None,
                });
                rel.send(&t, session, NetPayload::Done, &[cfg.coordinator])?;
            }
        }

        // The terminal's phases are implicit in its flags; diff the
        // derived name once per iteration so spans and the trace follow
        // the same milestones the deadline abort reports.
        let phase_now = phase_name(started, report_sent, announce.is_some(), outcome.is_some());
        if phase_now != cur_phase {
            crate::telemetry::observe(
                crate::telemetry::phase_metric("term", cur_phase),
                phase_entered.elapsed().as_micros() as u64,
            );
            phase_entered = rt::now();
            cur_phase = phase_now;
            crate::telemetry::trace_phase(session, me, cur_phase);
        }

        // After Fin, linger briefly (re-acking Fin retransmissions via
        // `dedup.admit`) so a lost Fin-ack cannot strand the
        // coordinator's fin barrier — the UDP equivalent of TIME_WAIT.
        if fin_seen && outcome.is_some() {
            match linger_until {
                None => linger_until = Some(now + cfg.retransmit * 12),
                Some(until) if now >= until => {
                    let out = outcome.take().expect("outcome set");
                    note_complete(session, me, cur_phase, phase_entered, out.l as u32);
                    return Ok(out);
                }
                Some(_) => {}
            }
        }

        if let Err(u) = rel.tick(&t, rt::now())? {
            // Same convergence guard as the deadline exit: after Fin the
            // round is known converged, so an exhausted attempt budget
            // (e.g. a permanently killed Done-ACK) must not discard the
            // secret.
            if fin_seen {
                if let Some(out) = outcome.take() {
                    note_complete(session, me, cur_phase, phase_entered, out.l as u32);
                    return Ok(out);
                }
            }
            let reason = AbortReason::Unreachable { missing: u.missing, attempts: u.attempts };
            return Ok(aborted(reason));
        }
    }
}

/// Settles telemetry for a completed terminal session: the final
/// phase's span lands in its `phase.term.*` histogram and the trace
/// records the successful end.
fn note_complete(session: u64, me: u8, phase: &'static str, entered: Instant, l: u32) {
    crate::telemetry::observe(
        crate::telemetry::phase_metric("term", phase),
        entered.elapsed().as_micros() as u64,
    );
    crate::telemetry::trace_end(session, me, true, l);
}

fn phase_name(started: bool, report_sent: bool, announced: bool, derived: bool) -> &'static str {
    if !started {
        "await start"
    } else if !report_sent {
        "x settle"
    } else if !announced {
        "await plan"
    } else if !derived {
        "z fountain"
    } else {
        "await fin"
    }
}
