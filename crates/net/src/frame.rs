//! The datagram codec: a versioned, checksummed frame around protocol
//! and runtime-control payloads.
//!
//! Every UDP datagram (and every simulated transmission) carries exactly
//! one frame:
//!
//! ```text
//! magic(2) version(1) flags(1) sender(1) session(8) seq(4) len(4)
//! payload(len) crc32(4)
//! ```
//!
//! Multi-byte fields are big-endian. `session` routes the frame to one
//! of the concurrently multiplexed group sessions; `seq` numbers frames
//! per sender (acked when [`FLAG_RELIABLE`] is set). The payload is
//! either a protocol [`Message`] in its existing `wire` encoding
//! ([`NetPayload::Proto`]) or one of the runtime-control messages that
//! real packet I/O needs and the omniscient simulator never did
//! (start barrier, acks, completion signals).
//!
//! Decoding is fuzz-resistant: any truncated, oversized, corrupt, or
//! unknown input yields a [`FrameError`], never a panic — the UDP port
//! is an open attack surface. The property tests in
//! `crates/net/tests/` fuzz this decoder with random and mutated bytes.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use thinair_core::wire::{Message, WireError};

/// First two bytes of every frame: "tA".
pub const MAGIC: u16 = 0x7441;

/// Current codec version.
pub const VERSION: u8 = 1;

/// Flag bit: receiver must acknowledge this frame by `(sender, seq)`.
pub const FLAG_RELIABLE: u8 = 0x01;

/// Hard cap on the payload length field (also bounds decode memory).
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Fixed header length in bytes (before the payload).
pub const HEADER_LEN: usize = 2 + 1 + 1 + 1 + 8 + 4 + 4;

/// Trailing checksum length in bytes.
pub const TRAILER_LEN: usize = 4;

/// Runtime-level frame payloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetPayload {
    /// A protocol message in its `thinair_core::wire` encoding.
    Proto(Message),
    /// Acknowledges the sender's reliable frame `seq`.
    Ack {
        /// Sequence number being acknowledged.
        seq: u32,
    },
    /// Coordinator → terminals: the session is starting. Carries a
    /// digest of the session configuration so misconfigured nodes fail
    /// fast instead of deriving garbage.
    Start {
        /// [`crate::session::SessionConfig::digest`] of the
        /// coordinator's configuration.
        digest: u64,
    },
    /// Terminal → coordinator: this terminal has derived its secret.
    Done,
    /// Coordinator → terminals: every terminal reported `Done`; the
    /// session is complete.
    Fin,
    /// Daemon → coordinator: the `Start` was seen but admission was
    /// refused (registry at or near capacity). The coordinator should
    /// pause the start barrier for `retry_after_ms` instead of
    /// retransmitting blind — explicit backpressure replacing the old
    /// silent drop.
    Busy {
        /// Suggested re-admission delay, scaled to the daemon's load.
        retry_after_ms: u32,
    },
}

const PTAG_PROTO: u8 = 0x01;
const PTAG_ACK: u8 = 0x02;
const PTAG_START: u8 = 0x03;
const PTAG_DONE: u8 = 0x04;
const PTAG_FIN: u8 = 0x05;
const PTAG_BUSY: u8 = 0x06;

/// One framed datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// [`FLAG_RELIABLE`] et al.
    pub flags: u8,
    /// Node id of the sender (dense, `0..n`).
    pub sender: u8,
    /// Session the frame belongs to.
    pub session: u64,
    /// Per-sender sequence number.
    pub seq: u32,
    /// The payload.
    pub payload: NetPayload,
}

/// Frame decoding failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Input shorter than the declared or minimal length.
    Truncated,
    /// First two bytes are not [`MAGIC`].
    BadMagic,
    /// Unsupported codec version.
    BadVersion(u8),
    /// Payload length field exceeds [`MAX_PAYLOAD`] or the datagram.
    BadLength,
    /// Checksum mismatch (corrupt datagram).
    BadChecksum,
    /// Unknown payload tag.
    UnknownPayload(u8),
    /// The inner protocol message failed to parse.
    Wire(WireError),
    /// Trailing bytes after a structurally complete frame.
    TrailingBytes,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::BadLength => write!(f, "frame length field inconsistent"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::UnknownPayload(t) => write!(f, "unknown payload tag {t:#04x}"),
            FrameError::Wire(e) => write!(f, "inner message: {e}"),
            FrameError::TrailingBytes => write!(f, "trailing bytes after frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// CRC-32 (IEEE 802.3), bitwise implementation with a lazily built
/// table.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

impl NetPayload {
    /// A short human label for traces and counterexample rendering:
    /// the payload kind, with `Proto` resolved to its inner message
    /// variant (`"ReceptionReport"`, `"PlanAnnounce"`, ...).
    pub fn kind_name(&self) -> &'static str {
        match self {
            NetPayload::Proto(msg) => match msg {
                Message::XPacket { .. } => "XPacket",
                Message::ReceptionReport { .. } => "ReceptionReport",
                Message::YAnnounce { .. } => "YAnnounce",
                Message::ZPacket { .. } => "ZPacket",
                Message::SAnnounce { .. } => "SAnnounce",
                Message::PadDelivery { .. } => "PadDelivery",
                Message::PlanAnnounce { .. } => "PlanAnnounce",
                Message::Authenticated { .. } => "Authenticated",
            },
            NetPayload::Ack { .. } => "Ack",
            NetPayload::Start { .. } => "Start",
            NetPayload::Done => "Done",
            NetPayload::Fin => "Fin",
            NetPayload::Busy { .. } => "Busy",
        }
    }

    fn encode_into(&self, b: &mut BytesMut) {
        match self {
            NetPayload::Proto(msg) => {
                b.put_u8(PTAG_PROTO);
                b.put_slice(&msg.encode());
            }
            NetPayload::Ack { seq } => {
                b.put_u8(PTAG_ACK);
                b.put_u32(*seq);
            }
            NetPayload::Start { digest } => {
                b.put_u8(PTAG_START);
                b.put_u64(*digest);
            }
            NetPayload::Done => b.put_u8(PTAG_DONE),
            NetPayload::Fin => b.put_u8(PTAG_FIN),
            NetPayload::Busy { retry_after_ms } => {
                b.put_u8(PTAG_BUSY);
                b.put_u32(*retry_after_ms);
            }
        }
    }

    fn decode(mut buf: &[u8]) -> Result<NetPayload, FrameError> {
        if buf.remaining() < 1 {
            return Err(FrameError::Truncated);
        }
        let tag = buf.get_u8();
        match tag {
            PTAG_PROTO => Ok(NetPayload::Proto(Message::decode(buf)?)),
            PTAG_ACK => {
                if buf.remaining() < 4 {
                    return Err(FrameError::Truncated);
                }
                Ok(NetPayload::Ack { seq: buf.get_u32() })
            }
            PTAG_START => {
                if buf.remaining() < 8 {
                    return Err(FrameError::Truncated);
                }
                Ok(NetPayload::Start { digest: buf.get_u64() })
            }
            PTAG_DONE => Ok(NetPayload::Done),
            PTAG_FIN => Ok(NetPayload::Fin),
            PTAG_BUSY => {
                if buf.remaining() < 4 {
                    return Err(FrameError::Truncated);
                }
                Ok(NetPayload::Busy { retry_after_ms: buf.get_u32() })
            }
            other => Err(FrameError::UnknownPayload(other)),
        }
    }
}

impl Frame {
    /// Serializes the frame into one datagram. Returns the buffer
    /// directly (no trailing copy): `Bytes` derefs to `&[u8]` wherever a
    /// byte slice is needed.
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::new();
        self.payload.encode_into(&mut payload);
        debug_assert!(payload.len() <= MAX_PAYLOAD, "payload over MAX_PAYLOAD");
        let mut b = BytesMut::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
        b.put_u16(MAGIC);
        b.put_u8(VERSION);
        b.put_u8(self.flags);
        b.put_u8(self.sender);
        b.put_u64(self.session);
        b.put_u32(self.seq);
        b.put_u32(payload.len() as u32);
        b.put_slice(&payload);
        let crc = crc32(&b);
        b.put_u32(crc);
        b.freeze()
    }

    /// Size of the encoded frame in bits (for air-time accounting in the
    /// simulated transport).
    pub fn bits(&self) -> u64 {
        (self.encode().len() * 8) as u64
    }

    /// The transmitted-bit ledger class of this frame: x-packets and
    /// z-combos are data plane, ACKs are ACKs, everything else (start
    /// barrier, reports, plan announcements, done/fin) is control.
    pub fn tx_class(&self) -> thinair_netsim::stats::TxClass {
        use thinair_netsim::stats::TxClass;
        match &self.payload {
            NetPayload::Proto(Message::XPacket { .. })
            | NetPayload::Proto(Message::ZPacket { .. }) => TxClass::Data,
            NetPayload::Ack { .. } => TxClass::Ack,
            _ => TxClass::Control,
        }
    }

    /// Parses one datagram. Never panics on any input.
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        if buf.len() < HEADER_LEN + TRAILER_LEN {
            return Err(FrameError::Truncated);
        }
        let mut cur: &[u8] = buf;
        let magic = cur.get_u16();
        if magic != MAGIC {
            return Err(FrameError::BadMagic);
        }
        let version = cur.get_u8();
        if version != VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let flags = cur.get_u8();
        let sender = cur.get_u8();
        let session = cur.get_u64();
        let seq = cur.get_u32();
        let len = cur.get_u32() as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::BadLength);
        }
        match buf.len().cmp(&(HEADER_LEN + len + TRAILER_LEN)) {
            std::cmp::Ordering::Less => return Err(FrameError::Truncated),
            std::cmp::Ordering::Greater => return Err(FrameError::TrailingBytes),
            std::cmp::Ordering::Equal => {}
        }
        let body = &buf[..HEADER_LEN + len];
        let declared = u32::from_be_bytes(
            buf[HEADER_LEN + len..HEADER_LEN + len + 4].try_into().expect("4 bytes"),
        );
        if crc32(body) != declared {
            return Err(FrameError::BadChecksum);
        }
        let payload = NetPayload::decode(&cur[..len])?;
        Ok(Frame { flags, sender, session, seq, payload })
    }

    /// Whether the receiver must acknowledge this frame.
    pub fn reliable(&self) -> bool {
        self.flags & FLAG_RELIABLE != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame {
                flags: 0,
                sender: 2,
                session: 77,
                seq: 9,
                payload: NetPayload::Proto(Message::XPacket {
                    id: 3,
                    owner: 2,
                    payload: vec![1, 2, 3],
                }),
            },
            Frame {
                flags: FLAG_RELIABLE,
                sender: 0,
                session: u64::MAX,
                seq: u32::MAX,
                payload: NetPayload::Start { digest: 0xDEAD_BEEF_CAFE_F00D },
            },
            Frame { flags: 0, sender: 1, session: 0, seq: 0, payload: NetPayload::Ack { seq: 4 } },
            Frame {
                flags: FLAG_RELIABLE,
                sender: 3,
                session: 5,
                seq: 1,
                payload: NetPayload::Done,
            },
            Frame { flags: FLAG_RELIABLE, sender: 0, session: 5, seq: 2, payload: NetPayload::Fin },
            Frame {
                flags: 0,
                sender: 1,
                session: 5,
                seq: 0,
                payload: NetPayload::Busy { retry_after_ms: 250 },
            },
        ]
    }

    #[test]
    fn round_trip_all_payload_kinds() {
        for f in sample_frames() {
            let enc = f.encode();
            assert_eq!(Frame::decode(&enc).unwrap(), f, "frame {f:?}");
            assert_eq!(f.bits(), (enc.len() * 8) as u64);
        }
    }

    #[test]
    fn truncations_never_panic() {
        for f in sample_frames() {
            let enc = f.encode();
            for cut in 0..enc.len() {
                assert!(Frame::decode(&enc[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn single_byte_corruption_is_detected() {
        let f = &sample_frames()[0];
        let enc = f.encode();
        for i in 0..enc.len() {
            let mut bad = enc.to_vec();
            bad[i] ^= 0x40;
            // Either an error, or (impossible for CRC-protected frames)
            // the identical frame back.
            match Frame::decode(&bad) {
                Err(_) => {}
                Ok(g) => assert_eq!(&g, f, "corruption at byte {i} silently accepted"),
            }
        }
    }

    #[test]
    fn rejects_wrong_magic_version_and_trailing() {
        let f = &sample_frames()[2];
        let enc = f.encode();
        let mut wrong_magic = enc.to_vec();
        wrong_magic[0] = 0;
        assert_eq!(Frame::decode(&wrong_magic), Err(FrameError::BadMagic));
        let mut wrong_ver = enc.to_vec();
        wrong_ver[2] = 9;
        assert_eq!(Frame::decode(&wrong_ver), Err(FrameError::BadVersion(9)));
        let mut trailing = enc.to_vec();
        trailing.push(0);
        assert_eq!(Frame::decode(&trailing), Err(FrameError::TrailingBytes));
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" -> 0xCBF43926 (the standard check value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
