//! Multi-core sharded serve: session-id-hash dispatch across worker
//! runtimes.
//!
//! One [`crate::serve::Server`] on one thread tops out on a single
//! core. This module scales the daemon *horizontally on one address*:
//! N worker threads, each with its own [`crate::rt`] executor (and
//! epoll reactor), its own `SO_REUSEPORT` socket, its own
//! [`crate::serve::SessionRegistry`] and
//! [`crate::transport::SharedTransport`] + flow budget — **no shared
//! mutable protocol state between shards**.
//!
//! # Dispatch rule
//!
//! A session lives on shard [`shard_of`]`(session_id, workers)` —
//! a splitmix64 hash, so consecutive ids spread uniformly. The rule is
//! per-process: every shard of one daemon agrees, and nothing
//! cross-node depends on it (each node shards its own traffic).
//!
//! The kernel's `SO_REUSEPORT` steering hashes the *4-tuple*, so every
//! datagram from one peer socket lands on **one** of our sockets — the
//! kernel cannot dispatch by session id. The receiving shard therefore
//! decodes each frame and forwards the ones it does not own to the
//! owning sibling over an mpsc injection queue, ringing the sibling's
//! waker (which interrupts its `epoll_wait` via the runtime's eventfd
//! doorbell). Sends need no such hop: all shard sockets share the
//! bound source address, so a frame sent from any shard passes the
//! remote roster's source-address check identically.
//!
//! # Per-shard state & admission alignment
//!
//! Admission caps, the spent-session window, and the FIFO re-admission
//! queue are all per-shard (each shard gets
//! `max_sessions / workers`, rounded up). The cross-daemon FIFO
//! alignment argument from [`crate::serve`] survives sharding because
//! the shard function is identical on sibling daemons: the same
//! session ids map to the same shard index everywhere, so shard *k* of
//! every daemon sees the same Start sub-stream in near-identical order
//! and re-admits in the same order.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use crate::frame::Frame;
use crate::rt;
use crate::serve::{ServeLimits, ServeStats, Server};
use crate::session::{SessionConfig, SessionOutcome};
use crate::transport::{SharedTransport, Transport, UdpTransport};
use crate::udp::AsyncUdpSocket;

/// Maps a session id to its owning worker shard. Deterministic per
/// process — every shard of one daemon agrees, which is all the
/// dispatch rule needs (no cross-node agreement is required: each node
/// shards its own traffic independently).
pub fn shard_of(session: u64, workers: usize) -> usize {
    debug_assert!(workers > 0);
    // splitmix64 finalizer: full-avalanche, so consecutive session ids
    // spread uniformly across shards.
    let mut z = session.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z = z ^ (z >> 31);
    (z % workers as u64) as usize
}

/// A sibling shard's frame-injection handle: enqueue a frame it owns,
/// then wake its pump (the wake crosses threads — the target's ready
/// queue is mutex-guarded and rings its eventfd doorbell if the target
/// executor is parked in `epoll_wait`).
struct ShardInjector {
    tx: mpsc::Sender<Frame>,
    wake: Arc<Mutex<Option<Waker>>>,
}

impl ShardInjector {
    fn push(&self, frame: Frame) {
        // A closed queue means the sibling already shut down; the frame
        // is indistinguishable from one lost on the wire, which the
        // protocol absorbs.
        if self.tx.send(frame).is_err() {
            return;
        }
        let waker = self.wake.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// One shard's transport: a `SO_REUSEPORT` UDP socket plus the
/// cross-shard frame-forwarding fabric. Frames for sessions this shard
/// does not own are handed to the owning sibling; frames injected by
/// siblings surface here ahead of the socket.
pub struct ShardTransport {
    udp: UdpTransport,
    shard: usize,
    workers: usize,
    rx: mpsc::Receiver<Frame>,
    /// Injection handles indexed by shard (`None` at our own index).
    siblings: Vec<Option<ShardInjector>>,
    /// Our own wake slot, registered on every pending poll so siblings
    /// can interrupt our executor.
    wake: Arc<Mutex<Option<Waker>>>,
    /// Frames received on our socket but owned (and handed to) another
    /// shard.
    forwarded: u64,
    /// Frames a sibling handed to us.
    injected: u64,
}

impl ShardTransport {
    /// This transport's shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of shards in the group.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The bound local address (all shards in a group share it).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.udp.local_addr()
    }

    /// Frames received here but owned by (and forwarded to) a sibling.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Frames a sibling forwarded to us.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    fn update_wake(&self, cx: &Context<'_>) {
        let mut slot = self.wake.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match slot.as_ref() {
            Some(w) if w.will_wake(cx.waker()) => {}
            _ => *slot = Some(cx.waker().clone()),
        }
    }
}

impl Transport for ShardTransport {
    fn local_node(&self) -> u8 {
        self.udp.local_node()
    }

    fn node_count(&self) -> usize {
        self.udp.node_count()
    }

    fn send_to(&mut self, to: u8, frame: &Frame) -> io::Result<()> {
        self.udp.send_to(to, frame)
    }

    fn broadcast(&mut self, frame: &Frame) -> io::Result<()> {
        self.udp.broadcast(frame)
    }

    fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<Frame>> {
        loop {
            // Sibling-injected frames first: they were already decoded,
            // validated, and waited once on another shard's queue.
            if let Ok(frame) = self.rx.try_recv() {
                self.injected += 1;
                crate::telemetry::counter_add("net.shard.injected", 1);
                return Poll::Ready(Ok(frame));
            }
            // Arm the cross-shard wake slot before the final queue check
            // below, so an injection racing this poll either lands in
            // the queue in time or finds a waker to ring.
            self.update_wake(cx);
            match self.udp.poll_recv(cx) {
                Poll::Ready(Ok(frame)) => {
                    let owner = shard_of(frame.session, self.workers);
                    if owner == self.shard {
                        return Poll::Ready(Ok(frame));
                    }
                    self.forwarded += 1;
                    crate::telemetry::counter_add("net.shard.forwarded", 1);
                    if let Some(sib) = &self.siblings[owner] {
                        sib.push(frame);
                    }
                }
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => {
                    // Close the race window between the try_recv above
                    // and the wake-slot update: an injection in that
                    // window saw no waker, but we can still see the
                    // frame.
                    if let Ok(frame) = self.rx.try_recv() {
                        self.injected += 1;
                        crate::telemetry::counter_add("net.shard.injected", 1);
                        return Poll::Ready(Ok(frame));
                    }
                    return Poll::Pending;
                }
            }
        }
    }

    fn invalid_frames(&self) -> u64 {
        self.udp.invalid_frames()
    }

    fn send_errors(&self) -> u64 {
        self.udp.send_errors()
    }
}

/// Binds `workers` sockets sharing one address via `SO_REUSEPORT`.
/// With `bind` on port 0 the OS picks the port once (from the first
/// socket) and the rest join it. A single worker binds one plain
/// socket — no kernel port sharing, no forwarding fabric needed.
pub fn bind_shard_sockets(bind: SocketAddr, workers: usize) -> io::Result<Vec<AsyncUdpSocket>> {
    assert!(workers > 0, "at least one shard");
    if workers == 1 {
        return Ok(vec![AsyncUdpSocket::bind(bind)?]);
    }
    let first = AsyncUdpSocket::bind_reuseport(bind)?;
    let addr = first.local_addr()?;
    let mut sockets = vec![first];
    for _ in 1..workers {
        sockets.push(AsyncUdpSocket::bind_reuseport(addr)?);
    }
    Ok(sockets)
}

/// Wires `sockets` (one per shard, typically from
/// [`bind_shard_sockets`]) into a group of [`ShardTransport`]s with
/// the cross-shard forwarding fabric between them. Each transport is
/// `Send` — move it to its worker thread and run a
/// [`crate::serve::Server`] (or any other role) over it.
pub fn shard_group(
    sockets: Vec<AsyncUdpSocket>,
    peers: Vec<SocketAddr>,
    node: u8,
) -> Vec<ShardTransport> {
    let workers = sockets.len();
    let mut txs = Vec::with_capacity(workers);
    let mut rxs = Vec::with_capacity(workers);
    let mut wakes = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
        wakes.push(Arc::new(Mutex::new(None::<Waker>)));
    }
    sockets
        .into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(i, (sock, rx))| {
            let siblings = (0..workers)
                .map(|j| {
                    (j != i).then(|| ShardInjector { tx: txs[j].clone(), wake: wakes[j].clone() })
                })
                .collect();
            ShardTransport {
                udp: UdpTransport::new(sock, peers.clone(), node),
                shard: i,
                workers,
                rx,
                siblings,
                wake: wakes[i].clone(),
                forwarded: 0,
                injected: 0,
            }
        })
        .collect()
}

/// What one shard worker did over its lifetime (returned by
/// [`run_sharded_serve`], one per shard).
#[derive(Debug)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The shard's registry counters. Each admitted session is counted
    /// on exactly one shard (the owner), so summing buckets across
    /// reports partitions the daemon totals.
    pub stats: ServeStats,
    /// Outcomes of sessions served on this shard (empty unless
    /// `collect_outcomes`).
    pub outcomes: Vec<SessionOutcome>,
    /// The worker thread's telemetry registry at exit (includes
    /// `net.shard.forwarded` / `net.shard.injected`).
    pub snapshot: crate::telemetry::Snapshot,
    /// The worker runtime's executor counters at exit.
    pub rt_metrics: rt::Metrics,
    /// Socket sends on this shard that failed or were dropped.
    pub send_errors: u64,
}

/// Per-outcome callback invoked on the worker thread as each session
/// terminates, as `(shard, outcome)`.
pub type OutcomeHook = Arc<dyn Fn(usize, &SessionOutcome) + Send + Sync>;

/// Options for [`run_sharded_serve`].
#[derive(Clone)]
pub struct ShardedServeOptions {
    /// Session configuration every admitted round must match.
    pub cfg: SessionConfig,
    /// Per-session local-randomness seed (same meaning as
    /// [`Server::new`]; identical across shards — sessions are
    /// disjoint, so seeds don't collide).
    pub seed: u64,
    /// Daemon-total limits; `max_sessions` splits across shards
    /// (rounded up).
    pub limits: ServeLimits,
    /// Keep every session outcome in the [`ShardReport`] (benches and
    /// tests audit them; a long-lived daemon should leave this off).
    pub collect_outcomes: bool,
    /// Invoked on the worker thread as each session terminates
    /// (`(shard, outcome)`): the CLI's outcome printer.
    pub on_outcome: Option<OutcomeHook>,
    /// Enable per-thread telemetry timing histograms in each worker.
    pub timing: bool,
}

/// Runs one serve daemon sharded across `sockets.len()` worker
/// threads, blocking until `stop` is set (each worker notices within
/// ~25 ms, drains, and reports). Returns one [`ShardReport`] per
/// shard, index-aligned.
///
/// # Panics
/// Panics if a worker thread panics (the panic propagates).
pub fn run_sharded_serve(
    sockets: Vec<AsyncUdpSocket>,
    peers: Vec<SocketAddr>,
    node: u8,
    opts: ShardedServeOptions,
    stop: Arc<AtomicBool>,
) -> io::Result<Vec<ShardReport>> {
    let workers = sockets.len();
    let per_shard = ServeLimits {
        max_sessions: opts.limits.max_sessions.div_ceil(workers).max(1),
        ..opts.limits
    };
    let transports = shard_group(sockets, peers, node);
    let mut reports: Vec<io::Result<ShardReport>> = std::thread::scope(|s| {
        let handles: Vec<_> = transports
            .into_iter()
            .map(|t| {
                let stop = stop.clone();
                let opts = opts.clone();
                s.spawn(move || shard_worker(t, opts, per_shard, stop))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(report) => report,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(workers);
    for r in reports.drain(..) {
        out.push(r?);
    }
    Ok(out)
}

/// One worker: its own executor, reactor, registry, flow budget.
fn shard_worker(
    t: ShardTransport,
    opts: ShardedServeOptions,
    limits: ServeLimits,
    stop: Arc<AtomicBool>,
) -> io::Result<ShardReport> {
    let shard = t.shard();
    crate::telemetry::set_timing(opts.timing);
    rt::block_on(async move {
        let shared = SharedTransport::new(t);
        // The server consumes the transport handle; keep a tap for the
        // post-run send-error count.
        let tap = shared.clone();
        let mut server = Server::new(shared, opts.cfg.clone(), opts.seed, limits);
        let handle = server.handle();
        let mut outcomes_rx = server.outcomes();
        let stop2 = stop.clone();
        let stopper = rt::spawn(async move {
            while !stop2.load(Ordering::Relaxed) {
                rt::sleep(Duration::from_millis(25)).await;
            }
            handle.stop();
        });
        let run = rt::spawn(async move { server.run().await });
        // Live outcome drain: keeps the channel bounded in practice and
        // feeds the CLI printer while the daemon runs.
        let mut outcomes = Vec::new();
        loop {
            match rt::timeout(Duration::from_millis(100), outcomes_rx.recv()).await {
                Ok(Some(o)) => {
                    if let Some(cb) = &opts.on_outcome {
                        cb(shard, &o);
                    }
                    if opts.collect_outcomes {
                        outcomes.push(o);
                    }
                }
                Ok(None) => break,
                Err(rt::Elapsed) => {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
            }
        }
        let stats = run.await?;
        stopper.await;
        // Sessions that finished in the shutdown window still queued
        // their outcomes; collect them before tearing down.
        while let Some(o) = outcomes_rx.try_recv() {
            if let Some(cb) = &opts.on_outcome {
                cb(shard, &o);
            }
            if opts.collect_outcomes {
                outcomes.push(o);
            }
        }
        Ok(ShardReport {
            shard,
            stats,
            outcomes,
            snapshot: crate::telemetry::snapshot(),
            rt_metrics: rt::metrics(),
            send_errors: tap.send_errors(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for workers in 1..=8 {
            for session in 0..1000u64 {
                let a = shard_of(session, workers);
                assert_eq!(a, shard_of(session, workers));
                assert!(a < workers);
            }
        }
    }

    #[test]
    fn shard_of_spreads_consecutive_ids() {
        let workers = 4;
        let mut buckets = vec![0u32; workers];
        for session in 0..4000u64 {
            buckets[shard_of(session, workers)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            // Uniform would be 1000 per bucket; allow wide slack.
            assert!((700..=1300).contains(&b), "bucket {i} holds {b} of 4000");
        }
    }

    #[test]
    fn group_sockets_share_one_port() {
        let sockets =
            bind_shard_sockets("127.0.0.1:0".parse().expect("addr"), 3).expect("bind group");
        let port = sockets[0].local_addr().expect("addr").port();
        for s in &sockets[1..] {
            assert_eq!(s.local_addr().expect("addr").port(), port);
        }
    }
}
