//! The [`Transport`] abstraction: one trait, two worlds.
//!
//! The coordinator and terminal state machines in this crate are generic
//! over `Transport`, so the *identical* code drives
//!
//! * [`UdpTransport`] — real sockets: broadcast is a unicast fan-out to
//!   the peer roster (loopback and most WANs have no usable broadcast),
//!   and the only losses are the network's own plus the configured
//!   receiver-side erasure injection ([`crate::session`]);
//! * [`SimTransport`] — an adapter over [`thinair_netsim::Medium`]: one
//!   `broadcast` is one `Medium::transmit` (one airtime charge, one
//!   erasure pattern), so the async protocol runs against the same
//!   physically plausible packet loss the synchronous reproduction uses,
//!   with exact transmitted-bit accounting.
//!
//! Frames that fail to decode are dropped at this layer (counted, not
//! propagated): a malformed datagram must never wedge a session.
//!
//! # Wakeups
//!
//! Both transports integrate with the waker-based executor in
//! [`crate::rt`]: a simulated delivery wakes exactly the receiving
//! node's pump, and the UDP transport — which has no readiness
//! notification without a reactor — bridges the gap by registering a
//! short re-poll timer whose interval backs off adaptively while the
//! socket is quiet. Idle nodes therefore cost (nearly) zero CPU.
//!
//! # Send errors
//!
//! A UDP send can fail (full socket buffer, transient network error).
//! The session hot path must neither crash on those — the
//! retransmission layer absorbs them like any other loss — nor let them
//! vanish: [`UdpTransport`] counts every failed or dropped send into a
//! [`TxStats`] send-error ledger, surfaced through
//! [`Transport::send_errors`] and, per session, in
//! [`crate::session::SessionTrace`].

use std::cell::RefCell;
use std::future::Future;
use std::io;
use std::net::SocketAddr;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use thinair_netsim::{FaultPlan, Medium, StepQueue, TxStats};

use crate::chaos::{ChaosState, FaultStats};
use crate::frame::{Frame, MAX_PAYLOAD};
use crate::rt;
use crate::udp::AsyncUdpSocket;

/// Most frames a single [`SharedTransport::recv_batch`] returns — bounds
/// the latency one pump pass can add for other tasks.
pub const DEFAULT_RECV_BATCH: usize = 256;

/// A frame-level packet interface for one node.
pub trait Transport {
    /// This node's dense id.
    fn local_node(&self) -> u8;

    /// Number of nodes in the roster.
    fn node_count(&self) -> usize;

    /// Sends a frame to one peer.
    fn send_to(&mut self, to: u8, frame: &Frame) -> io::Result<()>;

    /// Sends a frame to every peer (default: unicast fan-out).
    fn broadcast(&mut self, frame: &Frame) -> io::Result<()> {
        // Iterate in usize: `node_count() as u8` would wrap to 0 on a
        // full 256-node roster and silently broadcast to nobody.
        let me = self.local_node() as usize;
        for peer in 0..self.node_count() {
            if peer != me {
                self.send_to(peer as u8, frame)?;
            }
        }
        Ok(())
    }

    /// Polls for the next valid frame addressed to this node. On
    /// `Pending` the implementation must arrange a wakeup (waker
    /// registration or a re-poll timer).
    fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<Frame>>;

    /// Drains every frame currently deliverable into `out` (up to
    /// `max`), so a busy pump pays one poll per *batch* instead of one
    /// per frame. Returns the number appended; `Pending` only when
    /// nothing was ready.
    fn poll_recv_batch(
        &mut self,
        cx: &mut Context<'_>,
        out: &mut Vec<Frame>,
        max: usize,
    ) -> Poll<io::Result<usize>> {
        let mut n = 0;
        while n < max {
            match self.poll_recv(cx) {
                Poll::Ready(Ok(frame)) => {
                    out.push(frame);
                    n += 1;
                }
                Poll::Ready(Err(e)) => {
                    return if n > 0 { Poll::Ready(Ok(n)) } else { Poll::Ready(Err(e)) };
                }
                Poll::Pending => break,
            }
        }
        if n > 0 {
            Poll::Ready(Ok(n))
        } else {
            Poll::Pending
        }
    }

    /// Datagrams dropped because they failed frame validation.
    fn invalid_frames(&self) -> u64;

    /// Sends that failed or were dropped at the socket (0 where sends
    /// cannot fail, e.g. the simulator).
    fn send_errors(&self) -> u64 {
        0
    }
}

/// Shared handle so the receive pump and many session tasks can use one
/// transport (single-threaded runtime ⇒ `Rc<RefCell>`). Also carries
/// the node's [`FlowBudget`]: every session cloned off one transport
/// shares one AIMD window over its unACKed reliable frames.
pub struct SharedTransport<T> {
    inner: Rc<RefCell<T>>,
    flow: crate::reliable::SharedFlow,
}

impl<T> Clone for SharedTransport<T> {
    fn clone(&self) -> Self {
        SharedTransport { inner: self.inner.clone(), flow: self.flow.clone() }
    }
}

impl<T: Transport> SharedTransport<T> {
    /// Wraps a transport (with a fresh node-wide flow budget).
    pub fn new(t: T) -> Self {
        SharedTransport {
            inner: Rc::new(RefCell::new(t)),
            flow: Rc::new(RefCell::new(crate::reliable::FlowBudget::new())),
        }
    }

    /// The node-wide AIMD in-flight budget (shared across sessions).
    pub fn flow(&self) -> crate::reliable::SharedFlow {
        self.flow.clone()
    }

    /// This node's dense id.
    pub fn local_node(&self) -> u8 {
        self.inner.borrow().local_node()
    }

    /// Number of nodes in the roster.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().node_count()
    }

    /// Sends a frame to one peer.
    pub fn send_to(&self, to: u8, frame: &Frame) -> io::Result<()> {
        self.inner.borrow_mut().send_to(to, frame)
    }

    /// Sends a frame to every peer.
    pub fn broadcast(&self, frame: &Frame) -> io::Result<()> {
        self.inner.borrow_mut().broadcast(frame)
    }

    /// Datagrams dropped by frame validation.
    pub fn invalid_frames(&self) -> u64 {
        self.inner.borrow().invalid_frames()
    }

    /// Sends that failed or were dropped at the socket so far.
    pub fn send_errors(&self) -> u64 {
        self.inner.borrow().send_errors()
    }

    /// Borrows the inner transport (e.g. to read sim-side statistics).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.inner.borrow())
    }

    /// The next valid incoming frame.
    pub fn recv(&self) -> RecvFrame<T> {
        RecvFrame { t: self.inner.clone() }
    }

    /// Every frame deliverable right now (at most `max`); completes with
    /// at least one frame. The batched shape the serve pump uses: one
    /// wakeup drains the whole socket backlog.
    pub fn recv_batch(&self, max: usize) -> RecvBatch<T> {
        RecvBatch { t: self.inner.clone(), max }
    }
}

/// Future returned by [`SharedTransport::recv`]; `Unpin`.
pub struct RecvFrame<T> {
    t: Rc<RefCell<T>>,
}

impl<T: Transport> Future for RecvFrame<T> {
    type Output = io::Result<Frame>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.t.borrow_mut().poll_recv(cx)
    }
}

/// Future returned by [`SharedTransport::recv_batch`]; `Unpin`.
pub struct RecvBatch<T> {
    t: Rc<RefCell<T>>,
    max: usize,
}

impl<T: Transport> Future for RecvBatch<T> {
    type Output = io::Result<Vec<Frame>>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let max = self.max;
        let mut out = Vec::new();
        match self.t.borrow_mut().poll_recv_batch(cx, &mut out, max) {
            Poll::Ready(Ok(_)) => {
                // The one choke point every batched drain passes
                // through: the drain-size distribution says whether the
                // pump amortizes (deep batches) or thrashes (size-1).
                crate::telemetry::observe("net.rx.batch", out.len() as u64);
                Poll::Ready(Ok(out))
            }
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

/// Ceiling of the UDP re-poll back-off: a quiet socket is still checked
/// this often, so first-frame latency after an idle spell is bounded.
const UDP_POLL_MAX: Duration = Duration::from_millis(1);

/// Real-socket transport: one UDP socket, a static peer roster indexed
/// by node id.
///
/// Keeps a [`TxStats`] ledger mirroring the simulator's accounting:
/// transmitted bits by class (data / control / ack, keyed off the frame
/// payload) plus the send-error counters — every datagram the socket
/// refused or dropped is charged to the *destination* node, so a flaky
/// peer link shows up in the ledger instead of vanishing.
pub struct UdpTransport {
    socket: AsyncUdpSocket,
    peers: Vec<SocketAddr>,
    node: u8,
    invalid: u64,
    recv_buf: Box<[u8]>,
    stats: TxStats,
    /// Adaptive re-poll interval (socket readiness bridge): reset to
    /// [`rt::TICK`] whenever a datagram arrives, doubled up to
    /// [`UDP_POLL_MAX`] while the socket stays quiet.
    poll_interval: Duration,
    /// Deadline of the currently armed re-poll timer, if any. At most
    /// one timer chain stays armed per transport: arming a fresh one on
    /// *every* `Pending` would let each spurious wake (e.g. a stale
    /// `timeout` entry) spawn another self-sustaining chain, compounding
    /// the poll rate over a daemon's lifetime.
    next_poll_due: Option<Instant>,
}

impl UdpTransport {
    /// Creates a transport for node `node`; `peers[i]` is node `i`'s
    /// address (the entry for `node` itself is unused but keeps the
    /// roster dense).
    ///
    /// # Panics
    /// Panics when `node` is outside the roster or the roster exceeds
    /// 256 nodes (node ids ride the wire as `u8`; a larger roster must
    /// fail at construction, not wrap at runtime).
    pub fn new(socket: AsyncUdpSocket, peers: Vec<SocketAddr>, node: u8) -> Self {
        assert!(
            peers.len() <= u8::MAX as usize + 1,
            "roster of {} nodes exceeds the u8 node-id space",
            peers.len()
        );
        assert!((node as usize) < peers.len(), "node id outside roster");
        let stats = TxStats::new(peers.len());
        UdpTransport {
            socket,
            peers,
            node,
            invalid: 0,
            recv_buf: vec![0u8; MAX_PAYLOAD + 1024].into_boxed_slice(),
            stats,
            poll_interval: rt::TICK,
            next_poll_due: None,
        }
    }

    /// Binds a socket and builds the transport in one step.
    pub fn bind(bind: SocketAddr, peers: Vec<SocketAddr>, node: u8) -> io::Result<Self> {
        Ok(Self::new(AsyncUdpSocket::bind(bind)?, peers, node))
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The transmitted-bit / send-error ledger (destination-indexed for
    /// errors, sender-charged for bits — this node is the only sender).
    pub fn stats(&self) -> &TxStats {
        &self.stats
    }

    /// Sends `bytes` (the encoded `frame`) to peer `to`, charging the
    /// ledger. Transient socket failures are counted, not propagated:
    /// the reliable layer treats them as loss. Only a roster violation
    /// is a hard error.
    fn send_bytes(&mut self, to: u8, frame: &Frame, bytes: &[u8]) -> io::Result<()> {
        let addr = *self
            .peers
            .get(to as usize)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "peer outside roster"))?;
        match self.socket.send_to(bytes, addr) {
            // `Ok(0)` is the socket's "buffer full, datagram dropped".
            Ok(0) => {
                self.stats.record_send_error(to as usize);
                crate::telemetry::counter_add("net.tx.send_errors", 1);
            }
            Ok(_) => {
                self.stats.record(self.node as usize, frame.tx_class(), (bytes.len() * 8) as u64);
                crate::telemetry::counter_add("net.tx.frames", 1);
            }
            Err(_) => {
                self.stats.record_send_error(to as usize);
                crate::telemetry::counter_add("net.tx.send_errors", 1);
            }
        }
        Ok(())
    }
}

impl Transport for UdpTransport {
    fn local_node(&self) -> u8 {
        self.node
    }

    fn node_count(&self) -> usize {
        self.peers.len()
    }

    fn send_to(&mut self, to: u8, frame: &Frame) -> io::Result<()> {
        let bytes = frame.encode();
        self.send_bytes(to, frame, &bytes)
    }

    fn broadcast(&mut self, frame: &Frame) -> io::Result<()> {
        // Encode once; fan the same bytes out to every peer. Iterate in
        // usize: `len() as u8` wraps to 0 on a full 256-node roster.
        let bytes = frame.encode();
        for peer in 0..self.peers.len() {
            if peer != self.node as usize {
                self.send_bytes(peer as u8, frame, &bytes)?;
            }
        }
        Ok(())
    }

    fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<Frame>> {
        loop {
            match self.socket.try_recv_from(&mut self.recv_buf) {
                Ok(Some((n, from))) => {
                    // Data: back to the hot poll interval, and let the
                    // next Pending arm a fresh (faster) timer even if a
                    // slower one is still in flight — the stale one
                    // fires once and is absorbed by the due-check below.
                    self.poll_interval = rt::TICK;
                    self.next_poll_due = None;
                    match Frame::decode(&self.recv_buf[..n]) {
                        // The claimed sender id must match the datagram's
                        // source address in the roster — otherwise any host
                        // that can reach the port could impersonate any
                        // node. (No cryptographic authentication yet; see
                        // `thinair_core::auth` for the bootstrap-secret
                        // layer a future PR can wire in.)
                        Ok(frame)
                            if (frame.sender as usize) < self.peers.len()
                                && self.peers[frame.sender as usize] == from =>
                        {
                            crate::telemetry::counter_add("net.rx.frames", 1);
                            return Poll::Ready(Ok(frame));
                        }
                        _ => {
                            // Malformed, impossible sender, or spoofed
                            // source: drop and keep draining the socket.
                            self.invalid += 1;
                            crate::telemetry::counter_add("net.rx.invalid", 1);
                        }
                    }
                }
                Ok(None) => {
                    // Preferred path: hand the socket fd to the epoll
                    // reactor — the next datagram's arrival wakes us
                    // directly, no timer, no poll latency.
                    if rt::register_fd_readable(self.socket.raw_fd(), cx.waker()) {
                        return Poll::Pending;
                    }
                    // No reactor (non-Linux, disabled, virtual clock):
                    // bridge socket readiness with a re-poll timer,
                    // backing off while the socket stays quiet. Arm only
                    // when no armed timer is still pending, so spurious
                    // wakes cannot multiply timer chains.
                    let now = Instant::now();
                    if self.next_poll_due.is_none_or(|t| t <= now) {
                        let at = now + self.poll_interval;
                        self.next_poll_due = Some(at);
                        rt::register_timer(at, cx.waker());
                        self.poll_interval = (self.poll_interval * 2).min(UDP_POLL_MAX);
                        crate::telemetry::counter_add("net.udp.repoll_arms", 1);
                    }
                    return Poll::Pending;
                }
                Err(e) => return Poll::Ready(Err(e)),
            }
        }
    }

    fn invalid_frames(&self) -> u64 {
        self.invalid
    }

    fn send_errors(&self) -> u64 {
        self.stats.send_errors_total()
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        // Drop reactor interest in the fd before the socket closes (a
        // no-op outside a runtime or when never registered).
        rt::deregister_fd(self.socket.raw_fd());
    }
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

struct SimHub<M: Medium> {
    medium: M,
    queues: Vec<std::collections::VecDeque<Frame>>,
    /// Waker of each node's blocked receive, woken on delivery.
    wakers: Vec<Option<Waker>>,
    stats: TxStats,
    frames: u64,
    /// Chaos layer (adversarial fault injection); `None` = clean net.
    chaos: Option<ChaosState>,
    /// Stepped-delivery mode ([`SimNet::stepper`]): when `Some`, every
    /// delivery the medium grants is parked here instead of landing in
    /// a receiver queue, and the [`StepHandle`] decides which pending
    /// frame fires next (or is dropped). `None` = normal FIFO delivery.
    step: Option<StepQueue<PendingDelivery>>,
}

/// One in-flight frame delivery in a stepped net: the medium granted
/// it, the scheduler has not fired it yet.
#[derive(Clone, Debug)]
pub struct PendingDelivery {
    /// Emitting node.
    pub src: u8,
    /// Receiving node.
    pub dst: u8,
    /// The frame on the air.
    pub frame: Frame,
}

/// Wakes the receive pump parked on `wakers[rx]`, if any. A free
/// function over the waker column only, so callers can hold disjoint
/// borrows of the hub's other fields (the chaos state in particular).
fn wake_node(wakers: &mut [Option<Waker>], rx: usize) {
    if let Some(w) = wakers[rx].take() {
        w.wake();
    }
}

/// A shared simulated network that hands out per-node [`SimTransport`]s.
///
/// Medium nodes beyond the transport roster (e.g. an Eve antenna as the
/// last node) take part in every delivery decision but have no queue —
/// exactly like the synchronous reproduction treats them.
pub struct SimNet<M: Medium> {
    hub: Rc<RefCell<SimHub<M>>>,
    n_nodes: usize,
}

impl<M: Medium> SimNet<M> {
    /// Wraps a medium; `n_nodes` is the number of protocol nodes
    /// (`medium.node_count() >= n_nodes`).
    pub fn new(medium: M, n_nodes: usize) -> Self {
        Self::build(medium, n_nodes, None)
    }

    /// Wraps a medium with an adversarial chaos layer: every frame
    /// passes through `plan`'s deterministic fault schedule (see
    /// [`crate::chaos`]). `coordinator` is exempt from the lifecycle
    /// faults (crash / late join model *terminal* misbehavior).
    pub fn with_faults(
        medium: M,
        n_nodes: usize,
        plan: FaultPlan,
        fault_seed: u64,
        coordinator: u8,
    ) -> Self {
        let chaos = (!plan.is_none()).then(|| ChaosState::new(plan, fault_seed, coordinator));
        Self::build(medium, n_nodes, chaos)
    }

    fn build(medium: M, n_nodes: usize, chaos: Option<ChaosState>) -> Self {
        assert!(medium.node_count() >= n_nodes, "medium smaller than roster");
        // Node ids ride the wire as u8: a larger roster is a
        // construction-time error, never a silent wrap.
        assert!(
            n_nodes <= u8::MAX as usize + 1,
            "roster of {n_nodes} nodes exceeds the u8 node-id space"
        );
        let stats = TxStats::new(medium.node_count());
        SimNet {
            hub: Rc::new(RefCell::new(SimHub {
                medium,
                queues: (0..n_nodes).map(|_| Default::default()).collect(),
                wakers: (0..n_nodes).map(|_| None).collect(),
                stats,
                frames: 0,
                chaos,
                step: None,
            })),
            n_nodes,
        }
    }

    /// Switches the net into **stepped-delivery** mode and returns the
    /// scheduler handle. From this point on, frames the medium delivers
    /// are parked in a pending set instead of reaching their receiver;
    /// the handle enumerates them and picks — per frame — whether it is
    /// delivered next or dropped. This is the scheduler hook the
    /// exhaustive interleaving explorer drives; combined with
    /// [`crate::rt::block_on_virtual`] it makes every delivery order a
    /// reachable, replayable execution of the real state machines.
    ///
    /// Call before any traffic flows; mixing modes mid-run would let
    /// early frames bypass the scheduler.
    pub fn stepper(&self) -> StepHandle<M> {
        self.hub.borrow_mut().step = Some(StepQueue::new());
        StepHandle { hub: self.hub.clone() }
    }

    /// A transport endpoint for node `node`.
    pub fn transport(&self, node: u8) -> SimTransport<M> {
        assert!((node as usize) < self.n_nodes, "node id outside roster");
        SimTransport { hub: self.hub.clone(), node, n_nodes: self.n_nodes, invalid: 0 }
    }

    /// Total bits transmitted so far, by any node.
    pub fn bits_transmitted(&self) -> u64 {
        self.hub.borrow().stats.total()
    }

    /// Total frames put on the air so far (one `Medium::transmit` each;
    /// a unicast fan-out counts once per peer).
    pub fn frames_transmitted(&self) -> u64 {
        self.hub.borrow().frames
    }

    /// A snapshot of the per-node transmitted-bit ledger.
    pub fn stats(&self) -> TxStats {
        self.hub.borrow().stats.clone()
    }

    /// Counters of every fault the chaos layer injected (all zero on a
    /// clean net).
    pub fn fault_stats(&self) -> FaultStats {
        self.hub.borrow().chaos.as_ref().map(|c| c.stats.clone()).unwrap_or_default()
    }
}

/// Simulated transport endpoint for one node.
pub struct SimTransport<M: Medium> {
    hub: Rc<RefCell<SimHub<M>>>,
    node: u8,
    n_nodes: usize,
    invalid: u64,
}

impl<M: Medium> SimTransport<M> {
    fn transmit(&mut self, frame: &Frame, only: Option<u8>) {
        let mut guard = self.hub.borrow_mut();
        let hub = &mut *guard;
        // Lifecycle gate: a node that crashed (in this frame's session)
        // or has not late-joined yet puts nothing on the air.
        if let Some(chaos) = hub.chaos.as_mut() {
            chaos.tick();
            if !chaos.allow_send(frame) {
                Self::flush_due(hub);
                return;
            }
        }
        let bits = frame.bits();
        let delivery = hub.medium.transmit(self.node as usize, bits);
        hub.stats.record(self.node as usize, thinair_netsim::stats::TxClass::Data, bits);
        hub.frames += 1;
        crate::telemetry::counter_add("net.tx.frames", 1);
        for rx in 0..self.n_nodes {
            if rx == self.node as usize || !delivery.got(rx) {
                continue;
            }
            if let Some(target) = only {
                if rx != target as usize {
                    continue;
                }
            }
            let mut immediate: Vec<Frame> = Vec::new();
            match hub.chaos.as_mut() {
                None => immediate.push(frame.clone()),
                Some(chaos) => {
                    for (delay, copy) in chaos.deliver(frame, self.node, rx as u8) {
                        if delay == 0 {
                            immediate.push(copy);
                        } else {
                            chaos.hold(delay, rx as u8, copy);
                        }
                    }
                }
            }
            for copy in immediate {
                Self::deliver_or_park(hub, self.node, rx, copy);
            }
        }
        Self::flush_due(hub);
    }

    /// The delivery choke point: in stepped mode the frame is parked
    /// for the external scheduler; otherwise it lands in the receiver's
    /// queue and wakes its pump.
    fn deliver_or_park(hub: &mut SimHub<M>, src: u8, rx: usize, frame: Frame) {
        match hub.step.as_mut() {
            Some(step) => {
                step.push(PendingDelivery { src, dst: rx as u8, frame });
            }
            None => {
                hub.queues[rx].push_back(frame);
                wake_node(&mut hub.wakers, rx);
            }
        }
    }

    /// Releases every held-back (delayed/reordered) frame whose release
    /// point has passed.
    fn flush_due(hub: &mut SimHub<M>) {
        let due: Vec<(u8, Frame)> = match hub.chaos.as_mut() {
            Some(chaos) => chaos.due(),
            None => return,
        };
        for (rx, f) in due {
            let src = f.sender;
            Self::deliver_or_park(hub, src, rx as usize, f);
        }
    }
}

/// Scheduler handle for a stepped [`SimNet`] (see [`SimNet::stepper`]).
///
/// The explorer's view of the network: the set of frames the medium
/// has granted but nobody has received yet. Each pending delivery has a
/// stable **emission id**; at every quiescent point the explorer either
/// [`deliver`](StepHandle::deliver)s one (any order — this is where
/// interleavings branch), [`drop_frame`](StepHandle::drop_frame)s one
/// (a fault placement), or falls back to
/// [`deliver_oldest`](StepHandle::deliver_oldest), the deterministic
/// FIFO default that reproduces normal sim behaviour.
pub struct StepHandle<M: Medium> {
    hub: Rc<RefCell<SimHub<M>>>,
}

impl<M: Medium> Clone for StepHandle<M> {
    fn clone(&self) -> Self {
        StepHandle { hub: self.hub.clone() }
    }
}

impl<M: Medium> StepHandle<M> {
    fn with_step<R>(&self, f: impl FnOnce(&mut SimHub<M>) -> R) -> R {
        f(&mut self.hub.borrow_mut())
    }

    /// The pending deliveries, oldest first, with their emission ids.
    pub fn pending(&self) -> Vec<(u64, PendingDelivery)> {
        self.with_step(|hub| {
            hub.step
                .as_ref()
                .map(|s| s.iter().map(|(id, p)| (id, p.clone())).collect())
                .unwrap_or_default()
        })
    }

    /// Number of pending deliveries.
    pub fn len(&self) -> usize {
        self.with_step(|hub| hub.step.as_ref().map(|s| s.len()).unwrap_or(0))
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total deliveries ever parked (the next emission id to be minted)
    /// — a cheap component for execution fingerprints.
    pub fn emitted(&self) -> u64 {
        self.with_step(|hub| hub.step.as_ref().map(|s| s.pushed()).unwrap_or(0))
    }

    /// Fires pending delivery `id`: the frame lands in its receiver's
    /// queue and the receiver's pump is woken. `false` if the id is
    /// unknown (already fired or dropped).
    pub fn deliver(&self, id: u64) -> bool {
        self.with_step(|hub| {
            let Some(p) = hub.step.as_mut().and_then(|s| s.remove(id)) else {
                return false;
            };
            hub.queues[p.dst as usize].push_back(p.frame);
            wake_node(&mut hub.wakers, p.dst as usize);
            true
        })
    }

    /// Drops pending delivery `id` — the explorer-placed erasure.
    /// Returns what was dropped, or `None` if the id is unknown.
    pub fn drop_frame(&self, id: u64) -> Option<PendingDelivery> {
        self.with_step(|hub| hub.step.as_mut().and_then(|s| s.remove(id)))
    }

    /// Fires the oldest pending delivery (the FIFO default policy) and
    /// returns its id, or `None` when nothing is pending.
    pub fn deliver_oldest(&self) -> Option<u64> {
        self.with_step(|hub| {
            let (id, p) = hub.step.as_mut()?.pop_front()?;
            hub.queues[p.dst as usize].push_back(p.frame);
            wake_node(&mut hub.wakers, p.dst as usize);
            Some(id)
        })
    }
}

impl<M: Medium> Transport for SimTransport<M> {
    fn local_node(&self) -> u8 {
        self.node
    }

    fn node_count(&self) -> usize {
        self.n_nodes
    }

    fn send_to(&mut self, to: u8, frame: &Frame) -> io::Result<()> {
        self.transmit(frame, Some(to));
        Ok(())
    }

    fn broadcast(&mut self, frame: &Frame) -> io::Result<()> {
        // One transmission reaches everyone the erasure pattern allows —
        // the broadcast advantage the protocol is built on.
        self.transmit(frame, None);
        Ok(())
    }

    fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<Frame>> {
        let mut hub = self.hub.borrow_mut();
        match hub.queues[self.node as usize].pop_front() {
            Some(f) => {
                crate::telemetry::counter_add("net.rx.frames", 1);
                Poll::Ready(Ok(f))
            }
            None => {
                // Chaos hold-back frames are released (and their
                // receiver woken, via `flush_due` → `wake_node`) inside
                // later `transmit` calls — the delay clock counts
                // transmissions, not time, and the reliable layer's
                // retransmission timers guarantee those transmissions
                // keep coming while any session is live. The waker slot
                // alone therefore suffices; no re-poll timer needed.
                let me = self.node as usize;
                let slot = &mut hub.wakers[me];
                match slot.as_ref() {
                    Some(w) if w.will_wake(cx.waker()) => {}
                    _ => *slot = Some(cx.waker().clone()),
                }
                Poll::Pending
            }
        }
    }

    fn invalid_frames(&self) -> u64 {
        self.invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::NetPayload;
    use crate::rt;
    use thinair_netsim::IidMedium;

    fn frame(sender: u8, seq: u32) -> Frame {
        Frame { flags: 0, sender, session: 1, seq, payload: NetPayload::Ack { seq } }
    }

    #[test]
    fn sim_broadcast_respects_erasures_and_counts_bits() {
        // p = 1.0 towards node 1 only? use symmetric p=0: everyone gets it.
        let net = SimNet::new(IidMedium::symmetric(4, 0.0, 1), 3);
        let mut t0 = net.transport(0);
        let t1 = net.transport(1);
        let t2 = net.transport(2);
        t0.broadcast(&frame(0, 1)).unwrap();
        rt::block_on(async {
            let a = SharedTransport::new(t1).recv().await.unwrap();
            let b = SharedTransport::new(t2).recv().await.unwrap();
            assert_eq!(a.seq, 1);
            assert_eq!(b.seq, 1);
        });
        assert_eq!(net.bits_transmitted(), frame(0, 1).bits());
    }

    #[test]
    fn sim_dead_channel_delivers_nothing() {
        let net = SimNet::new(IidMedium::symmetric(3, 1.0, 2), 2);
        let mut t0 = net.transport(0);
        t0.broadcast(&frame(0, 7)).unwrap();
        let t1 = SharedTransport::new(net.transport(1));
        rt::block_on(async {
            let r = rt::timeout(std::time::Duration::from_millis(5), t1.recv()).await;
            assert!(r.is_err(), "nothing should arrive over a dead channel");
        });
        // The transmission still cost air time.
        assert!(net.bits_transmitted() > 0);
    }

    #[test]
    fn sim_delivery_wakes_blocked_receiver() {
        // The receiver parks first; only the delivery wake resumes it.
        let net = SimNet::new(IidMedium::symmetric(3, 0.0, 1), 2);
        let t0 = net.transport(0);
        let t1 = SharedTransport::new(net.transport(1));
        let got = rt::block_on(async {
            let rx_task = rt::spawn(async move { t1.recv().await.unwrap().seq });
            rt::spawn(async move {
                rt::sleep(std::time::Duration::from_millis(2)).await;
                let mut t0 = t0;
                t0.broadcast(&frame(0, 42)).unwrap();
            });
            rx_task.await
        });
        assert_eq!(got, 42);
    }

    #[test]
    fn recv_batch_drains_backlog_in_one_poll() {
        let net = SimNet::new(IidMedium::symmetric(3, 0.0, 1), 2);
        let mut t0 = net.transport(0);
        for seq in 1..=5 {
            t0.broadcast(&frame(0, seq)).unwrap();
        }
        let t1 = SharedTransport::new(net.transport(1));
        let batch = rt::block_on(async { t1.recv_batch(DEFAULT_RECV_BATCH).await.unwrap() });
        assert_eq!(batch.iter().map(|f| f.seq).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    /// Stepped mode parks every delivery; the scheduler can reorder
    /// across frames and place drops, and the receivers observe exactly
    /// the chosen schedule.
    #[test]
    fn stepped_mode_lets_the_scheduler_reorder_and_drop() {
        let net = SimNet::new(IidMedium::symmetric(4, 0.0, 1), 3);
        let step = net.stepper();
        let mut t0 = net.transport(0);
        let t1 = SharedTransport::new(net.transport(1));
        let t2 = SharedTransport::new(net.transport(2));
        t0.broadcast(&frame(0, 1)).unwrap();
        t0.broadcast(&frame(0, 2)).unwrap();
        // 2 frames × 2 receivers parked, nothing delivered yet.
        assert_eq!(step.len(), 4);
        assert_eq!(step.emitted(), 4);
        let pending = step.pending();
        let find = |seq: u32, dst: u8| {
            pending.iter().find(|(_, p)| p.frame.seq == seq && p.dst == dst).unwrap().0
        };
        // Node 1 sees seq 2 before seq 1 (reordered); node 2 loses seq 1
        // entirely (an explorer-placed erasure) and gets seq 2 by the
        // FIFO default.
        assert!(step.deliver(find(2, 1)));
        assert!(step.deliver(find(1, 1)));
        let dropped = step.drop_frame(find(1, 2)).expect("pending drop");
        assert_eq!((dropped.dst, dropped.frame.seq), (2, 1));
        assert!(step.deliver_oldest().is_some());
        assert!(step.is_empty());
        rt::block_on(async {
            assert_eq!(t1.recv().await.unwrap().seq, 2);
            assert_eq!(t1.recv().await.unwrap().seq, 1);
            assert_eq!(t2.recv().await.unwrap().seq, 2);
        });
        // Spent ids are gone for good.
        assert!(!step.deliver(0));
    }

    #[test]
    fn udp_transport_filters_garbage() {
        rt::block_on(async {
            let a = AsyncUdpSocket::bind("127.0.0.1:0").unwrap();
            let b = AsyncUdpSocket::bind("127.0.0.1:0").unwrap();
            let a_addr = a.local_addr().unwrap();
            let b_addr = b.local_addr().unwrap();
            let tb = UdpTransport::new(b, vec![a_addr, b_addr], 1);
            // Garbage first, then a valid frame.
            a.send_to(b"not a frame at all", b_addr).unwrap();
            a.send_to(&frame(0, 3).encode(), b_addr).unwrap();
            let shared = SharedTransport::new(tb);
            let got = rt::timeout(std::time::Duration::from_secs(2), shared.recv())
                .await
                .expect("frame should arrive")
                .unwrap();
            assert_eq!(got.seq, 3);
            assert_eq!(shared.invalid_frames(), 1);
        });
    }

    #[test]
    fn udp_send_errors_are_counted_not_fatal() {
        let a = AsyncUdpSocket::bind("127.0.0.1:0").unwrap();
        let a_addr = a.local_addr().unwrap();
        // Destination port 0 is invalid for sendto on every mainstream
        // OS: the send fails, the counter ticks, the call stays Ok.
        let bogus: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let mut t = UdpTransport::new(a, vec![a_addr, bogus], 0);
        assert_eq!(t.send_errors(), 0);
        t.send_to(1, &frame(0, 1)).expect("send error must not kill the session");
        assert_eq!(t.send_errors(), 1);
        assert_eq!(t.stats().send_errors(1), 1);
        // A roster violation is still a hard error.
        assert!(t.send_to(9, &frame(0, 1)).is_err());
    }
}
