//! The [`Transport`] abstraction: one trait, two worlds.
//!
//! The coordinator and terminal state machines in this crate are generic
//! over `Transport`, so the *identical* code drives
//!
//! * [`UdpTransport`] — real sockets: broadcast is a unicast fan-out to
//!   the peer roster (loopback and most WANs have no usable broadcast),
//!   and the only losses are the network's own plus the configured
//!   receiver-side erasure injection ([`crate::session`]);
//! * [`SimTransport`] — an adapter over [`thinair_netsim::Medium`]: one
//!   `broadcast` is one `Medium::transmit` (one airtime charge, one
//!   erasure pattern), so the async protocol runs against the same
//!   physically plausible packet loss the synchronous reproduction uses,
//!   with exact transmitted-bit accounting.
//!
//! Frames that fail to decode are dropped at this layer (counted, not
//! propagated): a malformed datagram must never wedge a session.

use std::cell::RefCell;
use std::future::Future;
use std::io;
use std::net::SocketAddr;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use thinair_netsim::{FaultPlan, Medium, TxStats};

use crate::chaos::{ChaosState, FaultStats};
use crate::frame::{Frame, MAX_PAYLOAD};
use crate::udp::AsyncUdpSocket;

/// A frame-level packet interface for one node.
pub trait Transport {
    /// This node's dense id.
    fn local_node(&self) -> u8;

    /// Number of nodes in the roster.
    fn node_count(&self) -> usize;

    /// Sends a frame to one peer.
    fn send_to(&mut self, to: u8, frame: &Frame) -> io::Result<()>;

    /// Sends a frame to every peer (default: unicast fan-out).
    fn broadcast(&mut self, frame: &Frame) -> io::Result<()> {
        let me = self.local_node();
        for peer in 0..self.node_count() as u8 {
            if peer != me {
                self.send_to(peer, frame)?;
            }
        }
        Ok(())
    }

    /// Polls for the next valid frame addressed to this node.
    fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<Frame>>;

    /// Datagrams dropped because they failed frame validation.
    fn invalid_frames(&self) -> u64;
}

/// Shared handle so the receive pump and many session tasks can use one
/// transport (single-threaded runtime ⇒ `Rc<RefCell>`).
pub struct SharedTransport<T>(Rc<RefCell<T>>);

impl<T> Clone for SharedTransport<T> {
    fn clone(&self) -> Self {
        SharedTransport(self.0.clone())
    }
}

impl<T: Transport> SharedTransport<T> {
    /// Wraps a transport.
    pub fn new(t: T) -> Self {
        SharedTransport(Rc::new(RefCell::new(t)))
    }

    /// This node's dense id.
    pub fn local_node(&self) -> u8 {
        self.0.borrow().local_node()
    }

    /// Number of nodes in the roster.
    pub fn node_count(&self) -> usize {
        self.0.borrow().node_count()
    }

    /// Sends a frame to one peer.
    pub fn send_to(&self, to: u8, frame: &Frame) -> io::Result<()> {
        self.0.borrow_mut().send_to(to, frame)
    }

    /// Sends a frame to every peer.
    pub fn broadcast(&self, frame: &Frame) -> io::Result<()> {
        self.0.borrow_mut().broadcast(frame)
    }

    /// Datagrams dropped by frame validation.
    pub fn invalid_frames(&self) -> u64 {
        self.0.borrow().invalid_frames()
    }

    /// Borrows the inner transport (e.g. to read sim-side statistics).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.0.borrow())
    }

    /// The next valid incoming frame.
    pub fn recv(&self) -> RecvFrame<T> {
        RecvFrame { t: self.0.clone() }
    }
}

/// Future returned by [`SharedTransport::recv`]; `Unpin`.
pub struct RecvFrame<T> {
    t: Rc<RefCell<T>>,
}

impl<T: Transport> Future for RecvFrame<T> {
    type Output = io::Result<Frame>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.t.borrow_mut().poll_recv(cx)
    }
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

/// Real-socket transport: one UDP socket, a static peer roster indexed
/// by node id.
pub struct UdpTransport {
    socket: AsyncUdpSocket,
    peers: Vec<SocketAddr>,
    node: u8,
    invalid: u64,
    recv_buf: Box<[u8]>,
}

impl UdpTransport {
    /// Creates a transport for node `node`; `peers[i]` is node `i`'s
    /// address (the entry for `node` itself is unused but keeps the
    /// roster dense).
    pub fn new(socket: AsyncUdpSocket, peers: Vec<SocketAddr>, node: u8) -> Self {
        assert!((node as usize) < peers.len(), "node id outside roster");
        UdpTransport {
            socket,
            peers,
            node,
            invalid: 0,
            recv_buf: vec![0u8; MAX_PAYLOAD + 1024].into_boxed_slice(),
        }
    }

    /// Binds a socket and builds the transport in one step.
    pub fn bind(bind: SocketAddr, peers: Vec<SocketAddr>, node: u8) -> io::Result<Self> {
        Ok(Self::new(AsyncUdpSocket::bind(bind)?, peers, node))
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl Transport for UdpTransport {
    fn local_node(&self) -> u8 {
        self.node
    }

    fn node_count(&self) -> usize {
        self.peers.len()
    }

    fn send_to(&mut self, to: u8, frame: &Frame) -> io::Result<()> {
        let addr = *self
            .peers
            .get(to as usize)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "peer outside roster"))?;
        self.socket.send_to(&frame.encode(), addr)?;
        Ok(())
    }

    fn broadcast(&mut self, frame: &Frame) -> io::Result<()> {
        // Encode once; fan the same bytes out to every peer.
        let bytes = frame.encode();
        for (peer, &addr) in self.peers.iter().enumerate() {
            if peer != self.node as usize {
                self.socket.send_to(&bytes, addr)?;
            }
        }
        Ok(())
    }

    fn poll_recv(&mut self, _cx: &mut Context<'_>) -> Poll<io::Result<Frame>> {
        loop {
            match self.socket.try_recv_from(&mut self.recv_buf) {
                Ok(Some((n, from))) => match Frame::decode(&self.recv_buf[..n]) {
                    // The claimed sender id must match the datagram's
                    // source address in the roster — otherwise any host
                    // that can reach the port could impersonate any
                    // node. (No cryptographic authentication yet; see
                    // `thinair_core::auth` for the bootstrap-secret
                    // layer a future PR can wire in.)
                    Ok(frame)
                        if (frame.sender as usize) < self.peers.len()
                            && self.peers[frame.sender as usize] == from =>
                    {
                        return Poll::Ready(Ok(frame));
                    }
                    _ => {
                        // Malformed, impossible sender, or spoofed
                        // source: drop and keep draining the socket.
                        self.invalid += 1;
                    }
                },
                Ok(None) => return Poll::Pending,
                Err(e) => return Poll::Ready(Err(e)),
            }
        }
    }

    fn invalid_frames(&self) -> u64 {
        self.invalid
    }
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

struct SimHub<M: Medium> {
    medium: M,
    queues: Vec<std::collections::VecDeque<Frame>>,
    stats: TxStats,
    frames: u64,
    /// Chaos layer (adversarial fault injection); `None` = clean net.
    chaos: Option<ChaosState>,
}

/// A shared simulated network that hands out per-node [`SimTransport`]s.
///
/// Medium nodes beyond the transport roster (e.g. an Eve antenna as the
/// last node) take part in every delivery decision but have no queue —
/// exactly like the synchronous reproduction treats them.
pub struct SimNet<M: Medium> {
    hub: Rc<RefCell<SimHub<M>>>,
    n_nodes: usize,
}

impl<M: Medium> SimNet<M> {
    /// Wraps a medium; `n_nodes` is the number of protocol nodes
    /// (`medium.node_count() >= n_nodes`).
    pub fn new(medium: M, n_nodes: usize) -> Self {
        Self::build(medium, n_nodes, None)
    }

    /// Wraps a medium with an adversarial chaos layer: every frame
    /// passes through `plan`'s deterministic fault schedule (see
    /// [`crate::chaos`]). `coordinator` is exempt from the lifecycle
    /// faults (crash / late join model *terminal* misbehavior).
    pub fn with_faults(
        medium: M,
        n_nodes: usize,
        plan: FaultPlan,
        fault_seed: u64,
        coordinator: u8,
    ) -> Self {
        let chaos = (!plan.is_none()).then(|| ChaosState::new(plan, fault_seed, coordinator));
        Self::build(medium, n_nodes, chaos)
    }

    fn build(medium: M, n_nodes: usize, chaos: Option<ChaosState>) -> Self {
        assert!(medium.node_count() >= n_nodes, "medium smaller than roster");
        let stats = TxStats::new(medium.node_count());
        SimNet {
            hub: Rc::new(RefCell::new(SimHub {
                medium,
                queues: (0..n_nodes).map(|_| Default::default()).collect(),
                stats,
                frames: 0,
                chaos,
            })),
            n_nodes,
        }
    }

    /// A transport endpoint for node `node`.
    pub fn transport(&self, node: u8) -> SimTransport<M> {
        assert!((node as usize) < self.n_nodes, "node id outside roster");
        SimTransport { hub: self.hub.clone(), node, n_nodes: self.n_nodes, invalid: 0 }
    }

    /// Total bits transmitted so far, by any node.
    pub fn bits_transmitted(&self) -> u64 {
        self.hub.borrow().stats.total()
    }

    /// Total frames put on the air so far (one `Medium::transmit` each;
    /// a unicast fan-out counts once per peer).
    pub fn frames_transmitted(&self) -> u64 {
        self.hub.borrow().frames
    }

    /// A snapshot of the per-node transmitted-bit ledger.
    pub fn stats(&self) -> TxStats {
        self.hub.borrow().stats.clone()
    }

    /// Counters of every fault the chaos layer injected (all zero on a
    /// clean net).
    pub fn fault_stats(&self) -> FaultStats {
        self.hub.borrow().chaos.as_ref().map(|c| c.stats.clone()).unwrap_or_default()
    }
}

/// Simulated transport endpoint for one node.
pub struct SimTransport<M: Medium> {
    hub: Rc<RefCell<SimHub<M>>>,
    node: u8,
    n_nodes: usize,
    invalid: u64,
}

impl<M: Medium> SimTransport<M> {
    fn transmit(&mut self, frame: &Frame, only: Option<u8>) {
        let mut guard = self.hub.borrow_mut();
        let hub = &mut *guard;
        // Lifecycle gate: a node that crashed (in this frame's session)
        // or has not late-joined yet puts nothing on the air.
        if let Some(chaos) = hub.chaos.as_mut() {
            chaos.tick();
            if !chaos.allow_send(frame) {
                Self::flush_due(hub);
                return;
            }
        }
        let bits = frame.bits();
        let delivery = hub.medium.transmit(self.node as usize, bits);
        hub.stats.record(self.node as usize, thinair_netsim::stats::TxClass::Data, bits);
        hub.frames += 1;
        for rx in 0..self.n_nodes {
            if rx == self.node as usize || !delivery.got(rx) {
                continue;
            }
            if let Some(target) = only {
                if rx != target as usize {
                    continue;
                }
            }
            match hub.chaos.as_mut() {
                None => {
                    hub.queues[rx].push_back(frame.clone());
                    crate::rt::notify();
                }
                Some(chaos) => {
                    for (delay, copy) in chaos.deliver(frame, self.node, rx as u8) {
                        if delay == 0 {
                            hub.queues[rx].push_back(copy);
                            crate::rt::notify();
                        } else {
                            chaos.hold(delay, rx as u8, copy);
                        }
                    }
                }
            }
        }
        Self::flush_due(hub);
    }

    /// Releases every held-back (delayed/reordered) frame whose release
    /// point has passed.
    fn flush_due(hub: &mut SimHub<M>) {
        if let Some(chaos) = hub.chaos.as_mut() {
            for (rx, f) in chaos.due() {
                hub.queues[rx as usize].push_back(f);
                crate::rt::notify();
            }
        }
    }
}

impl<M: Medium> Transport for SimTransport<M> {
    fn local_node(&self) -> u8 {
        self.node
    }

    fn node_count(&self) -> usize {
        self.n_nodes
    }

    fn send_to(&mut self, to: u8, frame: &Frame) -> io::Result<()> {
        self.transmit(frame, Some(to));
        Ok(())
    }

    fn broadcast(&mut self, frame: &Frame) -> io::Result<()> {
        // One transmission reaches everyone the erasure pattern allows —
        // the broadcast advantage the protocol is built on.
        self.transmit(frame, None);
        Ok(())
    }

    fn poll_recv(&mut self, _cx: &mut Context<'_>) -> Poll<io::Result<Frame>> {
        match self.hub.borrow_mut().queues[self.node as usize].pop_front() {
            Some(f) => Poll::Ready(Ok(f)),
            None => Poll::Pending,
        }
    }

    fn invalid_frames(&self) -> u64 {
        self.invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::NetPayload;
    use crate::rt;
    use thinair_netsim::IidMedium;

    fn frame(sender: u8, seq: u32) -> Frame {
        Frame { flags: 0, sender, session: 1, seq, payload: NetPayload::Ack { seq } }
    }

    #[test]
    fn sim_broadcast_respects_erasures_and_counts_bits() {
        // p = 1.0 towards node 1 only? use symmetric p=0: everyone gets it.
        let net = SimNet::new(IidMedium::symmetric(4, 0.0, 1), 3);
        let mut t0 = net.transport(0);
        let t1 = net.transport(1);
        let t2 = net.transport(2);
        t0.broadcast(&frame(0, 1)).unwrap();
        rt::block_on(async {
            let a = SharedTransport::new(t1).recv().await.unwrap();
            let b = SharedTransport::new(t2).recv().await.unwrap();
            assert_eq!(a.seq, 1);
            assert_eq!(b.seq, 1);
        });
        assert_eq!(net.bits_transmitted(), frame(0, 1).bits());
    }

    #[test]
    fn sim_dead_channel_delivers_nothing() {
        let net = SimNet::new(IidMedium::symmetric(3, 1.0, 2), 2);
        let mut t0 = net.transport(0);
        t0.broadcast(&frame(0, 7)).unwrap();
        let t1 = SharedTransport::new(net.transport(1));
        rt::block_on(async {
            let r = rt::timeout(std::time::Duration::from_millis(5), t1.recv()).await;
            assert!(r.is_err(), "nothing should arrive over a dead channel");
        });
        // The transmission still cost air time.
        assert!(net.bits_transmitted() > 0);
    }

    #[test]
    fn udp_transport_filters_garbage() {
        rt::block_on(async {
            let a = AsyncUdpSocket::bind("127.0.0.1:0").unwrap();
            let b = AsyncUdpSocket::bind("127.0.0.1:0").unwrap();
            let a_addr = a.local_addr().unwrap();
            let b_addr = b.local_addr().unwrap();
            let tb = UdpTransport::new(b, vec![a_addr, b_addr], 1);
            // Garbage first, then a valid frame.
            a.send_to(b"not a frame at all", b_addr).unwrap();
            a.send_to(&frame(0, 3).encode(), b_addr).unwrap();
            let shared = SharedTransport::new(tb);
            let got = rt::timeout(std::time::Duration::from_secs(2), shared.recv())
                .await
                .expect("frame should arrive")
                .unwrap();
            assert_eq!(got.seq, 3);
            assert_eq!(shared.invalid_frames(), 1);
        });
    }
}
