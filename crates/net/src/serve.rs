//! Serve mode: one long-lived daemon, one socket, thousands of
//! concurrent auto-admitted sessions.
//!
//! [`crate::node::Node`] multiplexes sessions a caller *opens
//! explicitly*. A deployment at the paper's pitch — cheap secret
//! agreement for many device pairs on a shared medium — needs the dual:
//! a terminal daemon that sits on its socket and serves whatever group
//! rounds coordinators initiate, without a human opening each one. That
//! is [`Server`]:
//!
//! * **Admission** — a frame for an unknown session spawns a terminal
//!   state machine iff it is a `Start` from the configured coordinator
//!   and the registry has room below its high-water mark (7/8 of
//!   [`ServeLimits::max_sessions`] — shedding starts *before* the hard
//!   cap so in-flight sessions keep headroom to finish). A refused
//!   `Start` is answered with an explicit [`NetPayload::Busy`] whose
//!   `retry_after_ms` scales with the overload, so the coordinator
//!   paces re-admission instead of retransmitting blind; nothing is
//!   dropped silently.
//! * **FIFO re-admission** — a refused `Start` is also parked in a
//!   bounded arrival-order queue and admitted from there as slots
//!   free, without waiting for the coordinator's paced retry. The
//!   ordering matters beyond latency: a group session needs a slot on
//!   *every* terminal daemon at once, and refusal-only shedding lets
//!   two saturated daemons fill with disjoint half-admitted sessions
//!   — each holding a slot on one daemon while `Busy`'d on the other
//!   — a cross-daemon admission deadlock. All daemons see the wave's
//!   `Start`s in near-identical order, so FIFO re-admission keeps
//!   their admitted sets aligned and half-admissions transient.
//! * **Budgets** — every admitted session inherits the
//!   [`SessionConfig`] deadline / attempt budgets, so no session can
//!   outlive its configured worst case.
//! * **Idle eviction** — a session whose peer went silent (crashed
//!   coordinator, dead link) is evicted after
//!   [`ServeLimits::idle_timeout`] without traffic: its channel closes,
//!   the state machine terminates with [`NetError::Closed`], and the
//!   slot frees *before* the protocol deadline would have reclaimed it.
//! * **Terminal-state GC** — completed or aborted sessions leave the
//!   registry immediately (their outcome goes to the
//!   [`Server::outcomes`] channel), so registry size tracks *live*
//!   sessions only.
//!
//! The pump is batched ([`SharedTransport::recv_batch`]): one wakeup
//! drains the whole socket backlog and routes it under a single borrow.
//! Combined with the waker-based executor ([`crate::rt`]), an idle
//! daemon with thousands of open sessions polls O(1) tasks per tick.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::driver::task_seed;
use crate::frame::{Frame, NetPayload};
use crate::rt;
use crate::rt::chan::{channel, Receiver, Sender};
use crate::session::{NetError, SessionConfig, SessionOutcome};
use crate::terminal::run_terminal;
use crate::transport::{SharedTransport, Transport, DEFAULT_RECV_BATCH};

/// Resource limits of one serve daemon.
#[derive(Clone, Copy, Debug)]
pub struct ServeLimits {
    /// Most sessions live at once; `Start`s beyond 7/8 of it are
    /// answered with `Busy { retry_after_ms }` and parked for FIFO
    /// re-admission as slots free (counted, never silently dropped).
    pub max_sessions: usize,
    /// Evict a session after this long without a single frame.
    pub idle_timeout: Duration,
    /// Most frames one pump pass drains (bounds per-pass latency).
    pub recv_batch: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_sessions: 8192,
            idle_timeout: Duration::from_secs(10),
            recv_batch: DEFAULT_RECV_BATCH,
        }
    }
}

/// Aggregate counters of one daemon's lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions admitted (a terminal task was spawned).
    pub admitted: u64,
    /// `Start`s refused because the registry was at capacity.
    pub rejected: u64,
    /// `Busy { retry_after_ms }` replies sent for refused `Start`s.
    /// Equals `rejected` when every refusal was answered (the daemon
    /// never sheds silently; a gap can only come from a socket error on
    /// the reply itself).
    pub busy: u64,
    /// Admitted sessions that completed with a usable outcome.
    pub completed: u64,
    /// Admitted sessions that terminated with a clean structured abort.
    pub aborted: u64,
    /// Sessions evicted for idleness.
    pub evicted: u64,
    /// Admitted sessions that died on an infrastructure error.
    pub failed: u64,
    /// Frames dropped because they belonged to no session and could not
    /// admit one (wrong kind, wrong sender, or already terminated).
    pub orphans: u64,
    /// High-water mark of concurrently open sessions.
    pub peak_open: u64,
}

impl ServeStats {
    /// Accumulates another daemon's (or shard's) counters into this
    /// one. Counts add; `peak_open`, a per-registry high-water mark,
    /// also adds — disjoint shards hold their peaks concurrently, so
    /// the sum bounds the daemon-wide peak.
    pub fn absorb(&mut self, other: &ServeStats) {
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.busy += other.busy;
        self.completed += other.completed;
        self.aborted += other.aborted;
        self.evicted += other.evicted;
        self.failed += other.failed;
        self.orphans += other.orphans;
        self.peak_open += other.peak_open;
    }
}

struct Entry {
    tx: Sender<Frame>,
    last_frame: Instant,
    /// Admission time — anchors the `serve.session_us` duration
    /// histogram when the session terminates.
    admitted_at: Instant,
}

/// A `Start` refused at the high-water mark, parked for FIFO
/// re-admission when a slot frees.
struct PendingStart {
    frame: Frame,
    /// Last time a `Start` copy for this session arrived. A live
    /// coordinator refreshes it with every paced retry; an entry that
    /// goes stale ([`QUEUE_STALE`]) belonged to a coordinator that gave
    /// up and is dropped at drain time instead of wasting a slot.
    refreshed: Instant,
}

/// Outcome of one admission attempt (see [`SessionRegistry::admit`]).
enum Admission {
    /// A slot was opened and the admitting `Start` already routed; the
    /// session's frames flow through this.
    Admitted(Receiver<Frame>),
    /// Load-shed: the `Start` was parked in the re-admission queue;
    /// answer the coordinator with `Busy { retry_after_ms }`.
    Busy {
        /// Suggested re-admission delay.
        retry_after_ms: u32,
    },
    /// Replay of a terminated session id — dropped (a late duplicate,
    /// not a live coordinator to pace).
    Spent,
}

/// The daemon's session table: admission, routing, eviction, GC.
///
/// Exposed (behind `Rc<RefCell>`) so harnesses can inspect live load;
/// the [`Server`] owns all mutation.
pub struct SessionRegistry {
    open: BTreeMap<u64, Entry>,
    /// Recently terminated/evicted session ids (bounded FIFO window):
    /// a duplicated or chaos-delayed `Start` copy arriving after its
    /// session already finished must NOT re-admit a ghost session —
    /// the replay would occupy a slot until eviction and could emit a
    /// spurious abort outcome for a session that already agreed.
    spent: BTreeSet<u64>,
    spent_order: VecDeque<u64>,
    limits: ServeLimits,
    stats: ServeStats,
    /// Arrival order of parked `Start`s (session ids; a popped id no
    /// longer in `queued` is a tombstone of a session admitted
    /// directly in the meantime).
    queue: VecDeque<u64>,
    /// Parked `Start`s by session id — the re-admission backlog. Its
    /// depth scales `retry_after_ms` so paced-out coordinators spread
    /// their retries instead of re-knocking in lockstep.
    queued: BTreeMap<u64, PendingStart>,
}

/// How many terminated session ids the replay window remembers. Start
/// duplicates arrive within a retransmit window of the original, so a
/// shallow-but-wide FIFO is plenty; ids falling off the window behave
/// like unknown sessions again (admissible), keeping memory O(window).
const SPENT_WINDOW: usize = 8192;

/// Most `Start`s parked for re-admission at once; beyond it a refusal
/// is answered with `Busy` alone and the coordinator's paced retry is
/// the only re-admission path (pre-queue behaviour).
const QUEUE_WINDOW: usize = 8192;

/// A parked `Start` not refreshed by a retry within this window is
/// dropped at drain time: its coordinator stopped re-knocking (aborted
/// or died), so admitting it would only burn a slot until idle
/// eviction. Live coordinators retry every few seconds at most
/// (`retry_after_ms` caps at 2 s, the deferred retransmit at 10 s).
const QUEUE_STALE: Duration = Duration::from_secs(20);

impl SessionRegistry {
    fn new(limits: ServeLimits) -> Self {
        SessionRegistry {
            open: BTreeMap::new(),
            spent: BTreeSet::new(),
            spent_order: VecDeque::new(),
            limits,
            stats: ServeStats::default(),
            queue: VecDeque::new(),
            queued: BTreeMap::new(),
        }
    }

    /// Records a session id as terminated (no re-admission while it
    /// stays inside the replay window).
    fn mark_spent(&mut self, session: u64) {
        if self.spent.insert(session) {
            self.spent_order.push_back(session);
            if self.spent_order.len() > SPENT_WINDOW {
                if let Some(old) = self.spent_order.pop_front() {
                    self.spent.remove(&old);
                }
            }
        }
    }

    /// Currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.open.len()
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats.clone()
    }

    /// Routes `frame` to its open session; `false` if none is open.
    fn route(&mut self, frame: Frame, now: Instant) -> Result<(), Frame> {
        match self.open.get_mut(&frame.session) {
            Some(e) => {
                e.last_frame = now;
                e.tx.send(frame);
                Ok(())
            }
            None => Err(frame),
        }
    }

    /// High-water mark: admission stops 1/8 short of the hard cap, so
    /// sessions already in flight keep headroom to finish (shed
    /// earliest, not at the wall). Small caps are unaffected
    /// (`max/8 == 0`).
    fn admit_high(&self) -> usize {
        self.limits.max_sessions - self.limits.max_sessions / 8
    }

    /// The `retry_after_ms` a refused `Start` is answered with: a base
    /// pace scaled by the depth of the re-admission backlog (the
    /// deeper the queue, the longer the suggested pause), plus a
    /// per-session spread so paced coordinators do not re-knock in
    /// lockstep.
    fn retry_after_ms(&self, session: u64) -> u32 {
        const BASE_MS: u64 = 25;
        let high = self.admit_high().max(1) as u64;
        let backlog = self.queued.len() as u64;
        let scaled = BASE_MS + BASE_MS * backlog.saturating_mul(8) / high;
        let spread = session % (BASE_MS + 1);
        (scaled + spread).clamp(BASE_MS, 2_000) as u32
    }

    /// Opens a slot for `session` (caller has checked load and replay)
    /// and returns the frame receiver for its terminal task.
    fn open_slot(&mut self, session: u64, now: Instant) -> Receiver<Frame> {
        let (tx, rx) = channel();
        self.open.insert(session, Entry { tx, last_frame: now, admitted_at: now });
        self.stats.admitted += 1;
        self.stats.peak_open = self.stats.peak_open.max(self.open.len() as u64);
        crate::telemetry::counter_add("serve.admitted", 1);
        crate::telemetry::gauge_set("serve.open", self.open.len() as u64);
        rx
    }

    /// Parks a refused `Start` for FIFO re-admission (or refreshes the
    /// liveness stamp of an already-parked copy).
    fn enqueue(&mut self, frame: Frame, now: Instant) {
        if let Some(p) = self.queued.get_mut(&frame.session) {
            p.refreshed = now;
        } else if self.queue.len() < QUEUE_WINDOW {
            self.queue.push_back(frame.session);
            self.queued.insert(frame.session, PendingStart { frame, refreshed: now });
        }
        crate::telemetry::gauge_set("serve.queue.depth", self.queued.len() as u64);
    }

    /// Admits the longest-parked queued `Start` if a slot is free:
    /// opens its slot, routes the stored frame, and returns the
    /// session id plus frame receiver for the caller to spawn. Stale
    /// and spent entries are skipped. `None` when the registry is at
    /// its high-water mark or the queue is drained.
    fn pop_admission(&mut self, now: Instant) -> Option<(u64, Receiver<Frame>)> {
        while self.open.len() < self.admit_high() {
            let session = self.queue.pop_front()?;
            let Some(pending) = self.queued.remove(&session) else { continue };
            crate::telemetry::gauge_set("serve.queue.depth", self.queued.len() as u64);
            if self.spent.contains(&session) || now.duration_since(pending.refreshed) > QUEUE_STALE
            {
                continue;
            }
            let rx = self.open_slot(session, now);
            if self.route(pending.frame, now).is_err() {
                // Unreachable (the slot was opened on the line above),
                // but dropping the Start is safe: the peer retransmits.
                crate::telemetry::counter_add("serve.route.lost", 1);
            }
            crate::telemetry::counter_add("serve.queue.admitted", 1);
            return Some((session, rx));
        }
        None
    }

    /// Opens a slot for the session of this `Start` if load allows and
    /// the id is not a replay of a terminated session; over the
    /// high-water mark the frame is parked for FIFO re-admission and
    /// the refusal answered with a pacing hint.
    fn admit(&mut self, frame: Frame, now: Instant) -> Admission {
        let session = frame.session;
        if self.spent.contains(&session) {
            self.stats.orphans += 1;
            crate::telemetry::counter_add("serve.orphans", 1);
            return Admission::Spent;
        }
        if self.open.len() >= self.admit_high() {
            self.enqueue(frame, now);
            let retry_after_ms = self.retry_after_ms(session);
            self.stats.rejected += 1;
            self.stats.busy += 1;
            crate::telemetry::counter_add("serve.rejected", 1);
            crate::telemetry::counter_add("serve.busy.sent", 1);
            crate::telemetry::observe("serve.busy.retry_ms", retry_after_ms as u64);
            return Admission::Busy { retry_after_ms };
        }
        // Tombstone any parked copy: the live admission supersedes it.
        self.queued.remove(&session);
        let rx = self.open_slot(session, now);
        if self.route(frame, now).is_err() {
            // Unreachable (the slot was opened on the line above), but
            // dropping the Start is safe: the peer retransmits.
            crate::telemetry::counter_add("serve.route.lost", 1);
        }
        Admission::Admitted(rx)
    }

    /// Removes a terminated session's slot (terminal-state GC) and
    /// remembers the id so Start replays cannot resurrect it.
    fn finish(&mut self, session: u64, outcome: &Result<SessionOutcome, NetError>) {
        let entry = self.open.remove(&session);
        self.mark_spent(session);
        // A session whose slot is already gone was evicted (counted as
        // `evicted`) or swept on socket death — its late outcome,
        // whatever its shape (an eviction usually terminates with
        // `Closed`, but a protocol deadline can race the idle sweep and
        // deliver an `Ok` abort), must not be counted a second time:
        // the stat buckets partition `admitted`.
        let Some(entry) = entry else { return };
        crate::telemetry::observe(
            "serve.session_us",
            entry.admitted_at.elapsed().as_micros() as u64,
        );
        crate::telemetry::gauge_set("serve.open", self.open.len() as u64);
        match outcome {
            Ok(out) if out.completed() => self.stats.completed += 1,
            Ok(_) => self.stats.aborted += 1,
            Err(_) => self.stats.failed += 1,
        }
    }

    /// Drops every session idle longer than the limit; their channels
    /// close and the state machines terminate with [`NetError::Closed`].
    /// An evicted id is spent too: its peer is presumed dead (a live
    /// coordinator would have kept the entry fresh with retransmits).
    fn evict_idle(&mut self, now: Instant) {
        let timeout = self.limits.idle_timeout;
        let mut evicted = Vec::new();
        self.open.retain(|&session, e| {
            let keep = now.duration_since(e.last_frame) < timeout;
            if !keep {
                evicted.push(session);
            }
            keep
        });
        self.stats.evicted += evicted.len() as u64;
        if !evicted.is_empty() {
            crate::telemetry::counter_add("serve.evicted", evicted.len() as u64);
            crate::telemetry::gauge_set("serve.open", self.open.len() as u64);
        }
        for session in evicted {
            self.mark_spent(session);
        }
    }
}

/// Shared control handle of a running [`Server`]: stop it, watch it.
pub struct ServeHandle {
    stop: Rc<Cell<bool>>,
    registry: Rc<RefCell<SessionRegistry>>,
}

impl Clone for ServeHandle {
    fn clone(&self) -> Self {
        ServeHandle { stop: self.stop.clone(), registry: self.registry.clone() }
    }
}

impl ServeHandle {
    /// Asks the serve loop to exit after its current pass.
    pub fn stop(&self) {
        self.stop.set(true);
    }

    /// Currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.registry.borrow().open_sessions()
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ServeStats {
        self.registry.borrow().stats()
    }
}

/// A serve daemon: auto-admits terminal sessions over one transport.
pub struct Server<T> {
    t: SharedTransport<T>,
    cfg: SessionConfig,
    seed: u64,
    registry: Rc<RefCell<SessionRegistry>>,
    stop: Rc<Cell<bool>>,
    outcomes: Option<Sender<SessionOutcome>>,
}

impl<T: Transport + 'static> Server<T> {
    /// Builds a daemon for this node. `cfg` is the session
    /// configuration every admitted round must match (the start-barrier
    /// digest check rejects coordinators that disagree); `seed` feeds
    /// per-session local randomness via [`task_seed`].
    ///
    /// # Panics
    /// Panics when the transport's node *is* the configured coordinator
    /// — a serve daemon answers rounds, it does not initiate them.
    pub fn new(t: SharedTransport<T>, cfg: SessionConfig, seed: u64, limits: ServeLimits) -> Self {
        assert_ne!(
            t.local_node(),
            cfg.coordinator,
            "serve daemons are terminals; run the coordinator role to initiate rounds"
        );
        Server {
            t,
            cfg,
            seed,
            registry: Rc::new(RefCell::new(SessionRegistry::new(limits))),
            stop: Rc::new(Cell::new(false)),
            outcomes: None,
        }
    }

    /// A control handle (clone freely).
    pub fn handle(&self) -> ServeHandle {
        ServeHandle { stop: self.stop.clone(), registry: self.registry.clone() }
    }

    /// Creates the outcome stream: every terminated session's
    /// [`SessionOutcome`] is delivered here (terminations from eviction
    /// and socket errors are not — they carry no outcome).
    pub fn outcomes(&mut self) -> Receiver<SessionOutcome> {
        let (tx, rx) = channel();
        self.outcomes = Some(tx);
        rx
    }

    /// Runs the daemon until [`ServeHandle::stop`] or a socket error.
    /// Returns the lifetime stats.
    pub async fn run(self) -> io::Result<ServeStats> {
        let Server { t, cfg, seed, registry, stop, outcomes } = self;
        let me = t.local_node();
        let limits = registry.borrow().limits;
        // Eviction sweeps ride the pump's timeout so an idle daemon
        // wakes a few times a second, not per tick — and a *busy* pump
        // (woken per batch, not per timeout) still sweeps only once per
        // interval: the sweep is an O(open-sessions) scan, which must
        // not run per received batch.
        let sweep =
            (limits.idle_timeout / 4).clamp(Duration::from_millis(50), Duration::from_secs(1));
        let mut last_sweep = Instant::now();
        loop {
            if stop.get() {
                return Ok(registry.borrow().stats());
            }
            let batch = match rt::timeout(sweep, t.recv_batch(limits.recv_batch)).await {
                Err(rt::Elapsed) => Vec::new(),
                Ok(Err(e)) => {
                    // Socket death: close every session promptly (they
                    // terminate with NetError::Closed) and report.
                    registry.borrow_mut().open.clear();
                    return Err(e);
                }
                Ok(Ok(batch)) => batch,
            };
            let now = Instant::now();
            for frame in batch {
                let mut reg = registry.borrow_mut();
                let frame = match reg.route(frame, now) {
                    Ok(()) => continue,
                    Err(frame) => frame,
                };
                // Unknown session: only a Start from the coordinator
                // admits one (any other frame kind means the session
                // is stale, spoofed, or already terminated here).
                let admissible = frame.sender == cfg.coordinator
                    && matches!(frame.payload, NetPayload::Start { .. });
                if !admissible {
                    reg.stats.orphans += 1;
                    crate::telemetry::counter_add("serve.orphans", 1);
                    continue;
                }
                let session = frame.session;
                let rx = match reg.admit(frame, now) {
                    Admission::Admitted(rx) => rx,
                    Admission::Busy { retry_after_ms } => {
                        // Explicit backpressure instead of a silent
                        // drop: tell the coordinator when to re-knock.
                        // Best-effort — a lost reply just means one
                        // more (paced by its own backoff) Start copy;
                        // the parked frame re-admits meanwhile.
                        let busy = Frame {
                            flags: 0,
                            sender: me,
                            session,
                            seq: 0,
                            payload: NetPayload::Busy { retry_after_ms },
                        };
                        let _ = t.send_to(cfg.coordinator, &busy);
                        continue;
                    }
                    Admission::Spent => continue,
                };
                drop(reg);
                spawn_session(&t, &cfg, &registry, &outcomes, seed, session, rx);
            }
            // Slots freed by terminal-state GC since the last pass are
            // refilled from the parked-Start queue in arrival order —
            // re-admission does not wait for the coordinator's paced
            // retry, and FIFO order keeps sibling daemons' admitted
            // sets aligned (see the module docs on the cross-daemon
            // half-admission deadlock).
            loop {
                let popped = registry.borrow_mut().pop_admission(Instant::now());
                let Some((session, rx)) = popped else { break };
                spawn_session(&t, &cfg, &registry, &outcomes, seed, session, rx);
            }
            let now = Instant::now();
            if now.duration_since(last_sweep) >= sweep {
                last_sweep = now;
                registry.borrow_mut().evict_idle(now);
            }
        }
    }
}

/// Spawns the terminal task of a freshly admitted session (used by
/// both direct admission and queue drain).
fn spawn_session<T: Transport + 'static>(
    t: &SharedTransport<T>,
    cfg: &SessionConfig,
    registry: &Rc<RefCell<SessionRegistry>>,
    outcomes: &Option<Sender<SessionOutcome>>,
    seed: u64,
    session: u64,
    rx: Receiver<Frame>,
) {
    let me = t.local_node();
    let t = t.clone();
    let cfg = cfg.clone();
    let registry = registry.clone();
    let outcomes = outcomes.clone();
    rt::spawn(async move {
        let result = run_terminal(t, rx, session, cfg, task_seed(seed, session, me)).await;
        registry.borrow_mut().finish(session, &result);
        if let (Some(tx), Ok(out)) = (outcomes, result) {
            tx.send(out);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimNet;
    use thinair_netsim::IidMedium;

    fn small_cfg(n_nodes: u8) -> SessionConfig {
        SessionConfig {
            n_nodes,
            payload_len: 4,
            drop_prob: 0.0,
            schedule: thinair_core::round::XSchedule::CoordinatorOnly(6),
            x_settle: Duration::from_millis(20),
            deadline: Duration::from_secs(5),
            ..SessionConfig::default()
        }
    }

    fn start(session: u64) -> Frame {
        Frame { flags: 0, sender: 0, session, seq: 0, payload: NetPayload::Start { digest: 7 } }
    }

    fn must_admit(reg: &mut SessionRegistry, session: u64, now: Instant) -> Receiver<Frame> {
        match reg.admit(start(session), now) {
            Admission::Admitted(rx) => rx,
            Admission::Busy { .. } => panic!("session {session} refused: busy"),
            Admission::Spent => panic!("session {session} refused: spent"),
        }
    }

    #[test]
    fn registry_admits_routes_and_caps() {
        let limits = ServeLimits { max_sessions: 2, ..ServeLimits::default() };
        let mut reg = SessionRegistry::new(limits);
        let now = Instant::now();
        let _rx1 = must_admit(&mut reg, 1, now);
        let _rx2 = must_admit(&mut reg, 2, now);
        let Admission::Busy { retry_after_ms } = reg.admit(start(3), now) else {
            panic!("over capacity must be Busy");
        };
        assert!(retry_after_ms > 0, "busy carries a positive pace");
        assert_eq!(reg.stats().rejected, 1);
        assert_eq!(reg.stats().busy, 1, "every rejection is answered");
        assert_eq!(reg.stats().peak_open, 2);
        let frame = Frame { flags: 0, sender: 0, session: 1, seq: 9, payload: NetPayload::Fin };
        assert!(reg.route(frame.clone(), now).is_ok());
        let stray = Frame { session: 99, ..frame };
        assert!(reg.route(stray, now).is_err());
    }

    #[test]
    fn eviction_sweep_order_is_session_id_order() {
        // Regression: the registry's session table used to be a
        // HashMap, so a sweep that evicted several idle sessions at
        // once marked them spent in RandomState iteration order —
        // different per process, and visible downstream (spent-window
        // rotation, `serve.evicted` interleaving in traces). The table
        // is a BTreeMap now; a batch eviction must walk ascending
        // session ids no matter what order admission happened in.
        let limits = ServeLimits {
            max_sessions: 16,
            idle_timeout: Duration::from_millis(10),
            ..ServeLimits::default()
        };
        let mut reg = SessionRegistry::new(limits);
        let t0 = Instant::now();
        let scrambled = [11u64, 3, 42, 7, 29, 5];
        let _rxs: Vec<_> = scrambled.iter().map(|&s| must_admit(&mut reg, s, t0)).collect();
        reg.evict_idle(t0 + Duration::from_millis(50));
        assert_eq!(reg.stats().evicted, scrambled.len() as u64);
        let spent: Vec<u64> = reg.spent_order.iter().copied().collect();
        let mut sorted = scrambled.to_vec();
        sorted.sort_unstable();
        assert_eq!(spent, sorted, "batch eviction must mark spent in ascending id order");
    }

    #[test]
    fn registry_evicts_idle_sessions_and_closes_their_channels() {
        let limits = ServeLimits {
            max_sessions: 8,
            idle_timeout: Duration::from_millis(10),
            ..ServeLimits::default()
        };
        let mut reg = SessionRegistry::new(limits);
        let t0 = Instant::now();
        let mut rx = must_admit(&mut reg, 7, t0);
        reg.evict_idle(t0 + Duration::from_millis(5));
        assert_eq!(reg.open_sessions(), 1, "young session survives");
        reg.evict_idle(t0 + Duration::from_millis(50));
        assert_eq!(reg.open_sessions(), 0, "idle session evicted");
        assert_eq!(reg.stats().evicted, 1);
        // The channel closed with the entry: after the admitting Start
        // (routed at admission), the session task sees None and
        // terminates with NetError::Closed.
        rt::block_on(async {
            assert!(matches!(
                rx.recv().await,
                Some(Frame { payload: NetPayload::Start { .. }, .. })
            ));
            assert_eq!(rx.recv().await, None);
        });
        // Its termination is not double-counted as a failure.
        reg.finish(7, &Err(NetError::Closed));
        assert_eq!(reg.stats().failed, 0);
        // And a replayed Start for the evicted id cannot resurrect it.
        assert!(
            matches!(reg.admit(start(7), t0), Admission::Spent),
            "spent ids are not re-admissible"
        );
        assert_eq!(reg.stats().orphans, 1);
        // A protocol-deadline abort racing the idle sweep is not
        // double-counted: once evicted, the late outcome is dropped.
        let _rx2 = must_admit(&mut reg, 8, t0);
        reg.evict_idle(t0 + Duration::from_millis(50));
        let late = crate::session::SessionOutcome::aborted(
            8,
            1,
            4,
            crate::session::AbortReason::Deadline { phase: "x settle" },
            None,
        );
        reg.finish(8, &Ok(late));
        assert_eq!(reg.stats().aborted, 0, "evicted sessions count once, as evicted");
        assert_eq!(reg.stats().evicted, 2);
    }

    /// A duplicated/delayed `Start` arriving after its session finished
    /// must not re-admit a ghost session under the same id.
    #[test]
    fn registry_refuses_start_replays_of_finished_sessions() {
        let mut reg = SessionRegistry::new(ServeLimits::default());
        let now = Instant::now();
        let _rx = must_admit(&mut reg, 42, now);
        let outcome = SessionOutcome {
            session: 42,
            node: 1,
            l: 1,
            m: 2,
            n_packets: 4,
            secret: Vec::new(),
            abort: None,
            trace: None,
        };
        reg.finish(42, &Ok(outcome));
        assert_eq!(reg.open_sessions(), 0);
        assert!(matches!(reg.admit(start(42), now), Admission::Spent), "finished ids are spent");
        assert_eq!(reg.stats().admitted, 1, "the replay admitted nothing");
        // Fresh ids are unaffected, and the window is bounded.
        let _rx43 = must_admit(&mut reg, 43, now);
        for s in 100..100 + (SPENT_WINDOW as u64) + 10 {
            reg.mark_spent(s);
        }
        assert!(reg.spent.len() <= SPENT_WINDOW);
    }

    /// Shedding starts at the high-water mark (7/8 of the cap), not at
    /// the wall, and the suggested pace grows with the overload.
    #[test]
    fn registry_sheds_early_with_load_scaled_pace() {
        let limits = ServeLimits { max_sessions: 64, ..ServeLimits::default() };
        let mut reg = SessionRegistry::new(limits);
        let now = Instant::now();
        let high = 64 - 64 / 8;
        let mut rxs = Vec::new();
        for s in 0..high as u64 {
            rxs.push(must_admit(&mut reg, s, now));
        }
        assert_eq!(reg.open_sessions(), high, "full up to the high-water mark");
        let Admission::Busy { retry_after_ms: at_high } = reg.admit(start(1_000), now) else {
            panic!("the high-water mark sheds");
        };
        // As more coordinators pile up paced-out, the suggested pace
        // grows (same session id, so the spread term is fixed).
        for s in 1_001..1_400 {
            assert!(matches!(reg.admit(start(s), now), Admission::Busy { .. }));
        }
        let Admission::Busy { retry_after_ms: deep } = reg.admit(start(1_000), now) else {
            panic!("still shedding");
        };
        assert!(deep > at_high, "pace scales with backlog: {deep} vs {at_high}");
        assert_eq!(reg.stats().busy, reg.stats().rejected);
    }

    /// A `Start` refused at the high-water mark is parked and admitted
    /// from the queue — in arrival order — as slots free; stale
    /// entries (coordinator stopped re-knocking) are dropped.
    #[test]
    fn registry_readmits_parked_starts_in_arrival_order() {
        let limits = ServeLimits { max_sessions: 8, ..ServeLimits::default() };
        let mut reg = SessionRegistry::new(limits);
        let now = Instant::now();
        let high = 8 - 8 / 8;
        for s in 0..high as u64 {
            let _rx = must_admit(&mut reg, s, now);
        }
        assert!(matches!(reg.admit(start(20), now), Admission::Busy { .. }));
        assert!(matches!(reg.admit(start(21), now), Admission::Busy { .. }));
        // Nothing drains while the registry sits at the high-water mark.
        assert!(reg.pop_admission(now).is_none());
        // One slot frees -> the longest-parked session (20) re-admits,
        // and only that one (the mark is reached again).
        reg.finish(0, &Err(NetError::Closed));
        let (session, _rx20) = reg.pop_admission(now).expect("queued start re-admits");
        assert_eq!(session, 20, "FIFO: arrival order");
        assert!(reg.pop_admission(now).is_none());
        // A parked entry whose coordinator stopped refreshing it is
        // dropped at drain time instead of burning a slot.
        reg.finish(1, &Err(NetError::Closed));
        assert!(reg.pop_admission(now + QUEUE_STALE + Duration::from_secs(1)).is_none());
        assert_eq!(reg.open_sessions(), high - 1, "stale entry admitted nothing");
        // Refusals answered while parked still count 1:1.
        assert_eq!(reg.stats().busy, reg.stats().rejected);
    }

    /// End-to-end over the simulator: a coordinator drives concurrent
    /// sessions against a serve daemon that knew nothing in advance.
    #[test]
    fn serve_daemon_completes_auto_admitted_sessions() {
        let cfg = small_cfg(2);
        let net = SimNet::new(IidMedium::symmetric(2, 0.0, 1), 2);
        let coord = crate::node::Node::new(net.transport(0));
        let mut server = Server::new(
            SharedTransport::new(net.transport(1)),
            cfg.clone(),
            11,
            ServeLimits::default(),
        );
        let handle = server.handle();
        let mut outcomes = server.outcomes();
        const SESSIONS: u64 = 8;
        let got = rt::block_on(async move {
            coord.start_pump();
            rt::spawn(server.run());
            let mut coords = Vec::new();
            for s in 1..=SESSIONS {
                let coord = coord.clone();
                let cfg = cfg.clone();
                coords.push(rt::spawn(async move {
                    coord.coordinate(s, cfg, task_seed(11, s, 0)).await
                }));
            }
            let mut got = Vec::new();
            for c in coords {
                let out = c.await.expect("coordinator side runs cleanly");
                assert!(out.completed(), "coordinator aborted: {:?}", out.abort);
                got.push(out);
            }
            // Collect the daemon's outcomes for the same sessions.
            let mut served = Vec::new();
            while served.len() < SESSIONS as usize {
                let out = rt::timeout(Duration::from_secs(5), outcomes.recv())
                    .await
                    .expect("daemon outcomes arrive")
                    .expect("stream open");
                assert!(out.completed(), "daemon side aborted: {:?}", out.abort);
                served.push(out);
            }
            handle.stop();
            let stats = handle.stats();
            assert_eq!(stats.admitted, SESSIONS);
            assert_eq!(stats.completed, SESSIONS);
            assert_eq!(stats.rejected, 0);
            (got, served)
        });
        let (coord_outs, served) = got;
        // Every pair agrees on the secret.
        for co in &coord_outs {
            let so = served.iter().find(|o| o.session == co.session).expect("served");
            assert_eq!(so.secret, co.secret, "session {:#x} diverged", co.session);
        }
    }
}
