//! Serve mode: one long-lived daemon, one socket, thousands of
//! concurrent auto-admitted sessions.
//!
//! [`crate::node::Node`] multiplexes sessions a caller *opens
//! explicitly*. A deployment at the paper's pitch — cheap secret
//! agreement for many device pairs on a shared medium — needs the dual:
//! a terminal daemon that sits on its socket and serves whatever group
//! rounds coordinators initiate, without a human opening each one. That
//! is [`Server`]:
//!
//! * **Admission** — a frame for an unknown session spawns a terminal
//!   state machine iff it is a `Start` from the configured coordinator
//!   and the registry has capacity ([`ServeLimits::max_sessions`]);
//!   anything else is counted and dropped. A rejected session costs the
//!   coordinator a retransmitted start barrier, nothing more — it can
//!   be re-admitted the moment load drains.
//! * **Budgets** — every admitted session inherits the
//!   [`SessionConfig`] deadline / attempt budgets, so no session can
//!   outlive its configured worst case.
//! * **Idle eviction** — a session whose peer went silent (crashed
//!   coordinator, dead link) is evicted after
//!   [`ServeLimits::idle_timeout`] without traffic: its channel closes,
//!   the state machine terminates with [`NetError::Closed`], and the
//!   slot frees *before* the protocol deadline would have reclaimed it.
//! * **Terminal-state GC** — completed or aborted sessions leave the
//!   registry immediately (their outcome goes to the
//!   [`Server::outcomes`] channel), so registry size tracks *live*
//!   sessions only.
//!
//! The pump is batched ([`SharedTransport::recv_batch`]): one wakeup
//! drains the whole socket backlog and routes it under a single borrow.
//! Combined with the waker-based executor ([`crate::rt`]), an idle
//! daemon with thousands of open sessions polls O(1) tasks per tick.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::driver::task_seed;
use crate::frame::{Frame, NetPayload};
use crate::rt;
use crate::rt::chan::{channel, Receiver, Sender};
use crate::session::{NetError, SessionConfig, SessionOutcome};
use crate::terminal::run_terminal;
use crate::transport::{SharedTransport, Transport, DEFAULT_RECV_BATCH};

/// Resource limits of one serve daemon.
#[derive(Clone, Copy, Debug)]
pub struct ServeLimits {
    /// Most sessions live at once; `Start`s beyond it are rejected
    /// (counted, re-admittable on the coordinator's retransmit).
    pub max_sessions: usize,
    /// Evict a session after this long without a single frame.
    pub idle_timeout: Duration,
    /// Most frames one pump pass drains (bounds per-pass latency).
    pub recv_batch: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_sessions: 8192,
            idle_timeout: Duration::from_secs(10),
            recv_batch: DEFAULT_RECV_BATCH,
        }
    }
}

/// Aggregate counters of one daemon's lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions admitted (a terminal task was spawned).
    pub admitted: u64,
    /// `Start`s refused because the registry was at capacity.
    pub rejected: u64,
    /// Admitted sessions that completed with a usable outcome.
    pub completed: u64,
    /// Admitted sessions that terminated with a clean structured abort.
    pub aborted: u64,
    /// Sessions evicted for idleness.
    pub evicted: u64,
    /// Admitted sessions that died on an infrastructure error.
    pub failed: u64,
    /// Frames dropped because they belonged to no session and could not
    /// admit one (wrong kind, wrong sender, or already terminated).
    pub orphans: u64,
    /// High-water mark of concurrently open sessions.
    pub peak_open: u64,
}

struct Entry {
    tx: Sender<Frame>,
    last_frame: Instant,
    /// Admission time — anchors the `serve.session_us` duration
    /// histogram when the session terminates.
    admitted_at: Instant,
}

/// The daemon's session table: admission, routing, eviction, GC.
///
/// Exposed (behind `Rc<RefCell>`) so harnesses can inspect live load;
/// the [`Server`] owns all mutation.
pub struct SessionRegistry {
    open: HashMap<u64, Entry>,
    /// Recently terminated/evicted session ids (bounded FIFO window):
    /// a duplicated or chaos-delayed `Start` copy arriving after its
    /// session already finished must NOT re-admit a ghost session —
    /// the replay would occupy a slot until eviction and could emit a
    /// spurious abort outcome for a session that already agreed.
    spent: HashSet<u64>,
    spent_order: VecDeque<u64>,
    limits: ServeLimits,
    stats: ServeStats,
}

/// How many terminated session ids the replay window remembers. Start
/// duplicates arrive within a retransmit window of the original, so a
/// shallow-but-wide FIFO is plenty; ids falling off the window behave
/// like unknown sessions again (admissible), keeping memory O(window).
const SPENT_WINDOW: usize = 8192;

impl SessionRegistry {
    fn new(limits: ServeLimits) -> Self {
        SessionRegistry {
            open: HashMap::new(),
            spent: HashSet::new(),
            spent_order: VecDeque::new(),
            limits,
            stats: ServeStats::default(),
        }
    }

    /// Records a session id as terminated (no re-admission while it
    /// stays inside the replay window).
    fn mark_spent(&mut self, session: u64) {
        if self.spent.insert(session) {
            self.spent_order.push_back(session);
            if self.spent_order.len() > SPENT_WINDOW {
                let old = self.spent_order.pop_front().expect("nonempty");
                self.spent.remove(&old);
            }
        }
    }

    /// Currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.open.len()
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats.clone()
    }

    /// Routes `frame` to its open session; `false` if none is open.
    fn route(&mut self, frame: Frame, now: Instant) -> Result<(), Frame> {
        match self.open.get_mut(&frame.session) {
            Some(e) => {
                e.last_frame = now;
                e.tx.send(frame);
                Ok(())
            }
            None => Err(frame),
        }
    }

    /// Opens a slot for `session` if capacity allows and the id is not
    /// a replay of a terminated session.
    fn admit(&mut self, session: u64, now: Instant) -> Option<Receiver<Frame>> {
        if self.spent.contains(&session) {
            self.stats.orphans += 1;
            crate::telemetry::counter_add("serve.orphans", 1);
            return None;
        }
        if self.open.len() >= self.limits.max_sessions {
            self.stats.rejected += 1;
            crate::telemetry::counter_add("serve.rejected", 1);
            return None;
        }
        let (tx, rx) = channel();
        self.open.insert(session, Entry { tx, last_frame: now, admitted_at: now });
        self.stats.admitted += 1;
        self.stats.peak_open = self.stats.peak_open.max(self.open.len() as u64);
        crate::telemetry::counter_add("serve.admitted", 1);
        crate::telemetry::gauge_set("serve.open", self.open.len() as u64);
        Some(rx)
    }

    /// Removes a terminated session's slot (terminal-state GC) and
    /// remembers the id so Start replays cannot resurrect it.
    fn finish(&mut self, session: u64, outcome: &Result<SessionOutcome, NetError>) {
        let entry = self.open.remove(&session);
        self.mark_spent(session);
        // A session whose slot is already gone was evicted (counted as
        // `evicted`) or swept on socket death — its late outcome,
        // whatever its shape (an eviction usually terminates with
        // `Closed`, but a protocol deadline can race the idle sweep and
        // deliver an `Ok` abort), must not be counted a second time:
        // the stat buckets partition `admitted`.
        let Some(entry) = entry else { return };
        crate::telemetry::observe(
            "serve.session_us",
            entry.admitted_at.elapsed().as_micros() as u64,
        );
        crate::telemetry::gauge_set("serve.open", self.open.len() as u64);
        match outcome {
            Ok(out) if out.completed() => self.stats.completed += 1,
            Ok(_) => self.stats.aborted += 1,
            Err(_) => self.stats.failed += 1,
        }
    }

    /// Drops every session idle longer than the limit; their channels
    /// close and the state machines terminate with [`NetError::Closed`].
    /// An evicted id is spent too: its peer is presumed dead (a live
    /// coordinator would have kept the entry fresh with retransmits).
    fn evict_idle(&mut self, now: Instant) {
        let timeout = self.limits.idle_timeout;
        let mut evicted = Vec::new();
        self.open.retain(|&session, e| {
            let keep = now.duration_since(e.last_frame) < timeout;
            if !keep {
                evicted.push(session);
            }
            keep
        });
        self.stats.evicted += evicted.len() as u64;
        if !evicted.is_empty() {
            crate::telemetry::counter_add("serve.evicted", evicted.len() as u64);
            crate::telemetry::gauge_set("serve.open", self.open.len() as u64);
        }
        for session in evicted {
            self.mark_spent(session);
        }
    }
}

/// Shared control handle of a running [`Server`]: stop it, watch it.
pub struct ServeHandle {
    stop: Rc<Cell<bool>>,
    registry: Rc<RefCell<SessionRegistry>>,
}

impl Clone for ServeHandle {
    fn clone(&self) -> Self {
        ServeHandle { stop: self.stop.clone(), registry: self.registry.clone() }
    }
}

impl ServeHandle {
    /// Asks the serve loop to exit after its current pass.
    pub fn stop(&self) {
        self.stop.set(true);
    }

    /// Currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.registry.borrow().open_sessions()
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ServeStats {
        self.registry.borrow().stats()
    }
}

/// A serve daemon: auto-admits terminal sessions over one transport.
pub struct Server<T> {
    t: SharedTransport<T>,
    cfg: SessionConfig,
    seed: u64,
    registry: Rc<RefCell<SessionRegistry>>,
    stop: Rc<Cell<bool>>,
    outcomes: Option<Sender<SessionOutcome>>,
}

impl<T: Transport + 'static> Server<T> {
    /// Builds a daemon for this node. `cfg` is the session
    /// configuration every admitted round must match (the start-barrier
    /// digest check rejects coordinators that disagree); `seed` feeds
    /// per-session local randomness via [`task_seed`].
    ///
    /// # Panics
    /// Panics when the transport's node *is* the configured coordinator
    /// — a serve daemon answers rounds, it does not initiate them.
    pub fn new(t: SharedTransport<T>, cfg: SessionConfig, seed: u64, limits: ServeLimits) -> Self {
        assert_ne!(
            t.local_node(),
            cfg.coordinator,
            "serve daemons are terminals; run the coordinator role to initiate rounds"
        );
        Server {
            t,
            cfg,
            seed,
            registry: Rc::new(RefCell::new(SessionRegistry::new(limits))),
            stop: Rc::new(Cell::new(false)),
            outcomes: None,
        }
    }

    /// A control handle (clone freely).
    pub fn handle(&self) -> ServeHandle {
        ServeHandle { stop: self.stop.clone(), registry: self.registry.clone() }
    }

    /// Creates the outcome stream: every terminated session's
    /// [`SessionOutcome`] is delivered here (terminations from eviction
    /// and socket errors are not — they carry no outcome).
    pub fn outcomes(&mut self) -> Receiver<SessionOutcome> {
        let (tx, rx) = channel();
        self.outcomes = Some(tx);
        rx
    }

    /// Runs the daemon until [`ServeHandle::stop`] or a socket error.
    /// Returns the lifetime stats.
    pub async fn run(self) -> io::Result<ServeStats> {
        let Server { t, cfg, seed, registry, stop, outcomes } = self;
        let me = t.local_node();
        let limits = registry.borrow().limits;
        // Eviction sweeps ride the pump's timeout so an idle daemon
        // wakes a few times a second, not per tick — and a *busy* pump
        // (woken per batch, not per timeout) still sweeps only once per
        // interval: the sweep is an O(open-sessions) scan, which must
        // not run per received batch.
        let sweep =
            (limits.idle_timeout / 4).clamp(Duration::from_millis(50), Duration::from_secs(1));
        let mut last_sweep = Instant::now();
        loop {
            if stop.get() {
                return Ok(registry.borrow().stats());
            }
            let batch = match rt::timeout(sweep, t.recv_batch(limits.recv_batch)).await {
                Err(rt::Elapsed) => Vec::new(),
                Ok(Err(e)) => {
                    // Socket death: close every session promptly (they
                    // terminate with NetError::Closed) and report.
                    registry.borrow_mut().open.clear();
                    return Err(e);
                }
                Ok(Ok(batch)) => batch,
            };
            let now = Instant::now();
            for frame in batch {
                let mut reg = registry.borrow_mut();
                let frame = match reg.route(frame, now) {
                    Ok(()) => continue,
                    Err(frame) => frame,
                };
                // Unknown session: only a Start from the coordinator
                // admits one (any other frame kind means the session
                // is stale, spoofed, or already terminated here).
                let admissible = frame.sender == cfg.coordinator
                    && matches!(frame.payload, NetPayload::Start { .. });
                if !admissible {
                    reg.stats.orphans += 1;
                    crate::telemetry::counter_add("serve.orphans", 1);
                    continue;
                }
                let session = frame.session;
                let Some(rx) = reg.admit(session, now) else { continue };
                reg.route(frame, now).expect("slot just opened");
                drop(reg);
                let t = t.clone();
                let cfg = cfg.clone();
                let registry = registry.clone();
                let outcomes = outcomes.clone();
                rt::spawn(async move {
                    let result =
                        run_terminal(t, rx, session, cfg, task_seed(seed, session, me)).await;
                    registry.borrow_mut().finish(session, &result);
                    if let (Some(tx), Ok(out)) = (outcomes, result) {
                        tx.send(out);
                    }
                });
            }
            let now = Instant::now();
            if now.duration_since(last_sweep) >= sweep {
                last_sweep = now;
                registry.borrow_mut().evict_idle(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimNet;
    use thinair_netsim::IidMedium;

    fn small_cfg(n_nodes: u8) -> SessionConfig {
        SessionConfig {
            n_nodes,
            payload_len: 4,
            drop_prob: 0.0,
            schedule: thinair_core::round::XSchedule::CoordinatorOnly(6),
            x_settle: Duration::from_millis(20),
            deadline: Duration::from_secs(5),
            ..SessionConfig::default()
        }
    }

    #[test]
    fn registry_admits_routes_and_caps() {
        let limits = ServeLimits { max_sessions: 2, ..ServeLimits::default() };
        let mut reg = SessionRegistry::new(limits);
        let now = Instant::now();
        let _rx1 = reg.admit(1, now).expect("capacity");
        let _rx2 = reg.admit(2, now).expect("capacity");
        assert!(reg.admit(3, now).is_none(), "over capacity");
        assert_eq!(reg.stats().rejected, 1);
        assert_eq!(reg.stats().peak_open, 2);
        let frame = Frame { flags: 0, sender: 0, session: 1, seq: 9, payload: NetPayload::Fin };
        assert!(reg.route(frame.clone(), now).is_ok());
        let stray = Frame { session: 99, ..frame };
        assert!(reg.route(stray, now).is_err());
    }

    #[test]
    fn registry_evicts_idle_sessions_and_closes_their_channels() {
        let limits = ServeLimits {
            max_sessions: 8,
            idle_timeout: Duration::from_millis(10),
            ..ServeLimits::default()
        };
        let mut reg = SessionRegistry::new(limits);
        let t0 = Instant::now();
        let mut rx = reg.admit(7, t0).expect("capacity");
        reg.evict_idle(t0 + Duration::from_millis(5));
        assert_eq!(reg.open_sessions(), 1, "young session survives");
        reg.evict_idle(t0 + Duration::from_millis(50));
        assert_eq!(reg.open_sessions(), 0, "idle session evicted");
        assert_eq!(reg.stats().evicted, 1);
        // The channel closed with the entry: the session task sees None
        // and terminates with NetError::Closed.
        rt::block_on(async { assert_eq!(rx.recv().await, None) });
        // Its termination is not double-counted as a failure.
        reg.finish(7, &Err(NetError::Closed));
        assert_eq!(reg.stats().failed, 0);
        // And a replayed Start for the evicted id cannot resurrect it.
        assert!(reg.admit(7, t0).is_none(), "spent ids are not re-admissible");
        assert_eq!(reg.stats().orphans, 1);
        // A protocol-deadline abort racing the idle sweep is not
        // double-counted: once evicted, the late outcome is dropped.
        let _rx2 = reg.admit(8, t0).expect("capacity");
        reg.evict_idle(t0 + Duration::from_millis(50));
        let late = crate::session::SessionOutcome::aborted(
            8,
            1,
            4,
            crate::session::AbortReason::Deadline { phase: "x settle" },
            None,
        );
        reg.finish(8, &Ok(late));
        assert_eq!(reg.stats().aborted, 0, "evicted sessions count once, as evicted");
        assert_eq!(reg.stats().evicted, 2);
    }

    /// A duplicated/delayed `Start` arriving after its session finished
    /// must not re-admit a ghost session under the same id.
    #[test]
    fn registry_refuses_start_replays_of_finished_sessions() {
        let mut reg = SessionRegistry::new(ServeLimits::default());
        let now = Instant::now();
        let _rx = reg.admit(42, now).expect("capacity");
        let outcome = SessionOutcome {
            session: 42,
            node: 1,
            l: 1,
            m: 2,
            n_packets: 4,
            secret: Vec::new(),
            abort: None,
            trace: None,
        };
        reg.finish(42, &Ok(outcome));
        assert_eq!(reg.open_sessions(), 0);
        assert!(reg.admit(42, now).is_none(), "finished ids are spent");
        assert_eq!(reg.stats().admitted, 1, "the replay admitted nothing");
        // Fresh ids are unaffected, and the window is bounded.
        assert!(reg.admit(43, now).is_some());
        for s in 100..100 + (SPENT_WINDOW as u64) + 10 {
            reg.mark_spent(s);
        }
        assert!(reg.spent.len() <= SPENT_WINDOW);
    }

    /// End-to-end over the simulator: a coordinator drives concurrent
    /// sessions against a serve daemon that knew nothing in advance.
    #[test]
    fn serve_daemon_completes_auto_admitted_sessions() {
        let cfg = small_cfg(2);
        let net = SimNet::new(IidMedium::symmetric(2, 0.0, 1), 2);
        let coord = crate::node::Node::new(net.transport(0));
        let mut server = Server::new(
            SharedTransport::new(net.transport(1)),
            cfg.clone(),
            11,
            ServeLimits::default(),
        );
        let handle = server.handle();
        let mut outcomes = server.outcomes();
        const SESSIONS: u64 = 8;
        let got = rt::block_on(async move {
            coord.start_pump();
            rt::spawn(server.run());
            let mut coords = Vec::new();
            for s in 1..=SESSIONS {
                let coord = coord.clone();
                let cfg = cfg.clone();
                coords.push(rt::spawn(async move {
                    coord.coordinate(s, cfg, task_seed(11, s, 0)).await
                }));
            }
            let mut got = Vec::new();
            for c in coords {
                let out = c.await.expect("coordinator side runs cleanly");
                assert!(out.completed(), "coordinator aborted: {:?}", out.abort);
                got.push(out);
            }
            // Collect the daemon's outcomes for the same sessions.
            let mut served = Vec::new();
            while served.len() < SESSIONS as usize {
                let out = rt::timeout(Duration::from_secs(5), outcomes.recv())
                    .await
                    .expect("daemon outcomes arrive")
                    .expect("stream open");
                assert!(out.completed(), "daemon side aborted: {:?}", out.abort);
                served.push(out);
            }
            handle.stop();
            let stats = handle.stats();
            assert_eq!(stats.admitted, SESSIONS);
            assert_eq!(stats.completed, SESSIONS);
            assert_eq!(stats.rejected, 0);
            (got, served)
        });
        let (coord_outs, served) = got;
        // Every pair agrees on the secret.
        for co in &coord_outs {
            let so = served.iter().find(|o| o.session == co.session).expect("served");
            assert_eq!(so.secret, co.secret, "session {:#x} diverged", co.session);
        }
    }
}
