//! The chaos layer: applying a [`FaultPlan`] to simulated frame traffic.
//!
//! [`crate::transport::SimNet`] built with
//! [`crate::transport::SimNet::with_faults`] routes every transmission
//! through a [`ChaosState`], which turns the *specification* in
//! `thinair_netsim::fault` into concrete frame actions:
//!
//! * per-frame verdicts (drop / bit-corrupt / duplicate / delay) are
//!   looked up by **frame identity** — `(link, session, sender
//!   sequence)` — so they are pure functions of the fault seed,
//!   independent of task scheduling, and identical for every
//!   retransmission of the same frame;
//! * corruption actually runs the bytes through [`Frame::decode`]: the
//!   mangled copy is delivered only if the codec (wrongly) accepts it,
//!   so the CRC rejection path is exercised on the live hot path, not
//!   just in fuzz tests;
//! * delayed frames sit in a hold-back buffer and release after the
//!   configured number of subsequent transmissions — which is how a
//!   one-slot delay becomes a classic reorder;
//! * crash and late-join are session-scoped node lifecycle faults,
//!   triggered at protocol milestones (sender sequence numbers), so the
//!   injection point is reproducible;
//! * burst partitions black out a directed link for a whole session;
//! * ACK-loss bursts swallow the first N acknowledgement frames on a
//!   directed link (data flows, receipts don't) — the targeted attack
//!   on the reliable layer's RTT estimator and backoff re-arm.
//!
//! Everything injected is counted in [`FaultStats`]. The counters are
//! timing-class measurements: retransmissions re-draw their (identical)
//! verdicts, so the totals depend on how often the reliable layer had
//! to retry.

use std::collections::{BTreeMap, BTreeSet};

use thinair_core::wire::Message;
use thinair_netsim::fault::corrupt_bit_seed;
use thinair_netsim::{FaultPlan, FrameClass};

use crate::frame::{Frame, NetPayload};

/// Counters for every fault the chaos layer injected (timing-class:
/// totals include re-drawn verdicts on retransmissions).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Deliveries suppressed by the per-frame drop schedule.
    pub dropped: u64,
    /// Corrupted copies the receiving codec rejected (the expected
    /// fate: CRC-32 catches the flip).
    pub corrupted_rejected: u64,
    /// Corrupted copies that still decoded to a structurally valid
    /// frame (astronomically rare; delivered, because a real receiver
    /// would accept them too).
    pub corrupt_delivered: u64,
    /// Extra copies delivered by the duplication schedule.
    pub duplicated: u64,
    /// Frames held back by the reorder/delay schedule.
    pub delayed: u64,
    /// Deliveries suppressed by session-scoped link partitions.
    pub partition_dropped: u64,
    /// Frames swallowed because a node had crashed in that session
    /// (sends and deliveries combined).
    pub crash_dropped: u64,
    /// Deliveries suppressed before a late-joining node woke up.
    pub prejoin_dropped: u64,
    /// ACK frames suppressed by a per-link ACK-loss burst.
    pub ack_burst_dropped: u64,
}

impl FaultStats {
    /// Sum of every injected fault event.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.corrupted_rejected
            + self.corrupt_delivered
            + self.duplicated
            + self.delayed
            + self.partition_dropped
            + self.crash_dropped
            + self.prejoin_dropped
            + self.ack_burst_dropped
    }
}

/// A frame held back by the delay schedule.
struct Held {
    release_at: u64,
    rx: u8,
    frame: Frame,
}

/// Mutable chaos bookkeeping for one simulated network.
pub struct ChaosState {
    plan: FaultPlan,
    seed: u64,
    coordinator: u8,
    /// `(session, node)` pairs that have crashed.
    crashed: BTreeSet<(u64, u8)>,
    /// `(session, node)` late-joiners → deliveries suppressed so far.
    /// Removed from the map once awake.
    sleeping: BTreeMap<(u64, u8), u32>,
    /// `(session, node)` late-joiners that have woken up.
    joined: BTreeSet<(u64, u8)>,
    /// `(session, link)` ACK bursts in progress → ACKs suppressed so
    /// far. Removed once the burst has run its configured length.
    ack_bursting: BTreeMap<(u64, (u8, u8)), u32>,
    /// `(session, link)` ACK bursts that have completed (link healed).
    ack_healed: BTreeSet<(u64, (u8, u8))>,
    /// Hold-back buffer for delayed frames.
    held: Vec<Held>,
    /// Global transmission counter (drives delay release).
    clock: u64,
    /// Injection counters.
    pub stats: FaultStats,
}

/// The injector's view of one frame: its fault class and the index that
/// keys its verdict (the sender sequence; for ACKs, the acknowledged
/// sequence, so each distinct ACK draws its own fate).
fn classify(frame: &Frame) -> (FrameClass, u64) {
    match &frame.payload {
        NetPayload::Ack { seq } => (FrameClass::Ack, *seq as u64),
        NetPayload::Proto(Message::XPacket { .. }) => (FrameClass::X, frame.seq as u64),
        NetPayload::Proto(Message::ZPacket { .. }) => (FrameClass::Z, frame.seq as u64),
        _ => (FrameClass::Control, frame.seq as u64),
    }
}

impl ChaosState {
    /// Chaos bookkeeping for `plan` under `seed`. Lifecycle faults never
    /// select the `coordinator` (the plan's crash/late-join knobs model
    /// *terminal* misbehavior; a dead coordinator trivially aborts
    /// everyone).
    pub fn new(plan: FaultPlan, seed: u64, coordinator: u8) -> Self {
        plan.validate().expect("invalid fault plan");
        ChaosState {
            plan,
            seed,
            coordinator,
            crashed: BTreeSet::new(),
            sleeping: BTreeMap::new(),
            joined: BTreeSet::new(),
            ack_bursting: BTreeMap::new(),
            ack_healed: BTreeSet::new(),
            held: Vec::new(),
            clock: 0,
            stats: FaultStats::default(),
        }
    }

    fn crash_after(&self, session: u64, node: u8) -> Option<u32> {
        if node == self.coordinator {
            return None;
        }
        self.plan.crash_after(self.seed, session, node as usize)
    }

    /// Whether the node is still asleep (late join pending) in this
    /// session; bumps the suppression counter when `count` is set, and
    /// wakes the node once the counter reaches the plan's threshold.
    fn asleep(&mut self, session: u64, node: u8, count: bool) -> bool {
        if node == self.coordinator || self.joined.contains(&(session, node)) {
            return false;
        }
        let Some(after) = self.plan.join_after(self.seed, session, node as usize) else {
            return false;
        };
        let suppressed = self.sleeping.entry((session, node)).or_insert(0);
        if *suppressed >= after {
            self.sleeping.remove(&(session, node));
            self.joined.insert((session, node));
            return false;
        }
        if count {
            *suppressed += 1;
        }
        true
    }

    /// Whether the `(session, link)` ACK burst is still active — counts
    /// the suppression and heals the link once the configured burst
    /// length has been consumed (mirroring the late-join counter: the
    /// burst is measured in suppressed deliveries, so it cannot be
    /// waited out without the reliable layer actually retransmitting).
    fn ack_bursting(&mut self, session: u64, link: (u8, u8)) -> bool {
        let key = (session, link);
        if self.ack_healed.contains(&key) {
            return false;
        }
        let Some(len) =
            self.plan.ack_burst_len(self.seed, (link.0 as usize, link.1 as usize), session)
        else {
            return false;
        };
        let suppressed = self.ack_bursting.entry(key).or_insert(0);
        if *suppressed >= len {
            self.ack_bursting.remove(&key);
            self.ack_healed.insert(key);
            return false;
        }
        *suppressed += 1;
        true
    }

    /// Advances the delay clock by one transmission. Call once per
    /// `Medium`-level transmit, before deciding deliveries.
    pub fn tick(&mut self) {
        self.clock += 1;
    }

    /// Whether the transmitting node is allowed to put `frame` on the
    /// air (false: the node has crashed in this session — or crashes
    /// *now*, this frame being its trigger milestone — or has not
    /// joined yet).
    pub fn allow_send(&mut self, frame: &Frame) -> bool {
        let key = (frame.session, frame.sender);
        if self.crashed.contains(&key) {
            self.stats.crash_dropped += 1;
            return false;
        }
        if let Some(after) = self.crash_after(frame.session, frame.sender) {
            if frame.seq != 0 && frame.seq >= after {
                self.crashed.insert(key);
                self.stats.crash_dropped += 1;
                return false;
            }
        }
        if self.asleep(frame.session, frame.sender, false) {
            self.stats.prejoin_dropped += 1;
            return false;
        }
        true
    }

    /// Decides what receiver `rx` gets out of `frame` transmitted by
    /// `tx`: zero, one or two copies, immediate or held back.
    pub fn deliver(&mut self, frame: &Frame, tx: u8, rx: u8) -> Vec<(u32, Frame)> {
        let session = frame.session;
        if self.crashed.contains(&(session, rx)) {
            self.stats.crash_dropped += 1;
            return Vec::new();
        }
        if self.asleep(session, rx, true) {
            self.stats.prejoin_dropped += 1;
            return Vec::new();
        }
        let link = (tx as usize, rx as usize);
        if self.plan.partitioned(self.seed, link, session) {
            self.stats.partition_dropped += 1;
            return Vec::new();
        }
        let (class, index) = classify(frame);
        if class == FrameClass::Ack && self.ack_bursting(session, (tx, rx)) {
            self.stats.ack_burst_dropped += 1;
            return Vec::new();
        }
        let faults = self.plan.frame_faults(self.seed, link, session, index, class);
        if faults.drop {
            self.stats.dropped += 1;
            return Vec::new();
        }
        let copy = if faults.corrupt {
            match self.corrupt(frame, link, index) {
                Some(mangled) => {
                    self.stats.corrupt_delivered += 1;
                    mangled
                }
                None => {
                    self.stats.corrupted_rejected += 1;
                    return Vec::new();
                }
            }
        } else {
            frame.clone()
        };
        if faults.delay > 0 {
            self.stats.delayed += 1;
        }
        let mut out = vec![(faults.delay, copy)];
        if faults.duplicate {
            self.stats.duplicated += 1;
            out.push((faults.delay, out[0].1.clone()));
        }
        out
    }

    /// Flips a deterministic bit in the encoded frame and re-decodes:
    /// `Some` only if the codec accepts the mangled bytes.
    fn corrupt(&self, frame: &Frame, link: (usize, usize), index: u64) -> Option<Frame> {
        let mut bytes = frame.encode().to_vec();
        let h = corrupt_bit_seed(self.seed, link, frame.session, index);
        let bit = (h as usize) % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        Frame::decode(&bytes).ok()
    }

    /// Queues a held-back copy for release after `delay` further
    /// transmissions.
    pub fn hold(&mut self, delay: u32, rx: u8, frame: Frame) {
        self.held.push(Held { release_at: self.clock + delay as u64, rx, frame });
    }

    /// Drains every held frame whose release point has passed. Frames
    /// whose receiver crashed (in that frame's session) while they were
    /// in flight are dropped instead — a dead node stays deaf.
    pub fn due(&mut self) -> Vec<(u8, Frame)> {
        if self.held.is_empty() {
            return Vec::new();
        }
        let clock = self.clock;
        let mut out = Vec::new();
        let mut crashed_hits = 0u64;
        let crashed = &self.crashed;
        self.held.retain_mut(|h| {
            if h.release_at <= clock {
                if crashed.contains(&(h.frame.session, h.rx)) {
                    crashed_hits += 1;
                } else {
                    out.push((h.rx, h.frame.clone()));
                }
                false
            } else {
                true
            }
        });
        self.stats.crash_dropped += crashed_hits;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinair_netsim::{CrashSpec, DelaySpec, JoinSpec};

    fn frame(sender: u8, session: u64, seq: u32) -> Frame {
        Frame { flags: 0, sender, session, seq, payload: NetPayload::Done }
    }

    #[test]
    fn inert_plan_passes_everything_through() {
        let mut c = ChaosState::new(FaultPlan::none(), 1, 0);
        for seq in 1..50 {
            let f = frame(1, 9, seq);
            assert!(c.allow_send(&f));
            let out = c.deliver(&f, 1, 0);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].0, 0);
            assert_eq!(out[0].1, f);
        }
        assert_eq!(c.stats, FaultStats::default());
    }

    #[test]
    fn crash_triggers_on_the_milestone_seq_and_is_permanent() {
        let plan = FaultPlan {
            crash: Some(CrashSpec { prob: 1.0, node: Some(2), after_seq: 3 }),
            ..FaultPlan::none()
        };
        let mut c = ChaosState::new(plan, 7, 0);
        assert!(c.allow_send(&frame(2, 5, 1)), "below the milestone");
        assert!(c.allow_send(&frame(2, 5, 0)), "acks never trigger");
        assert!(!c.allow_send(&frame(2, 5, 3)), "the milestone frame is swallowed");
        assert!(!c.allow_send(&frame(2, 5, 1)), "crash is permanent");
        assert!(c.deliver(&frame(0, 5, 9), 0, 2).is_empty(), "a crashed node is deaf");
        // Crash state is per session: session 6 runs its own schedule,
        // so node 2 is alive there below its milestone. Other nodes are
        // untouched entirely (the node filter).
        assert!(c.allow_send(&frame(2, 6, 1)));
        assert!(c.allow_send(&frame(1, 5, 9)));
        assert_eq!(c.deliver(&frame(0, 5, 9), 0, 1).len(), 1);
        assert!(c.stats.crash_dropped >= 3);
    }

    #[test]
    fn coordinator_is_exempt_from_lifecycle_faults() {
        let plan = FaultPlan {
            crash: Some(CrashSpec { prob: 1.0, node: None, after_seq: 1 }),
            late_join: Some(JoinSpec { prob: 1.0, node: None, after_frames: 50 }),
            ..FaultPlan::none()
        };
        let mut c = ChaosState::new(plan, 3, 0);
        for seq in 1..20 {
            assert!(c.allow_send(&frame(0, 1, seq)), "coordinator never crashes");
        }
    }

    #[test]
    fn late_joiner_wakes_after_the_configured_suppression_count() {
        let plan = FaultPlan {
            late_join: Some(JoinSpec { prob: 1.0, node: Some(1), after_frames: 3 }),
            ..FaultPlan::none()
        };
        let mut c = ChaosState::new(plan, 2, 0);
        for _ in 0..3 {
            assert!(c.deliver(&frame(0, 4, 1), 0, 1).is_empty(), "asleep");
        }
        assert_eq!(c.deliver(&frame(0, 4, 1), 0, 1).len(), 1, "awake after 3 suppressions");
        assert_eq!(c.deliver(&frame(2, 4, 50), 2, 1).len(), 1, "stays awake for any sender");
        assert_eq!(c.stats.prejoin_dropped, 3);
        // Other sessions have their own sleep state.
        assert!(c.deliver(&frame(0, 5, 1), 0, 1).is_empty());
    }

    #[test]
    fn ack_burst_drops_only_acks_then_heals() {
        let plan = FaultPlan {
            ack_burst: Some(thinair_netsim::AckBurstSpec { prob: 1.0, len: 3 }),
            ..FaultPlan::none()
        };
        let mut c = ChaosState::new(plan, 5, 0);
        let ack = |seq: u32| Frame {
            flags: 0,
            sender: 1,
            session: 7,
            seq: 0,
            payload: NetPayload::Ack { seq },
        };
        // Non-ACK traffic on the bursting link is untouched.
        assert_eq!(c.deliver(&frame(1, 7, 1), 1, 0).len(), 1);
        // The first `len` ACK deliveries die, then the link heals.
        for seq in 1..=3 {
            assert!(c.deliver(&ack(seq), 1, 0).is_empty(), "burst swallows ack {seq}");
        }
        assert_eq!(c.deliver(&ack(4), 1, 0).len(), 1, "healed after the burst");
        assert_eq!(c.deliver(&ack(1), 1, 0).len(), 1, "stays healed for retransmits");
        assert_eq!(c.stats.ack_burst_dropped, 3);
        // The reverse link and other sessions run their own bursts.
        let rev = Frame { sender: 0, ..ack(1) };
        assert!(c.deliver(&rev, 0, 1).is_empty(), "reverse link bursts independently");
        assert!(c.deliver(&ack(9), 1, 0).len() == 1);
    }

    #[test]
    fn corruption_is_rejected_by_the_codec() {
        let plan = FaultPlan { corrupt: 1.0, ..FaultPlan::none() };
        let mut c = ChaosState::new(plan, 11, 0);
        let mut rejected = 0;
        for seq in 1..200 {
            let out = c.deliver(&frame(1, 2, seq), 1, 0);
            if out.is_empty() {
                rejected += 1;
            }
        }
        // CRC-32 catches every single-bit flip.
        assert_eq!(rejected, 199, "all corrupted copies must be rejected");
        assert_eq!(c.stats.corrupted_rejected, 199);
        assert_eq!(c.stats.corrupt_delivered, 0);
    }

    #[test]
    fn verdicts_are_stable_across_retransmissions() {
        let plan = FaultPlan { drop: 0.5, ..FaultPlan::none() };
        let mut c = ChaosState::new(plan, 13, 0);
        for seq in 1..100 {
            let f = frame(1, 3, seq);
            let first = c.deliver(&f, 1, 0).len();
            for _ in 0..5 {
                assert_eq!(c.deliver(&f, 1, 0).len(), first, "retransmission changed fate");
            }
        }
        assert!(c.stats.dropped > 0, "half the frames should be dropped");
    }

    #[test]
    fn delay_holds_frames_until_later_transmissions() {
        let plan =
            FaultPlan { delay: Some(DelaySpec { prob: 1.0, max_frames: 3 }), ..FaultPlan::none() };
        let mut c = ChaosState::new(plan, 17, 0);
        c.tick();
        let f = frame(1, 6, 4);
        let out = c.deliver(&f, 1, 0);
        let (delay, copy) = (&out[0].0, &out[0].1);
        assert!((1..=3).contains(delay));
        c.hold(*delay, 0, copy.clone());
        assert!(c.due().is_empty(), "not due yet");
        for _ in 0..*delay {
            c.tick();
        }
        let released = c.due();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].1, f);
        assert!(c.due().is_empty(), "released exactly once");
    }
}
