//! **A2** — §6's "biggest challenge": a multi-antenna Eve, and the §3.3
//! countermeasure (the k-collusion estimator).
//!
//! Eve occupies k ∈ {1, 2, 3} cells simultaneously (union of receptions).
//! The leave-one-out estimator models a single-antenna adversary and must
//! degrade as k grows; the k-collusion estimator ("pretend that each set
//! of k terminals together are Eve") must recover most of the reliability
//! at the cost of a smaller secret.

use thinair_core::{Estimator, Tuning};
use thinair_testbed::placement::enumerate_placements;
use thinair_testbed::report::csv;
use thinair_testbed::{Summary, TestbedConfig};

const N: usize = 5;

fn run(k_antennas: usize, estimator: Estimator) -> (Summary, f64) {
    // Base placements of N terminals + 1 Eve cell; extra antennas take
    // the lexicographically-first free cells.
    let placements: Vec<_> = enumerate_placements(N)
        .into_iter()
        .filter(|p| {
            (0..9).filter(|c| !p.terminal_cells.contains(c) && *c != p.eve_cell).count()
                >= k_antennas - 1
        })
        .collect();
    // Subsample to keep the ablation quick.
    let placements: Vec<_> = placements.into_iter().step_by(7).collect();
    let mut results = Vec::new();
    for p in &placements {
        let extra: Vec<usize> = (0..9)
            .filter(|c| !p.terminal_cells.contains(c) && *c != p.eve_cell)
            .take(k_antennas - 1)
            .collect();
        let cfg = TestbedConfig {
            estimator: estimator.clone(),
            extra_eve_cells: extra,
            ..TestbedConfig::default()
        };
        results.push(thinair_testbed::run_experiment(&cfg, p).expect("experiment"));
    }
    let rel: Vec<f64> = results.iter().map(|r| r.reliability).collect();
    let mean_l = results.iter().map(|r| r.l as f64).sum::<f64>() / results.len() as f64;
    (Summary::of(&rel).expect("non-empty"), mean_l)
}

fn main() {
    println!("=== A2: multi-antenna Eve vs estimator strength (n = {N}) ===\n");
    println!(
        "{:>9} {:>16} {:>8} {:>9} {:>8} {:>7}",
        "antennas", "estimator", "min rel", "mean rel", "p50 rel", "L"
    );
    let mut rows = Vec::new();
    let mut loo_by_k = Vec::new();
    let mut kc_by_k = Vec::new();
    for k in 1..=3usize {
        let loo = Estimator::LeaveOneOut(Tuning { scale: 0.75, slack: 0 });
        let (s, l) = run(k, loo);
        println!(
            "{k:>9} {:>16} {:>8.3} {:>9.3} {:>8.3} {:>7.1}",
            "leave-one-out", s.min, s.mean, s.p50, l
        );
        rows.push(vec![
            k.to_string(),
            "leave-one-out".into(),
            format!("{:.4}", s.min),
            format!("{:.4}", s.mean),
            format!("{l:.1}"),
        ]);
        loo_by_k.push(s);
        if k >= 2 {
            let kc = Estimator::KCollusion { k, tuning: Tuning { scale: 0.75, slack: 0 } };
            let (s, l) = run(k, kc);
            println!(
                "{k:>9} {:>16} {:>8.3} {:>9.3} {:>8.3} {:>7.1}",
                format!("{k}-collusion"),
                s.min,
                s.mean,
                s.p50,
                l
            );
            rows.push(vec![
                k.to_string(),
                format!("{k}-collusion"),
                format!("{:.4}", s.min),
                format!("{:.4}", s.mean),
                format!("{l:.1}"),
            ]);
            kc_by_k.push(s);
        }
    }

    // Shape checks: more antennas hurt the single-antenna estimator; the
    // matching collusion estimator recovers reliability.
    assert!(
        loo_by_k[2].mean <= loo_by_k[0].mean + 1e-9,
        "a 3-antenna Eve must not be easier than a 1-antenna Eve"
    );
    assert!(
        kc_by_k.last().unwrap().mean >= loo_by_k[2].mean,
        "the collusion estimator must not do worse than leave-one-out \
         against the multi-antenna Eve"
    );
    println!(
        "\nshape: leave-one-out mean reliability {:.3} -> {:.3} as antennas 1 -> 3; \
         3-collusion recovers {:.3}",
        loo_by_k[0].mean,
        loo_by_k[2].mean,
        kc_by_k.last().unwrap().mean
    );

    std::fs::create_dir_all("target/paper_results").ok();
    std::fs::write(
        "target/paper_results/ablation_eve_antennas.csv",
        csv(&["antennas", "estimator", "min_rel", "mean_rel", "mean_l"], &rows),
    )
    .ok();
    println!("CSV written to target/paper_results/ablation_eve_antennas.csv");
}
