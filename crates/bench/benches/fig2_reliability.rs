//! **Figure 2** — Reliability achieved by the protocol vs the number of
//! terminals, plus the §4 worst-case claims (table T2 of DESIGN.md).
//!
//! For each n ∈ {3..8}: run one experiment per possible placement of n
//! terminals and Eve on the 3×3 grid (all `C(9,n)·(9−n)` of them),
//! rotating through all 9 interference patterns per experiment, with the
//! paper's leave-one-out estimator. Report the minimum (diamonds), the
//! 5th percentile ("95% of experiments", triangles), the average
//! (circles) and the median ("50% of experiments", squares).
//!
//! Paper's claims to compare against: rmin(n=8) = 1.0; rmin(n=6) = 0.2;
//! median = 1.0 for every n; reliability degrades as n shrinks because
//! the estimate gets less accurate.

use thinair_testbed::report::{csv, AsciiPlot};
use thinair_testbed::{sweep_all_placements, Summary, TestbedConfig};

fn main() {
    let cfg = TestbedConfig::default();
    println!("=== Figure 2: reliability vs number of terminals ===");
    println!(
        "(all placements per n, leave-one-out estimator, {} x-packets per terminal)\n",
        cfg.x_per_terminal
    );
    println!(
        "{:>3} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "n", "min", "p05", "mean", "p50", "max", "placements"
    );

    let mut csv_rows = Vec::new();
    let mut series_min = Vec::new();
    let mut series_p05 = Vec::new();
    let mut series_mean = Vec::new();
    let mut series_p50 = Vec::new();
    let mut min_by_n = std::collections::BTreeMap::new();
    let mut p50_by_n = std::collections::BTreeMap::new();

    for n in 3..=8usize {
        let results = sweep_all_placements(n, &cfg);
        let reliabilities: Vec<f64> = results.iter().map(|r| r.reliability).collect();
        let s = Summary::of(&reliabilities).expect("non-empty sweep");
        println!(
            "{n:>3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>10}",
            s.min, s.p05, s.mean, s.p50, s.max, s.count
        );
        csv_rows.push(vec![
            n.to_string(),
            format!("{:.4}", s.min),
            format!("{:.4}", s.p05),
            format!("{:.4}", s.mean),
            format!("{:.4}", s.p50),
            s.count.to_string(),
        ]);
        let xf = (n as f64 - 3.0) / 5.0;
        series_min.push((xf, s.min));
        series_p05.push((xf, s.p05));
        series_mean.push((xf, s.mean));
        series_p50.push((xf, s.p50));
        min_by_n.insert(n, s.min);
        p50_by_n.insert(n, s.p50);
    }

    println!("\nReliability vs n (d = min, t = p05, c = mean, s = median), x-axis n = 3..8:");
    let mut plot = AsciiPlot::new(51, 13, 0.0, 1.0);
    plot.series(&series_min, 'd');
    plot.series(&series_p05, 't');
    plot.series(&series_mean, 'c');
    plot.series(&series_p50, 's');
    print!("{}", plot.render());

    // T2: the §4 worst-case claims.
    println!("\n=== T2: paper claims vs measured ===");
    println!("{:<44} {:>10} {:>10}", "claim", "paper", "measured");
    println!("{:<44} {:>10} {:>10.3}", "min reliability, n = 8", "1.0", min_by_n[&8]);
    println!("{:<44} {:>10} {:>10.3}", "min reliability, n = 6", "0.2", min_by_n[&6]);
    for n in 3..=8 {
        println!(
            "{:<44} {:>10} {:>10.3}",
            format!("median reliability, n = {n}"),
            "1.0",
            p50_by_n[&n]
        );
    }
    // Eve's whole-packet guess probability at the paper's r = 0.2 floor:
    // 2^(−0.2·800) per 800-bit packet.
    let r6 = min_by_n[&6].max(1e-9);
    println!(
        "\nAt the measured n=6 floor (r = {r6:.3}), Eve guesses a whole 800-bit \
         s-packet with probability 2^(-{:.0}) (paper: 2^(-160) ~ 0).",
        r6 * 800.0
    );

    // Shape assertions: these encode "reproduced" for Figure 2.
    assert!(
        min_by_n[&8] > min_by_n[&4],
        "min reliability must improve with more terminals (n=8 {} vs n=4 {})",
        min_by_n[&8],
        min_by_n[&4]
    );
    assert!(
        min_by_n[&8] > 0.9,
        "n=8 should be (near-)perfect in the worst placement: {}",
        min_by_n[&8]
    );
    assert!(p50_by_n[&6] > 0.99, "median reliability must stay 1 (n=6: {})", p50_by_n[&6]);

    let out = csv(&["n", "min", "p05", "mean", "p50", "placements"], &csv_rows);
    std::fs::create_dir_all("target/paper_results").ok();
    std::fs::write("target/paper_results/fig2.csv", out).ok();
    println!("\nCSV written to target/paper_results/fig2.csv");
}
