//! **M** — Criterion micro-benchmarks for the protocol's primitives.
//!
//! The paper claims the protocol is "of polynomial complexity ...
//! implementable in simple wireless devices"; these benchmarks put
//! numbers on the building blocks: GF(2^8) kernels, dense linear algebra,
//! Reed–Solomon coding, the y/z/s construction, and a full protocol
//! round.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::hint::black_box;

use thinair_core::construct::{build_plan, PlanParams};
use thinair_core::round::{run_group_round, RoundConfig, XSchedule};
use thinair_core::{Estimator, Tuning};
use thinair_gf::{kernel, Gf256, Matrix, PayloadPlane};
use thinair_mds::ReedSolomon;
use thinair_netsim::IidMedium;

fn bench_gf_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a: Vec<Gf256> = (0..1024).map(|_| Gf256(rng.gen())).collect();
    let b: Vec<Gf256> = (0..1024).map(|_| Gf256(rng.gen())).collect();
    c.bench_function("gf/dot_1k", |bench| {
        bench.iter(|| thinair_gf::dot(black_box(&a), black_box(&b)))
    });
    // The byte-plane axpy: 1 KiB of symbols, the protocol's hot-path op.
    let ab: Vec<u8> = a.iter().map(|x| x.value()).collect();
    let bb: Vec<u8> = b.iter().map(|x| x.value()).collect();
    c.bench_function("gf/axpy_1k", |bench| {
        bench.iter_batched(
            || ab.clone(),
            |mut dst| kernel::axpy(&mut dst, &bb, 0x53),
            BatchSize::SmallInput,
        )
    });
    // Same op through the legacy `&[Gf256]` wrapper.
    c.bench_function("gf/axpy_gf256_1k", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut dst| thinair_gf::add_assign_scaled(&mut dst, &b, Gf256(0x53)),
            BatchSize::SmallInput,
        )
    });
    // GF(2^8) addition (the c = 1 lane).
    c.bench_function("gf/xor_1k", |bench| {
        bench.iter_batched(
            || ab.clone(),
            |mut dst| kernel::xor_into(&mut dst, &bb),
            BatchSize::SmallInput,
        )
    });
}

fn bench_matrix(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let m64 = Matrix::random(64, 64, &mut rng);
    c.bench_function("matrix/rank_64x64", |bench| bench.iter(|| black_box(&m64).rank()));
    c.bench_function("matrix/inverse_64x64", |bench| bench.iter(|| black_box(&m64).inverse()));
    let m128 = Matrix::random(120, 160, &mut rng);
    c.bench_function("matrix/rank_120x160", |bench| bench.iter(|| black_box(&m128).rank()));

    // Payload-bundle application: the y/z/s hot path (64 coefficient rows
    // acting on 64 payloads of 1 KiB each).
    let payloads: Vec<Vec<Gf256>> =
        (0..64).map(|_| (0..1024).map(|_| Gf256(rng.gen())).collect()).collect();
    c.bench_function("matrix/mul_payloads_64x64_1k", |bench| {
        bench.iter(|| black_box(&m64).mul_payloads(black_box(&payloads)))
    });
    let rhs = m64.mul_payloads(&payloads);
    c.bench_function("matrix/solve_payloads_64x64_1k", |bench| {
        bench.iter(|| black_box(&m64).solve_payloads(black_box(&rhs)).unwrap())
    });
    // Same ops without the Vec<Vec<_>> boundary conversions.
    let plane = PayloadPlane::from_payloads(&payloads);
    c.bench_function("plane/mul_plane_64x64_1k", |bench| {
        bench.iter(|| black_box(&m64).mul_plane(black_box(&plane)))
    });
    let rhs_plane = m64.mul_plane(&plane);
    c.bench_function("plane/solve_plane_64x64_1k", |bench| {
        bench.iter(|| black_box(&m64).solve_plane(black_box(&rhs_plane)).unwrap())
    });
}

fn bench_rs(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let rs = ReedSolomon::new(16, 24).unwrap();
    let data: Vec<Vec<Gf256>> =
        (0..16).map(|_| (0..100).map(|_| Gf256(rng.gen())).collect()).collect();
    let coded = rs.encode(&data);
    c.bench_function("rs/encode_16_24_100B", |bench| bench.iter(|| rs.encode(black_box(&data))));
    let shares: Vec<(usize, Vec<Gf256>)> = (8..24).map(|i| (i, coded[i].clone())).collect();
    c.bench_function("rs/decode_all_parity", |bench| {
        bench.iter(|| rs.decode(black_box(&shares)).unwrap())
    });
    // Direct plane forms (no Vec<Vec<_>> conversion at the boundary).
    let data_plane = PayloadPlane::from_payloads(&data);
    c.bench_function("rs/encode_plane_16_24_100B", |bench| {
        bench.iter(|| rs.encode_plane(black_box(&data_plane)))
    });
    let share_idx: Vec<usize> = (8..24).collect();
    let share_plane = rs.encode_plane(&data_plane).select_rows(&share_idx);
    c.bench_function("rs/decode_plane_all_parity", |bench| {
        bench.iter(|| rs.decode_plane(black_box(&share_idx), black_box(&share_plane)).unwrap())
    });
}

fn bench_construction(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let n_packets = 120;
    let known: Vec<BTreeSet<usize>> = (0..6)
        .map(|i| {
            if i == 0 {
                (0..n_packets).collect()
            } else {
                (0..n_packets).filter(|_| rng.gen_bool(0.55)).collect()
            }
        })
        .collect();
    let est = Estimator::LeaveOneOut(Tuning::default());
    c.bench_function("construct/build_plan_n6_120pkts", |bench| {
        bench.iter(|| {
            let mut r = StdRng::seed_from_u64(7);
            build_plan(black_box(&known), 0, n_packets, &est, &mut r, PlanParams::default())
                .unwrap()
        })
    });
}

fn bench_full_round(c: &mut Criterion) {
    let cfg = RoundConfig {
        schedule: XSchedule::CoordinatorOnly(60),
        payload_len: 100,
        estimator: Estimator::LeaveOneOut(Tuning::default()),
        ..RoundConfig::default()
    };
    c.bench_function("round/group_n5_60pkts_iid", |bench| {
        bench.iter(|| {
            let medium = IidMedium::symmetric(6, 0.5, 11);
            let mut rng = StdRng::seed_from_u64(13);
            run_group_round(medium, 5, 0, black_box(&cfg), &mut rng).unwrap()
        })
    });
}

fn criterion_config() -> Criterion {
    // Keep `cargo bench` wall-time reasonable: these are smoke-level
    // latency measurements, not publication-grade statistics.
    Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench_gf_kernels, bench_matrix, bench_rs, bench_construction, bench_full_round
}
criterion_main!(benches);
