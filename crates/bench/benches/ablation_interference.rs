//! **A3** — §3.3/§4: the artificial interference is what guarantees that
//! "Eve, wherever she is located, will miss some minimum fraction of the
//! information transmitted by any terminal".
//!
//! With the jammers off, the paper's clean line-of-sight room lets Eve
//! receive almost everything, starving the secret; with them on, the
//! rotation guarantees every cell (Eve's included) misses ~5 of 9 pattern
//! slots. This ablation measures secret size, efficiency and reliability
//! with interference on vs off, plus a jammer-power sweep.

use thinair_testbed::report::csv;
use thinair_testbed::{sweep_all_placements, Summary, TestbedConfig};

const N: usize = 6;

struct Outcome {
    rel: Summary,
    eff: Summary,
    mean_l: f64,
    zero_l_pct: f64,
}

fn run(jammer_eirp_dbm: Option<f64>) -> Outcome {
    let cfg = TestbedConfig { jammer_eirp_dbm, ..TestbedConfig::default() };
    let results = sweep_all_placements(N, &cfg);
    let rel: Vec<f64> = results.iter().map(|r| r.reliability).collect();
    let eff: Vec<f64> = results.iter().map(|r| r.efficiency).collect();
    let mean_l = results.iter().map(|r| r.l as f64).sum::<f64>() / results.len() as f64;
    let zero_l_pct =
        results.iter().filter(|r| r.l == 0).count() as f64 / results.len() as f64 * 100.0;
    Outcome { rel: Summary::of(&rel).unwrap(), eff: Summary::of(&eff).unwrap(), mean_l, zero_l_pct }
}

fn main() {
    println!("=== A3: artificial interference on/off (n = {N}, all placements) ===\n");
    println!(
        "{:>12} {:>8} {:>9} {:>9} {:>9} {:>7} {:>9}",
        "jammers", "min rel", "mean rel", "min eff", "mean eff", "L", "L=0 runs"
    );
    let mut rows = Vec::new();
    let mut on_mean_l = 0.0;
    let mut off_mean_l = 0.0;
    for (name, eirp) in
        [("off", None), ("0 dBm", Some(0.0)), ("10 dBm", Some(10.0)), ("20 dBm", Some(20.0))]
    {
        let o = run(eirp);
        println!(
            "{name:>12} {:>8.3} {:>9.3} {:>9.4} {:>9.4} {:>7.1} {:>8.1}%",
            o.rel.min, o.rel.mean, o.eff.min, o.eff.mean, o.mean_l, o.zero_l_pct
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", o.rel.min),
            format!("{:.4}", o.rel.mean),
            format!("{:.5}", o.eff.mean),
            format!("{:.2}", o.mean_l),
            format!("{:.1}", o.zero_l_pct),
        ]);
        if name == "off" {
            off_mean_l = o.mean_l;
        }
        if name == "10 dBm" {
            on_mean_l = o.mean_l;
        }
    }
    println!(
        "\nshape: mean secret length {off_mean_l:.1} packets without jammers vs \
         {on_mean_l:.1} with the paper's jammers — the interference is what \
         creates the erasures the secret is distilled from"
    );
    assert!(on_mean_l > off_mean_l, "interference must increase the extractable secret");

    std::fs::create_dir_all("target/paper_results").ok();
    std::fs::write(
        "target/paper_results/ablation_interference.csv",
        csv(&["jammers", "min_rel", "mean_rel", "mean_eff", "mean_l", "zero_l_pct"], &rows),
    )
    .ok();
    println!("CSV written to target/paper_results/ablation_interference.csv");
}
