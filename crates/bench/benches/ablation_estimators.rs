//! **A4** — Estimator comparison: the paper's §3.3 presents two ways to
//! lower-bound what Eve missed — empirical (pretend terminals are Eve)
//! and structural (trust the artificial interference). This ablation runs
//! all four estimators over the same placement sweep and reports the
//! security/throughput trade:
//!
//! * `leave-one-out` — the paper's default; accurate when candidates
//!   bracket Eve, optimistic in unlucky placements.
//! * `jamming-aware` — position-based candidates from the interference
//!   schedule; sound for every single-antenna Eve obeying the
//!   minimum-distance rule, at a cost in secret length.
//! * `fixed-fraction` — assume Eve misses ≥ δ of any packet set.
//! * `2-collusion` — the multi-antenna-hardened empirical estimator.

use thinair_core::{Estimator, Tuning};
use thinair_testbed::report::csv;
use thinair_testbed::{sweep_all_placements, Summary, TestbedConfig};

const N: usize = 5;

fn run(name: &str, cfg: TestbedConfig) -> (Summary, Summary, f64) {
    let results = sweep_all_placements(N, &cfg);
    let rel: Vec<f64> = results.iter().map(|r| r.reliability).collect();
    let eff: Vec<f64> = results.iter().map(|r| r.efficiency).collect();
    let mean_l = results.iter().map(|r| r.l as f64).sum::<f64>() / results.len() as f64;
    let sr = Summary::of(&rel).unwrap();
    let se = Summary::of(&eff).unwrap();
    println!(
        "{name:>15} {:>8.3} {:>9.3} {:>8.3} {:>9.4} {:>7.1}",
        sr.min, sr.mean, sr.p50, se.mean, mean_l
    );
    (sr, se, mean_l)
}

fn main() {
    println!("=== A4: estimator comparison (n = {N}, all placements) ===\n");
    println!(
        "{:>15} {:>8} {:>9} {:>8} {:>9} {:>7}",
        "estimator", "min rel", "mean rel", "p50 rel", "mean eff", "L"
    );
    let tuning = Tuning { scale: 0.75, slack: 0 };
    let base = TestbedConfig::default();

    let (loo_r, loo_e, loo_l) = run(
        "leave-one-out",
        TestbedConfig { estimator: Estimator::LeaveOneOut(tuning), ..base.clone() },
    );
    // The position-based estimator needs a larger margin: within-cell
    // jitter lets a receiver partially escape the beams, so "jammed"
    // packets leak through at a higher rate than inter-terminal
    // fluctuations (scale 0.65 absorbs it; see jamaware docs).
    let (ja_r, _ja_e, ja_l) = run(
        "jamming-aware",
        TestbedConfig {
            jamming_aware: true,
            estimator: Estimator::LeaveOneOut(Tuning { scale: 0.65, slack: 0 }),
            ..base.clone()
        },
    );
    let (ff_r, _ff_e, ff_l) = run(
        "fixed-0.2",
        TestbedConfig { estimator: Estimator::FixedFraction { fraction: 0.2 }, ..base.clone() },
    );
    let (kc_r, _kc_e, kc_l) = run(
        "2-collusion",
        TestbedConfig { estimator: Estimator::KCollusion { k: 2, tuning }, ..base.clone() },
    );

    println!(
        "\ntrade-off: jamming-aware guarantees min reliability {:.2} (vs {:.2} for \
         leave-one-out) while extracting {:.1} packets per round (vs {:.1})",
        ja_r.min, loo_r.min, ja_l, loo_l
    );
    assert!(
        ja_r.min >= loo_r.min,
        "the position-based estimator must not be less safe than leave-one-out"
    );
    assert!(ja_r.min > 0.99, "jamming-aware should be airtight: {}", ja_r.min);

    let rows = vec![
        vec![
            "leave-one-out".into(),
            format!("{:.4}", loo_r.min),
            format!("{:.4}", loo_r.mean),
            format!("{:.5}", loo_e.mean),
            format!("{loo_l:.1}"),
        ],
        vec![
            "jamming-aware".into(),
            format!("{:.4}", ja_r.min),
            format!("{:.4}", ja_r.mean),
            format!("{:.5}", _ja_e.mean),
            format!("{ja_l:.1}"),
        ],
        vec![
            "fixed-0.2".into(),
            format!("{:.4}", ff_r.min),
            format!("{:.4}", ff_r.mean),
            format!("{:.5}", _ff_e.mean),
            format!("{ff_l:.1}"),
        ],
        vec![
            "2-collusion".into(),
            format!("{:.4}", kc_r.min),
            format!("{:.4}", kc_r.mean),
            format!("{:.5}", _kc_e.mean),
            format!("{kc_l:.1}"),
        ],
    ];
    std::fs::create_dir_all("target/paper_results").ok();
    std::fs::write(
        "target/paper_results/ablation_estimators.csv",
        csv(&["estimator", "min_rel", "mean_rel", "mean_eff", "mean_l"], &rows),
    )
    .ok();
    println!("CSV written to target/paper_results/ablation_estimators.csv");
}
