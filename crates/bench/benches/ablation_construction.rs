//! **A1** — §3.1's warning, quantified: "It is important that Alice
//! construct the y-packets using a particular construction, because not
//! any linear combinations of x-packets will do."
//!
//! Compares the default aligned (support-sharing, Hall-checked)
//! construction against naive per-terminal blocks that ignore the joint
//! budget, on the same testbed workload with the ground-truth (oracle)
//! estimator — so every difference is attributable to the construction,
//! not to estimation error.

use thinair_core::round::Construction;
use thinair_core::Estimator;
use thinair_testbed::report::csv;
use thinair_testbed::{sweep_all_placements, Summary, TestbedConfig};

fn run(n: usize, construction: Construction) -> (Summary, f64) {
    let cfg = TestbedConfig {
        construction,
        estimator: Estimator::Oracle { eve_known: Default::default() },
        ..TestbedConfig::default()
    };
    let results = sweep_all_placements(n, &cfg);
    let rel: Vec<f64> = results.iter().map(|r| r.reliability).collect();
    let leak_rate = results.iter().filter(|r| r.l > 0 && r.reliability < 1.0).count() as f64
        / results.iter().filter(|r| r.l > 0).count().max(1) as f64;
    (Summary::of(&rel).expect("non-empty"), leak_rate)
}

fn main() {
    println!("=== A1: aligned construction vs naive per-terminal blocks ===");
    println!("(oracle estimator, so leaks are purely the construction's fault)\n");
    println!(
        "{:>3} {:>12} {:>8} {:>8} {:>8} {:>11}",
        "n", "construction", "min rel", "mean rel", "p50 rel", "leaky runs"
    );
    let mut rows = Vec::new();
    for n in [4usize, 6] {
        for (name, c) in [("aligned", Construction::Aligned), ("naive", Construction::NaiveBlocks)]
        {
            let (s, leak_rate) = run(n, c);
            println!(
                "{n:>3} {name:>12} {:>8.3} {:>8.3} {:>8.3} {:>10.1}%",
                s.min,
                s.mean,
                s.p50,
                leak_rate * 100.0
            );
            rows.push(vec![
                n.to_string(),
                name.to_string(),
                format!("{:.4}", s.min),
                format!("{:.4}", s.mean),
                format!("{:.1}", leak_rate * 100.0),
            ]);
        }
    }

    // The aligned construction with ground truth must be perfectly secret;
    // the naive one must leak somewhere (the paper's y'-example, at scale).
    let (aligned6, aligned_leak) = run(6, Construction::Aligned);
    let (naive6, naive_leak) = run(6, Construction::NaiveBlocks);
    println!(
        "\nn=6 summary: aligned min reliability {:.3} (leaky {:.1}%), naive min {:.3} (leaky {:.1}%)",
        aligned6.min,
        aligned_leak * 100.0,
        naive6.min,
        naive_leak * 100.0
    );
    assert!(
        aligned6.min > 0.999,
        "aligned + oracle must be perfectly secret, got {}",
        aligned6.min
    );
    assert!(
        naive_leak > aligned_leak,
        "naive blocks must leak more often than the aligned construction"
    );

    std::fs::create_dir_all("target/paper_results").ok();
    std::fs::write(
        "target/paper_results/ablation_construction.csv",
        csv(&["n", "construction", "min_rel", "mean_rel", "leaky_pct"], &rows),
    )
    .ok();
    println!("CSV written to target/paper_results/ablation_construction.csv");
}
