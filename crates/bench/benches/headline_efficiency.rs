//! **T1** — The §4 headline: "For n = 8 terminals, we achieve minimum
//! efficiency 0.038; given that the terminals transmit at rate 1 Mbps,
//! this efficiency yields 38 secret Kbps."
//!
//! Efficiency here is the paper's full metric: shared secret bits divided
//! by *every* bit the terminals transmitted during the experiment —
//! x-packets, reception reports, plan announcements, z-fountain packets,
//! retransmissions and acknowledgments alike. One row per n, aggregated
//! over all placements.

use thinair_testbed::report::csv;
use thinair_testbed::{sweep_all_placements, Summary, TestbedConfig};

/// The paper's transmission rate, for the kbps conversion.
const RATE_BPS: f64 = 1_000_000.0;

fn main() {
    let cfg = TestbedConfig::default();
    println!("=== T1: secret-generation efficiency and rate ===");
    println!(
        "(efficiency = secret bits / ALL transmitted bits; {} x-packets/terminal)\n",
        cfg.x_per_terminal
    );
    println!(
        "{:>3} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "n", "min eff", "mean eff", "p50 eff", "min kbps", "mean kbps"
    );
    let mut rows = Vec::new();
    let mut n8 = None;
    for n in 3..=8usize {
        let results = sweep_all_placements(n, &cfg);
        let eff: Vec<f64> = results.iter().map(|r| r.efficiency).collect();
        let s = Summary::of(&eff).expect("non-empty");
        println!(
            "{n:>3} {:>10.4} {:>10.4} {:>10.4} {:>12.1} {:>12.1}",
            s.min,
            s.mean,
            s.p50,
            s.min * RATE_BPS / 1000.0,
            s.mean * RATE_BPS / 1000.0
        );
        rows.push(vec![
            n.to_string(),
            format!("{:.5}", s.min),
            format!("{:.5}", s.mean),
            format!("{:.5}", s.p50),
        ]);
        if n == 8 {
            n8 = Some(s);
        }
    }
    let n8 = n8.expect("n=8 ran");
    println!("\npaper (n = 8): min efficiency 0.038 -> 38 secret kbps at 1 Mbps");
    println!(
        "measured (n = 8): min efficiency {:.4} -> {:.1} secret kbps at 1 Mbps",
        n8.min,
        n8.min * RATE_BPS / 1000.0
    );
    println!(
        "(simulated overheads are counted fully — fragmentation headers, \
         per-fragment retransmissions and block-ACKs — so the absolute level \
         sits below the paper's; the order of magnitude and the shape across \
         n are the reproduction targets)"
    );
    // Shape checks: positive secret rate at every n.
    assert!(n8.min > 0.0, "n=8 worst case must still produce a secret");
    assert!(
        n8.min * RATE_BPS / 1000.0 >= 1.0,
        "n=8 should generate thousands of secret bits per second"
    );

    std::fs::create_dir_all("target/paper_results").ok();
    std::fs::write(
        "target/paper_results/headline.csv",
        csv(&["n", "min_eff", "mean_eff", "p50_eff"], &rows),
    )
    .ok();
    println!("\nCSV written to target/paper_results/headline.csv");
}
