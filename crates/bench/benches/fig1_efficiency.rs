//! **Figure 1** — Maximum efficiency of the group algorithm (continuous)
//! vs the unicast algorithm (dashed) as a function of the erasure
//! probability, for n ∈ {2, 3, 6, 10, ∞}.
//!
//! Reproduced two ways:
//! 1. analytically, from the fluid-limit model in `thinair-model`
//!    (the paper's own figure is analytic, "under simplifying
//!    assumptions");
//! 2. by end-to-end simulation of both algorithms over iid erasure
//!    channels with the oracle estimator ("Alice guesses exactly"),
//!    counting only Alice's payload bits in the denominator to match the
//!    figure's definition of efficiency.
//!
//! Output: the two series per n (analytic + simulated), an ASCII
//! rendering of the figure, and CSV at target/paper_results/fig1.csv.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thinair_core::estimate::Estimator;
use thinair_core::round::{run_group_round, RoundConfig, XSchedule};
use thinair_core::unicast::run_unicast_round;
use thinair_model::{group_max_efficiency, unicast_efficiency};
use thinair_netsim::IidMedium;
use thinair_testbed::report::{csv, AsciiPlot};

const N_PACKETS: usize = 120;
const PAYLOAD: usize = 100;
const SEEDS: u64 = 5;

/// Payload-denominated efficiency of one simulated group round.
fn sim_group(n: usize, p: f64, seed: u64) -> f64 {
    let cfg = RoundConfig {
        schedule: XSchedule::CoordinatorOnly(N_PACKETS),
        payload_len: PAYLOAD,
        estimator: Estimator::Oracle { eve_known: Default::default() },
        ..RoundConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1A);
    let medium = IidMedium::symmetric(n + 1, p, seed);
    let out = run_group_round(medium, n, 0, &cfg, &mut rng).expect("round failed");
    // Figure-1 denominator: Alice's payload-bearing packets only
    // (N x-packets + (M − L) z-packets).
    let denom = (N_PACKETS + out.m - out.l) as f64;
    out.l as f64 / denom
}

/// Payload-denominated efficiency of one simulated unicast round.
fn sim_unicast(n: usize, p: f64, seed: u64) -> f64 {
    let cfg = RoundConfig {
        schedule: XSchedule::CoordinatorOnly(N_PACKETS),
        payload_len: PAYLOAD,
        estimator: Estimator::Oracle { eve_known: Default::default() },
        ..RoundConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0C1);
    let medium = IidMedium::symmetric(n + 1, p, seed);
    let out = run_unicast_round(medium, n, 0, &cfg, &mut rng).expect("round failed");
    // Denominator: N x-packets + (n−2) padded copies of the L-packet
    // secret.
    let denom = N_PACKETS as f64 + (n.saturating_sub(2) * out.l) as f64;
    out.l as f64 / denom
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn main() {
    let ns = [2usize, 3, 6, 10];
    let n_inf_proxy = 40usize; // "n = ∞" curve, analytic only
    let analytic_grid: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let sim_grid: Vec<f64> = (1..=9).map(|i| i as f64 * 0.1).collect();

    println!("=== Figure 1: maximum efficiency vs erasure probability ===\n");
    println!("Analytic (fluid-limit model; the paper's own curves are analytic):");
    println!("{:>5} {:>6} {:>10} {:>10}", "n", "p", "group", "unicast");
    let mut csv_rows = Vec::new();
    for &n in ns.iter().chain(std::iter::once(&n_inf_proxy)) {
        for &p in &analytic_grid {
            let g = group_max_efficiency(n, p);
            let u = unicast_efficiency(n, p);
            if (p * 20.0).round() as i32 % 4 == 0 {
                let label = if n == n_inf_proxy { "inf".to_string() } else { n.to_string() };
                println!("{label:>5} {p:>6.2} {g:>10.4} {u:>10.4}");
            }
            csv_rows.push(vec![
                "analytic".to_string(),
                n.to_string(),
                format!("{p:.2}"),
                format!("{g:.5}"),
                format!("{u:.5}"),
            ]);
        }
    }

    println!("\nSimulated (oracle estimator, iid channels, N = {N_PACKETS}, {SEEDS} seeds):");
    println!("{:>5} {:>6} {:>10} {:>10}", "n", "p", "group", "unicast");
    for &n in &ns {
        for &p in &sim_grid {
            let g = mean((0..SEEDS).map(|s| sim_group(n, p, s * 31 + 1)));
            let u = mean((0..SEEDS).map(|s| sim_unicast(n, p, s * 31 + 1)));
            println!("{n:>5} {p:>6.2} {g:>10.4} {u:>10.4}");
            csv_rows.push(vec![
                "simulated".to_string(),
                n.to_string(),
                format!("{p:.2}"),
                format!("{g:.5}"),
                format!("{u:.5}"),
            ]);
        }
    }

    // ASCII rendering of the analytic figure.
    println!("\nEfficiency vs erasure probability (g = group, u = unicast):");
    for &n in ns.iter().chain(std::iter::once(&n_inf_proxy)) {
        let mut plot = AsciiPlot::new(57, 13, 0.0, 0.26);
        let gpts: Vec<(f64, f64)> =
            analytic_grid.iter().map(|&p| (p, group_max_efficiency(n, p))).collect();
        let upts: Vec<(f64, f64)> =
            analytic_grid.iter().map(|&p| (p, unicast_efficiency(n, p))).collect();
        plot.series(&upts, 'u');
        plot.series(&gpts, 'g');
        let label = if n == n_inf_proxy { "inf (40)".to_string() } else { n.to_string() };
        println!("n = {label}:");
        print!("{}", plot.render());
    }

    // Shape checks the paper's figure implies.
    let p = 0.5;
    println!("Shape checks at p = 0.5:");
    let mut prev = f64::INFINITY;
    for &n in &ns {
        let g = group_max_efficiency(n, p);
        let u = unicast_efficiency(n, p);
        println!("  n={n:<3} group {g:.4} unicast {u:.4}  (group/unicast = {:.2}x)", g / u);
        assert!(g >= u - 1e-9, "group must dominate unicast");
        assert!(g <= prev + 1e-9, "group efficiency must decrease with n");
        prev = g;
    }
    let g_inf = group_max_efficiency(n_inf_proxy, p);
    let u_inf = unicast_efficiency(n_inf_proxy, p);
    println!("  n=inf group {g_inf:.4} unicast {u_inf:.4}");
    assert!(u_inf < 0.03, "unicast must collapse as n grows");
    assert!(g_inf > 2.0 * u_inf, "group must stay clearly ahead at large n");

    let out = csv(&["source", "n", "p", "group_eff", "unicast_eff"], &csv_rows);
    std::fs::create_dir_all("target/paper_results").ok();
    std::fs::write("target/paper_results/fig1.csv", out).ok();
    println!("\nCSV written to target/paper_results/fig1.csv");
}
