//! Calibration sweep over conservatism/radio knobs.
use thinair_core::{Estimator, Tuning};
use thinair_testbed::{enumerate_placements, run_experiment, Summary, TestbedConfig};

fn probe(tag: &str, cfg: &TestbedConfig) {
    for n in [3usize, 6, 8] {
        let placements = enumerate_placements(n);
        let step = (placements.len() / 40).max(1);
        let results: Vec<_> = placements
            .iter()
            .step_by(step)
            .map(|p| run_experiment(cfg, p).expect("experiment"))
            .collect();
        let rel: Vec<f64> = results.iter().map(|r| r.reliability).collect();
        let eff: Vec<f64> = results.iter().map(|r| r.efficiency).collect();
        let l: Vec<f64> = results.iter().map(|r| r.l as f64).collect();
        let (sr, se, sl) =
            (Summary::of(&rel).unwrap(), Summary::of(&eff).unwrap(), Summary::of(&l).unwrap());
        println!(
            "[{tag}] n={n}: rel min {:.2} p05 {:.2} mean {:.2} p50 {:.2} | eff min {:.4} mean {:.4} | L {:.1}",
            sr.min, sr.p05, sr.mean, sr.p50, se.min, se.mean, sl.mean
        );
    }
}

fn main() {
    let base = TestbedConfig::default();
    // Widen this list to sweep candidate conservatism scales.
    let scales = [0.75];
    for &scale in scales.iter() {
        let cfg = TestbedConfig {
            estimator: Estimator::LeaveOneOut(Tuning { scale, slack: 0 }),
            ..base.clone()
        };
        probe(&format!("scale {scale}"), &cfg);
    }
}
