//! Property-based tests for the MDS constructions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thinair_gf::Gf256;
use thinair_mds::{cauchy_matrix, vandermonde_matrix, Extractor, ReedSolomon};

proptest! {
    /// Any square submatrix of a Cauchy matrix is invertible.
    #[test]
    fn cauchy_superregular(
        (rows, cols, seed) in (1usize..=10, 1usize..=10, any::<u64>())
    ) {
        let c = cauchy_matrix(rows, cols).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let k = rng.gen_range(1..=rows.min(cols));
        let mut ridx: Vec<usize> = (0..rows).collect();
        let mut cidx: Vec<usize> = (0..cols).collect();
        for i in (1..ridx.len()).rev() {
            ridx.swap(i, rng.gen_range(0..=i));
        }
        for i in (1..cidx.len()).rev() {
            cidx.swap(i, rng.gen_range(0..=i));
        }
        let sub = c.select_rows(&ridx[..k]).select_columns(&cidx[..k]);
        prop_assert_eq!(sub.rank(), k);
    }

    /// RS: encode, erase any n-k shares, decode, get the data back.
    #[test]
    fn rs_round_trip(
        (k, extra, plen, seed) in (1usize..=8, 0usize..=6, 1usize..=32, any::<u64>())
    ) {
        let n = k + extra;
        let rs = ReedSolomon::new(k, n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<Vec<Gf256>> =
            (0..k).map(|_| (0..plen).map(|_| Gf256(rng.gen())).collect()).collect();
        let coded = rs.encode(&data);
        // Pick a random k-subset of survivors.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        let shares: Vec<(usize, Vec<Gf256>)> =
            idx[..k].iter().map(|&i| (i, coded[i].clone())).collect();
        prop_assert_eq!(rs.decode(&shares).unwrap(), data);
    }

    /// RS encoding is linear: encode(a + b) == encode(a) + encode(b).
    #[test]
    fn rs_linear(
        (k, plen, seed) in (1usize..=6, 1usize..=16, any::<u64>())
    ) {
        let n = k + 3;
        let rs = ReedSolomon::new(k, n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mk = |rng: &mut StdRng| -> Vec<Vec<Gf256>> {
            (0..k).map(|_| (0..plen).map(|_| Gf256(rng.gen())).collect()).collect()
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        let sum: Vec<Vec<Gf256>> = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| x.iter().zip(y.iter()).map(|(&p, &q)| p + q).collect())
            .collect();
        let ca = rs.encode(&a);
        let cb = rs.encode(&b);
        let csum = rs.encode(&sum);
        for j in 0..n {
            for s in 0..plen {
                prop_assert_eq!(csum[j][s], ca[j][s] + cb[j][s]);
            }
        }
    }

    /// The extractor keeps exactly min(m, k - |known|) outputs secret, for
    /// any adversary knowledge set.
    #[test]
    fn extractor_secrecy_exact(
        (m, k, seed) in (1usize..=6, 1usize..=12, any::<u64>())
    ) {
        prop_assume!(m <= k);
        let e = Extractor::new(m, k).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let know_count = rng.gen_range(0..=k);
        let mut idx: Vec<usize> = (0..k).collect();
        for i in (1..k.max(1)).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        let known = &idx[..know_count];
        let expect = m.min(k - know_count);
        prop_assert_eq!(e.secrecy_given(known), expect);
    }

    /// Vandermonde generators are MDS: random k-column subsets invertible.
    #[test]
    fn vandermonde_mds(
        (k, n, seed) in (1usize..=8, 1usize..=16, any::<u64>())
    ) {
        prop_assume!(k <= n);
        let v = vandermonde_matrix(k, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n.max(1)).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        let mut cols = idx[..k].to_vec();
        cols.sort_unstable();
        prop_assert_eq!(v.select_columns(&cols).rank(), k);
    }
}
