//! Vandermonde matrices over GF(2^8).
//!
//! The `k x n` Vandermonde matrix over distinct evaluation points
//! `a_0..a_{n-1}`,
//!
//! ```text
//! V[i][j] = a_j ^ i
//! ```
//!
//! is the generator of the `[n, k]` Reed–Solomon code: codeword symbol `j`
//! is the evaluation of the degree-`< k` message polynomial at `a_j`. Any
//! `k` columns form a square Vandermonde matrix with distinct nodes, hence
//! invertible — the MDS property. (Unlike Cauchy matrices, *rectangular
//! sub*-matrices of a Vandermonde matrix are not guaranteed invertible; the
//! protocol uses Cauchy where superregularity matters and Vandermonde where
//! the classical any-k-columns property suffices.)

use thinair_gf::{Gf256, Matrix};

/// Builds the `k x n` Vandermonde matrix over the evaluation points
/// `0, 1, .., n-1` (as field elements).
///
/// # Panics
/// Panics when `n > 256` (points must be distinct field elements).
pub fn vandermonde_matrix(k: usize, n: usize) -> Matrix {
    assert!(n <= 256, "at most 256 distinct evaluation points in GF(256)");
    let points: Vec<Gf256> = (0..n).map(|j| Gf256(j as u8)).collect();
    vandermonde_from_points(k, &points)
}

/// Builds the `k x n` Vandermonde matrix over explicit evaluation points.
///
/// # Panics
/// Panics when points repeat.
pub fn vandermonde_from_points(k: usize, points: &[Gf256]) -> Matrix {
    for (i, a) in points.iter().enumerate() {
        for b in &points[i + 1..] {
            assert!(a != b, "duplicate evaluation point {a}");
        }
    }
    Matrix::from_fn(k, points.len(), |i, j| points[j].pow(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_entries() {
        let v = vandermonde_matrix(3, 5);
        assert_eq!((v.rows(), v.cols()), (3, 5));
        for j in 0..5 {
            assert_eq!(v[(0, j)], Gf256::ONE); // x^0
            assert_eq!(v[(1, j)], Gf256(j as u8)); // x^1
            assert_eq!(v[(2, j)], Gf256(j as u8) * Gf256(j as u8));
        }
    }

    #[test]
    fn any_k_columns_invertible() {
        let k = 4;
        let v = vandermonde_matrix(k, 8);
        // All C(8,4) column subsets.
        let mut subsets = Vec::new();
        for a in 0..8 {
            for b in a + 1..8 {
                for c in b + 1..8 {
                    for d in c + 1..8 {
                        subsets.push(vec![a, b, c, d]);
                    }
                }
            }
        }
        assert_eq!(subsets.len(), 70);
        for s in subsets {
            assert_eq!(v.select_columns(&s).rank(), k, "columns {s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate evaluation point")]
    fn duplicate_points_panic() {
        let _ = vandermonde_from_points(2, &[Gf256(1), Gf256(1)]);
    }

    #[test]
    fn degenerate_shapes() {
        let v = vandermonde_matrix(1, 3);
        assert_eq!(v.rank(), 1);
        let v = vandermonde_matrix(3, 3);
        assert_eq!(v.rank(), 3);
    }
}
