//! A systematic Reed–Solomon erasure code over GF(2^8).
//!
//! `ReedSolomon::new(k, n)` encodes `k` data packets into `n` coded packets
//! such that *any* `k` of them suffice to reconstruct the data (the MDS
//! property). The first `k` coded packets are the data packets themselves
//! (systematic form), so the common no-loss case costs nothing to decode.
//!
//! Construction: start from the `k x n` generator whose columns are
//! evaluations of the message polynomial (a Vandermonde matrix), then
//! normalize the leading `k x k` block to the identity by multiplying with
//! its inverse on the left. Row operations preserve the code (same row
//! space), hence the MDS property.

use std::fmt;

use crate::vandermonde::vandermonde_matrix;
use thinair_gf::{Gf256, Matrix, PayloadPlane};

/// Errors from Reed–Solomon construction or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// Parameters violate `0 < k <= n <= 256`.
    BadParameters {
        /// Data packet count requested.
        k: usize,
        /// Coded packet count requested.
        n: usize,
    },
    /// Fewer than `k` distinct shares were provided to `decode`.
    NotEnoughShares {
        /// Shares provided.
        got: usize,
        /// Shares required.
        need: usize,
    },
    /// A share index was out of range or repeated.
    BadShareIndex(usize),
    /// Shares had inconsistent payload lengths.
    RaggedShares,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::BadParameters { k, n } => {
                write!(f, "invalid RS parameters k={k}, n={n} (need 0 < k <= n <= 256)")
            }
            RsError::NotEnoughShares { got, need } => {
                write!(f, "need {need} shares to decode, got {got}")
            }
            RsError::BadShareIndex(i) => write!(f, "share index {i} out of range or repeated"),
            RsError::RaggedShares => write!(f, "shares have inconsistent lengths"),
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic `[n, k]` Reed–Solomon erasure code.
///
/// ```
/// use thinair_mds::ReedSolomon;
/// use thinair_gf::Gf256;
///
/// let rs = ReedSolomon::new(2, 4).unwrap();
/// let data = vec![vec![Gf256(1), Gf256(2)], vec![Gf256(3), Gf256(4)]];
/// let coded = rs.encode(&data);
/// // Lose the two systematic shares; recover from the parity.
/// let survivors = vec![(2, coded[2].clone()), (3, coded[3].clone())];
/// assert_eq!(rs.decode(&survivors).unwrap(), data);
/// ```
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    n: usize,
    /// `k x n` systematic generator: `[I_k | P]`.
    generator: Matrix,
    /// `n x k` transpose, cached: encoding applies it to the data plane
    /// on every call.
    generator_t: Matrix,
}

impl ReedSolomon {
    /// Builds the `[n, k]` systematic code.
    pub fn new(k: usize, n: usize) -> Result<Self, RsError> {
        if k == 0 || k > n || n > 256 {
            return Err(RsError::BadParameters { k, n });
        }
        let v = vandermonde_matrix(k, n);
        let lead = v.select_columns(&(0..k).collect::<Vec<_>>());
        let inv =
            lead.inverse().expect("leading Vandermonde block with distinct nodes is invertible");
        let generator = &inv * &v;
        let generator_t = generator.transpose();
        Ok(ReedSolomon { k, n, generator, generator_t })
    }

    /// Data packet count.
    pub fn data_shares(&self) -> usize {
        self.k
    }

    /// Total coded packet count.
    pub fn total_shares(&self) -> usize {
        self.n
    }

    /// The systematic generator matrix (`k x n`, leading identity).
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// Encodes `k` data packets into `n` coded packets. Packets are symbol
    /// vectors of equal length.
    ///
    /// Compatibility wrapper over [`ReedSolomon::encode_plane`].
    ///
    /// # Panics
    /// Panics when `data.len() != k` or payload lengths are ragged.
    pub fn encode(&self, data: &[Vec<Gf256>]) -> Vec<Vec<Gf256>> {
        assert_eq!(data.len(), self.k, "encode expects exactly k data packets");
        self.encode_plane(&PayloadPlane::from_payloads(data)).to_payloads()
    }

    /// Encodes a `k × width` data plane into the `n × width` coded plane.
    ///
    /// # Panics
    /// Panics when `data.rows() != k`.
    pub fn encode_plane(&self, data: &PayloadPlane) -> PayloadPlane {
        assert_eq!(data.rows(), self.k, "encode expects exactly k data packets");
        // coded[j] = sum_i G[i][j] * data[i], via the cached transpose.
        self.generator_t.mul_plane(data)
    }

    /// Decodes from any `k` (or more) shares, given as `(index, payload)`.
    ///
    /// Extra shares beyond `k` are ignored (the first `k` valid ones are
    /// used). Returns the `k` data packets.
    ///
    /// Compatibility wrapper over [`ReedSolomon::decode_plane`].
    pub fn decode(&self, shares: &[(usize, Vec<Gf256>)]) -> Result<Vec<Vec<Gf256>>, RsError> {
        let plen = shares.first().map_or(0, |(_, p)| p.len());
        if shares.iter().any(|(_, p)| p.len() != plen) {
            return Err(RsError::RaggedShares);
        }
        let mut plane = PayloadPlane::with_capacity(shares.len(), plen);
        let mut indices = Vec::with_capacity(shares.len());
        for (i, p) in shares {
            indices.push(*i);
            plane.push_row(&p.iter().map(|s| s.value()).collect::<Vec<u8>>());
        }
        Ok(self.decode_plane(&indices, &plane)?.to_payloads())
    }

    /// Decodes from a plane of shares: `indices[r]` names the share held
    /// in `shares.row(r)`. Returns the `k × width` data plane.
    ///
    /// # Panics
    /// Panics when `indices.len() != shares.rows()`.
    pub fn decode_plane(
        &self,
        indices: &[usize],
        shares: &PayloadPlane,
    ) -> Result<PayloadPlane, RsError> {
        assert_eq!(indices.len(), shares.rows(), "one index per share row");
        if shares.rows() < self.k {
            return Err(RsError::NotEnoughShares { got: shares.rows(), need: self.k });
        }
        let mut seen = vec![false; self.n];
        let mut use_rows: Vec<usize> = Vec::with_capacity(self.k);
        for (r, &i) in indices.iter().enumerate() {
            if i >= self.n || seen[i] {
                return Err(RsError::BadShareIndex(i));
            }
            seen[i] = true;
            if use_rows.len() < self.k {
                use_rows.push(r);
            }
        }
        // Fast path: all k systematic shares present among the chosen ones?
        if use_rows.iter().all(|&r| indices[r] < self.k) {
            let mut data = PayloadPlane::zero(self.k, shares.width());
            for &r in &use_rows {
                data.row_mut(indices[r]).copy_from_slice(shares.row(r));
            }
            return Ok(data);
        }
        // General path: solve G_cols^T * data = shares.
        let cols: Vec<usize> = use_rows.iter().map(|&r| indices[r]).collect();
        let coeff = self.generator.select_columns(&cols).transpose(); // k x k
        let rhs = shares.select_rows(&use_rows);
        let data =
            coeff.solve_plane(&rhs).expect("any k columns of an MDS generator are independent");
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(k: usize, plen: usize, rng: &mut StdRng) -> Vec<Vec<Gf256>> {
        (0..k).map(|_| (0..plen).map(|_| Gf256(rng.gen())).collect()).collect()
    }

    #[test]
    fn systematic_prefix() {
        let mut rng = StdRng::seed_from_u64(1);
        let rs = ReedSolomon::new(3, 7).unwrap();
        let data = random_data(3, 10, &mut rng);
        let coded = rs.encode(&data);
        assert_eq!(coded.len(), 7);
        assert_eq!(&coded[..3], &data[..]);
    }

    #[test]
    fn decode_from_any_k() {
        let mut rng = StdRng::seed_from_u64(2);
        let rs = ReedSolomon::new(4, 8).unwrap();
        let data = random_data(4, 16, &mut rng);
        let coded = rs.encode(&data);
        // Try a spread of survivor subsets including all-parity.
        for subset in [
            vec![0usize, 1, 2, 3],
            vec![4, 5, 6, 7],
            vec![0, 2, 5, 7],
            vec![3, 4, 5, 6],
            vec![1, 3, 4, 7],
        ] {
            let shares: Vec<(usize, Vec<Gf256>)> =
                subset.iter().map(|&i| (i, coded[i].clone())).collect();
            assert_eq!(rs.decode(&shares).unwrap(), data, "subset {subset:?}");
        }
    }

    #[test]
    fn decode_uses_first_k_of_extra_shares() {
        let mut rng = StdRng::seed_from_u64(3);
        let rs = ReedSolomon::new(2, 5).unwrap();
        let data = random_data(2, 4, &mut rng);
        let coded = rs.encode(&data);
        let shares: Vec<(usize, Vec<Gf256>)> = (0..5).map(|i| (i, coded[i].clone())).collect();
        assert_eq!(rs.decode(&shares).unwrap(), data);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(ReedSolomon::new(0, 4), Err(RsError::BadParameters { .. })));
        assert!(matches!(ReedSolomon::new(5, 4), Err(RsError::BadParameters { .. })));
        assert!(matches!(ReedSolomon::new(4, 300), Err(RsError::BadParameters { .. })));

        let rs = ReedSolomon::new(3, 6).unwrap();
        assert!(matches!(
            rs.decode(&[(0, vec![Gf256(1)])]),
            Err(RsError::NotEnoughShares { got: 1, need: 3 })
        ));
        let p = vec![Gf256(1)];
        assert!(matches!(
            rs.decode(&[(0, p.clone()), (0, p.clone()), (1, p.clone())]),
            Err(RsError::BadShareIndex(0))
        ));
        assert!(matches!(
            rs.decode(&[(9, p.clone()), (1, p.clone()), (2, p.clone())]),
            Err(RsError::BadShareIndex(9))
        ));
        assert!(matches!(
            rs.decode(&[(0, vec![Gf256(1)]), (1, vec![Gf256(1), Gf256(2)]), (2, vec![Gf256(1)])]),
            Err(RsError::RaggedShares)
        ));
    }

    #[test]
    fn k_equals_n_is_identity_code() {
        let mut rng = StdRng::seed_from_u64(4);
        let rs = ReedSolomon::new(4, 4).unwrap();
        let data = random_data(4, 8, &mut rng);
        assert_eq!(rs.encode(&data), data);
    }

    #[test]
    fn empty_payloads_are_fine() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let data = vec![vec![], vec![]];
        let coded = rs.encode(&data);
        let shares: Vec<(usize, Vec<Gf256>)> = vec![(2, coded[2].clone()), (3, coded[3].clone())];
        assert_eq!(rs.decode(&shares).unwrap(), data);
    }
}
