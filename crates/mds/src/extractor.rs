//! Privacy amplification: condensing partially-leaked shared packets into
//! fewer, fully-secret ones.
//!
//! This is the algebraic heart of the paper's §3.1. Alice and a terminal
//! share `k` packets; an eavesdropper knows *some* `k - m` of them (which
//! ones is unknown). Multiplying the shared packets by an `m x k`
//! *superregular* matrix produces `m` outputs that are jointly uniform
//! given any `k - m` of the inputs: writing the output as
//! `y = G_K x_K + G_U x_U` with `U` the `m` unknown inputs, the `m x m`
//! block `G_U` is invertible (superregularity), so `y` is a bijective
//! function of the unknown uniform `x_U` for every fixing of `x_K`.
//!
//! The paper's §3.1 counter-example (`y' = x1+x3+x5, y'2 = x7+x9`) is a
//! matrix whose column support misses this property — reproduced as a test
//! below.

use crate::cauchy::{cauchy_matrix, CauchyError};
use thinair_gf::{Gf256, Matrix, PayloadPlane};

/// A privacy-amplification extractor: maps `k` partially-leaked shared
/// packets to `m` secret packets.
///
/// ```
/// use thinair_mds::Extractor;
///
/// // 5 shared packets, adversary misses at least 2 of them (unknown
/// // which): extract 2 packets she knows nothing about.
/// let e = Extractor::new(2, 5).unwrap();
/// for a in 0..5usize {
///     for b in (a + 1)..5 {
///         let known: Vec<usize> = (0..5).filter(|&i| i != a && i != b).collect();
///         assert_eq!(e.secrecy_given(&known), 2);
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Extractor {
    matrix: Matrix,
}

impl Extractor {
    /// Builds an `m x k` extractor. Requires `m <= k` and `m + k <= 256`.
    pub fn new(m: usize, k: usize) -> Result<Self, CauchyError> {
        assert!(m <= k, "cannot extract more secrets than shared packets");
        Ok(Extractor { matrix: cauchy_matrix(m, k)? })
    }

    /// Number of secret outputs.
    pub fn outputs(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of shared inputs.
    pub fn inputs(&self) -> usize {
        self.matrix.cols()
    }

    /// The coefficient matrix (public; only the input *contents* are
    /// secret).
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Applies the extractor to `k` shared packets, producing `m` secret
    /// packets.
    ///
    /// # Panics
    /// Panics when `shared.len() != self.inputs()`.
    pub fn extract(&self, shared: &[Vec<Gf256>]) -> Vec<Vec<Gf256>> {
        self.matrix.mul_payloads(shared)
    }

    /// Plane form of [`Extractor::extract`]: `k × width` in,
    /// `m × width` out.
    ///
    /// # Panics
    /// Panics when `shared.rows() != self.inputs()`.
    pub fn extract_plane(&self, shared: &PayloadPlane) -> PayloadPlane {
        self.matrix.mul_plane(shared)
    }

    /// Verifies the secrecy property against a *known* adversary
    /// column-knowledge set: returns the number of output packets that
    /// remain uniform given the adversary knows the inputs in `known`.
    ///
    /// For a superregular matrix this is `min(m, k - |known|)` — the method
    /// exists so tests and the evaluation harness can confirm it.
    pub fn secrecy_given(&self, known: &[usize]) -> usize {
        let k = self.inputs();
        let unknown: Vec<usize> = (0..k).filter(|i| !known.contains(i)).collect();
        self.matrix.select_columns(&unknown).rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dimensions() {
        let e = Extractor::new(2, 5).unwrap();
        assert_eq!(e.outputs(), 2);
        assert_eq!(e.inputs(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot extract more")]
    fn m_greater_than_k_panics() {
        let _ = Extractor::new(6, 5);
    }

    #[test]
    fn extraction_is_linear_map() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = Extractor::new(2, 4).unwrap();
        let shared: Vec<Vec<Gf256>> =
            (0..4).map(|_| (0..8).map(|_| Gf256(rng.gen())).collect()).collect();
        let out = e.extract(&shared);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 8);
    }

    #[test]
    fn full_secrecy_when_adversary_misses_m() {
        let e = Extractor::new(3, 8).unwrap();
        // Adversary knows any 5 of the 8: outputs stay fully secret.
        for known in [vec![0usize, 1, 2, 3, 4], vec![3, 4, 5, 6, 7], vec![0, 2, 4, 6, 7]] {
            assert_eq!(e.secrecy_given(&known), 3, "known {known:?}");
        }
    }

    #[test]
    fn graceful_degradation_when_adversary_knows_more() {
        let e = Extractor::new(3, 8).unwrap();
        // Adversary knows 6 -> only 2 outputs remain uniform; 7 -> 1; 8 -> 0.
        assert_eq!(e.secrecy_given(&[0, 1, 2, 3, 4, 5]), 2);
        assert_eq!(e.secrecy_given(&[0, 1, 2, 3, 4, 5, 6]), 1);
        assert_eq!(e.secrecy_given(&(0..8).collect::<Vec<_>>()), 0);
    }

    #[test]
    fn papers_counterexample_leaks() {
        // Paper §3.1: with shared packets (x1, x3, x5, x7, x9) and Eve
        // missing {x7, x9}, the combinations y'1 = x1+x3+x5 and
        // y'2 = x7+x9 leak y'1 entirely. Columns: 0:x1 1:x3 2:x5 3:x7 4:x9.
        let bad = Matrix::from_rows(&[
            vec![Gf256(1), Gf256(1), Gf256(1), Gf256(0), Gf256(0)],
            vec![Gf256(0), Gf256(0), Gf256(0), Gf256(1), Gf256(1)],
        ]);
        // Eve knows x1, x3, x5 (columns 0, 1, 2); unknown columns 3 and 4.
        let unknown = bad.select_columns(&[3, 4]);
        // Rank 1 < 2: exactly one of the two outputs leaks.
        assert_eq!(unknown.rank(), 1);

        // The paper's *good* combinations y1 = x1+x5+x9, y2 = x3+x7 keep
        // both outputs secret for this particular Eve.
        let good = Matrix::from_rows(&[
            vec![Gf256(1), Gf256(0), Gf256(1), Gf256(0), Gf256(1)],
            vec![Gf256(0), Gf256(1), Gf256(0), Gf256(1), Gf256(0)],
        ]);
        assert_eq!(good.select_columns(&[3, 4]).rank(), 2);

        // Our Cauchy extractor achieves this for *every* 2-subset Eve
        // might miss, not just the realized one.
        let e = Extractor::new(2, 5).unwrap();
        for a in 0..5 {
            for b in a + 1..5 {
                let known: Vec<usize> = (0..5).filter(|&i| i != a && i != b).collect();
                assert_eq!(e.secrecy_given(&known), 2, "Eve misses {{{a},{b}}}");
            }
        }
    }

    #[test]
    fn statistical_uniformity_smoke() {
        // Empirical sanity check of the secrecy argument: fix the packets
        // Eve knows, vary the ones she misses, and confirm the extractor
        // output takes many distinct values (it is a bijection of the
        // unknowns).
        let e = Extractor::new(1, 3).unwrap();
        let known = [vec![Gf256(7)], vec![Gf256(9)]]; // x0, x1 fixed
        let mut outputs = std::collections::BTreeSet::new();
        for v in 0..=255u8 {
            let shared = vec![known[0].clone(), known[1].clone(), vec![Gf256(v)]];
            let out = e.extract(&shared);
            outputs.insert(out[0][0].value());
        }
        assert_eq!(outputs.len(), 256, "output must be a bijection of the unknown symbol");
    }
}
