//! Cauchy matrices over GF(2^8).
//!
//! A Cauchy matrix is defined by two disjoint sequences of distinct field
//! elements `x_0..x_{r-1}` and `y_0..y_{c-1}`:
//!
//! ```text
//! C[i][j] = 1 / (x_i - y_j)        (in GF(2^8): 1 / (x_i ^ y_j))
//! ```
//!
//! Its defining property — every square submatrix is invertible
//! (*superregularity*) — follows from the Cauchy determinant formula, whose
//! numerator and denominator are products of differences of distinct
//! elements, hence non-zero. `thinair-core` leans on this twice: privacy
//! amplification needs every `m x m` column-submatrix invertible, and
//! z-packet reconciliation needs the complementary column blocks
//! invertible.
//!
//! GF(2^8) has 256 elements, so `rows + cols <= 256`. The protocol's
//! coefficient matrices are far smaller; callers that might approach the
//! bound receive a structured error rather than a panic.

use std::fmt;

use thinair_gf::{Gf256, Matrix};

/// Why a Cauchy matrix could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CauchyError {
    /// `rows + cols` exceeds the field size (256): the node sequences
    /// cannot be disjoint and distinct.
    TooLarge {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
    },
}

impl fmt::Display for CauchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CauchyError::TooLarge { rows, cols } => write!(
                f,
                "Cauchy matrix of shape {rows}x{cols} needs {} distinct field \
                 elements but GF(256) only has 256",
                rows + cols
            ),
        }
    }
}

impl std::error::Error for CauchyError {}

/// Builds the canonical `rows x cols` Cauchy matrix, using field elements
/// `0..rows` as row nodes and `rows..rows+cols` as column nodes.
///
/// Returns [`CauchyError::TooLarge`] when `rows + cols > 256`.
pub fn cauchy_matrix(rows: usize, cols: usize) -> Result<Matrix, CauchyError> {
    if rows + cols > 256 {
        return Err(CauchyError::TooLarge { rows, cols });
    }
    let xs: Vec<Gf256> = (0..rows).map(|i| Gf256(i as u8)).collect();
    let ys: Vec<Gf256> = (0..cols).map(|j| Gf256((rows + j) as u8)).collect();
    Ok(cauchy_from_nodes(&xs, &ys))
}

/// Builds a Cauchy matrix from explicit node sequences.
///
/// # Panics
/// Panics when the sequences are not pairwise distinct and disjoint (the
/// entries would require dividing by zero).
pub fn cauchy_from_nodes(xs: &[Gf256], ys: &[Gf256]) -> Matrix {
    // Distinctness checks: O(n^2) is fine at these sizes and gives a
    // clearer failure than a divide-by-zero panic deep in the field code.
    for (i, a) in xs.iter().enumerate() {
        for b in &xs[i + 1..] {
            assert!(a != b, "duplicate row node {a}");
        }
    }
    for (i, a) in ys.iter().enumerate() {
        for b in &ys[i + 1..] {
            assert!(a != b, "duplicate column node {a}");
        }
    }
    for a in xs {
        for b in ys {
            assert!(a != b, "row and column nodes must be disjoint (both contain {a})");
        }
    }
    Matrix::from_fn(xs.len(), ys.len(), |i, j| (xs[i] - ys[j]).inv())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_construction_shape() {
        let c = cauchy_matrix(3, 5).unwrap();
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 5);
        // Entry formula check.
        assert_eq!(c[(1, 2)], (Gf256(1) - Gf256(3 + 2)).inv());
    }

    #[test]
    fn too_large_is_an_error() {
        assert_eq!(cauchy_matrix(200, 100), Err(CauchyError::TooLarge { rows: 200, cols: 100 }));
        // Exactly at the bound is fine.
        assert!(cauchy_matrix(128, 128).is_ok());
    }

    #[test]
    fn full_rank() {
        let c = cauchy_matrix(6, 9).unwrap();
        assert_eq!(c.rank(), 6);
        let c = cauchy_matrix(9, 6).unwrap();
        assert_eq!(c.rank(), 6);
    }

    #[test]
    fn square_submatrices_invertible_exhaustive_small() {
        // Exhaustively verify superregularity for a 3x5 instance: all
        // square submatrices up to 3x3.
        let c = cauchy_matrix(3, 5).unwrap();
        let rows = 3;
        let cols = 5;
        // 1x1: every entry non-zero.
        for i in 0..rows {
            for j in 0..cols {
                assert!(!c[(i, j)].is_zero());
            }
        }
        // 2x2 and 3x3 via brute-force index subsets.
        let row_sets_2: Vec<[usize; 2]> = vec![[0, 1], [0, 2], [1, 2]];
        let mut col_sets_2 = Vec::new();
        for a in 0..cols {
            for b in a + 1..cols {
                col_sets_2.push([a, b]);
            }
        }
        for rs in &row_sets_2 {
            for cs in &col_sets_2 {
                let sub = c.select_rows(rs).select_columns(cs);
                assert_eq!(sub.rank(), 2, "rows {rs:?} cols {cs:?}");
            }
        }
        let mut col_sets_3 = Vec::new();
        for a in 0..cols {
            for b in a + 1..cols {
                for d in b + 1..cols {
                    col_sets_3.push([a, b, d]);
                }
            }
        }
        for cs in &col_sets_3 {
            let sub = c.select_columns(cs);
            assert_eq!(sub.rank(), 3, "cols {cs:?}");
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_nodes_panic() {
        let _ = cauchy_from_nodes(&[Gf256(1), Gf256(2)], &[Gf256(2), Gf256(3)]);
    }

    #[test]
    #[should_panic(expected = "duplicate row node")]
    fn duplicate_nodes_panic() {
        let _ = cauchy_from_nodes(&[Gf256(1), Gf256(1)], &[Gf256(3)]);
    }

    #[test]
    fn custom_nodes_match_formula() {
        let xs = [Gf256(10), Gf256(20)];
        let ys = [Gf256(30), Gf256(40), Gf256(50)];
        let c = cauchy_from_nodes(&xs, &ys);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(c[(i, j)] * (xs[i] - ys[j]), Gf256::ONE);
            }
        }
    }
}
