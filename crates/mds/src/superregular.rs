//! Structural property checks for coefficient matrices.
//!
//! The protocol's security argument leans on two matrix properties; these
//! checkers verify them by sampling (exact checks are exponential in the
//! matrix size). They exist for tests, for the runtime re-draw logic in
//! `thinair-core::construct` (which verifies the *specific* submatrices it
//! needs, exactly), and for documentation-by-executable-spec.

use rand::Rng;
use thinair_gf::Matrix;

/// Checks (by exhaustive enumeration up to `max_exhaustive` squares, then
/// random sampling) that every square submatrix of `m` is invertible.
///
/// Returns `false` as soon as a singular square submatrix is found. A
/// `true` result means no counterexample was found within the budget: for
/// Cauchy matrices this is a proof-backed property, for random matrices it
/// is evidence only.
pub fn is_superregular(m: &Matrix, samples: usize, rng: &mut impl Rng) -> bool {
    let max_k = m.rows().min(m.cols());
    // 1x1 exhaustively: superregular matrices have no zero entries.
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            if m[(i, j)].is_zero() {
                return false;
            }
        }
    }
    // Random square submatrices of every size.
    for _ in 0..samples {
        let k = rng.gen_range(1..=max_k);
        let rows = sample_subset(m.rows(), k, rng);
        let cols = sample_subset(m.cols(), k, rng);
        if m.select_rows(&rows).select_columns(&cols).rank() < k {
            return false;
        }
    }
    true
}

/// Checks the classical MDS generator property: every set of `m.rows()`
/// columns of `m` is linearly independent. Exhaustive when the number of
/// column subsets is at most `exhaustive_limit`, sampled otherwise.
pub fn is_mds_generator(m: &Matrix, samples: usize, rng: &mut impl Rng) -> bool {
    let k = m.rows();
    if k > m.cols() {
        return false;
    }
    let n_subsets = binomial(m.cols(), k);
    if n_subsets <= samples as u128 {
        // Exhaustive enumeration of column subsets.
        let mut subset: Vec<usize> = (0..k).collect();
        loop {
            if m.select_columns(&subset).rank() < k {
                return false;
            }
            if !next_subset(&mut subset, m.cols()) {
                break;
            }
        }
        true
    } else {
        (0..samples).all(|_| {
            let cols = sample_subset(m.cols(), k, rng);
            m.select_columns(&cols).rank() == k
        })
    }
}

fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > 1 << 60 {
            return u128::MAX; // saturate; caller only compares magnitudes
        }
    }
    acc
}

/// Advances `subset` (sorted, distinct, drawn from `0..n`) to the next
/// combination in lexicographic order; returns false when exhausted.
fn next_subset(subset: &mut [usize], n: usize) -> bool {
    let k = subset.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if subset[i] < n - (k - i) {
            subset[i] += 1;
            for j in i + 1..k {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Uniformly samples `k` distinct indices out of `0..n`, sorted.
fn sample_subset(n: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    debug_assert!(k <= n);
    // Floyd's algorithm: k iterations, no O(n) shuffle.
    let mut chosen = Vec::with_capacity(k);
    for j in n - k..n {
        let t = rng.gen_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cauchy::cauchy_matrix;
    use crate::vandermonde::vandermonde_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thinair_gf::{Gf256, Matrix};

    #[test]
    fn cauchy_is_superregular() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = cauchy_matrix(8, 12).unwrap();
        assert!(is_superregular(&c, 500, &mut rng));
    }

    #[test]
    fn vandermonde_is_mds_generator() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = vandermonde_matrix(5, 12);
        assert!(is_mds_generator(&v, 1000, &mut rng));
    }

    #[test]
    fn vandermonde_is_not_superregular_in_general() {
        // Row 0 is all ones and point 0 gives a zero in row 1: the 1x1
        // submatrix at (1, 0) is singular.
        let mut rng = StdRng::seed_from_u64(3);
        let v = vandermonde_matrix(3, 6);
        assert!(!is_superregular(&v, 50, &mut rng));
    }

    #[test]
    fn zero_matrix_fails_both() {
        let mut rng = StdRng::seed_from_u64(4);
        let z = Matrix::zero(3, 5);
        assert!(!is_superregular(&z, 10, &mut rng));
        assert!(!is_mds_generator(&z, 10, &mut rng));
    }

    #[test]
    fn wide_identity_fails_mds() {
        // [I | 0] has a dependent column set containing the zero column.
        let mut m = Matrix::identity(3);
        m = Matrix::from_fn(3, 5, |r, c| if c < 3 { m[(r, c)] } else { Gf256::ZERO });
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!is_mds_generator(&m, 100, &mut rng));
    }

    #[test]
    fn taller_than_wide_is_never_mds_generator() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = Matrix::identity(4).select_columns(&[0, 1]);
        assert!(!is_mds_generator(&m, 10, &mut rng));
    }

    #[test]
    fn subset_iterator_is_exhaustive() {
        let mut subset = vec![0, 1];
        let mut seen = vec![subset.clone()];
        while next_subset(&mut subset, 4) {
            seen.push(subset.clone());
        }
        assert_eq!(
            seen,
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3],]
        );
    }

    #[test]
    fn sample_subset_is_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let s = sample_subset(10, 4, &mut rng);
            assert_eq!(s.len(), 4);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 10));
        }
        // k == n returns everything.
        assert_eq!(sample_subset(5, 5, &mut rng), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(8, 4), 70);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(4, 5), 0);
    }
}
