//! Maximum Distance Separable (MDS) code constructions over GF(2^8).
//!
//! The HotNets'12 protocol derives its y-, z- and s-packets from "a
//! well-defined construction ... based on Maximum Distance Separable (MDS)
//! codes" (§3.2 of the paper, details deferred to the technical report).
//! This crate provides those constructions:
//!
//! * [`cauchy`] — Cauchy matrices, which are *superregular*: **every**
//!   square submatrix is invertible. This is the strongest property one can
//!   ask of a coefficient matrix and it is exactly what the protocol needs
//!   in two places:
//!   - privacy amplification: an `m x k` Cauchy matrix applied to `k`
//!     shared packets yields `m` outputs that remain jointly uniform as
//!     long as the adversary misses at least `m` of the inputs;
//!   - reconciliation: the z-packets let every terminal solve for its
//!     missing y-packets because the relevant column submatrix is
//!     invertible.
//! * [`vandermonde`] — Vandermonde matrices (generators of Reed–Solomon
//!   codes); any `k` *columns* of a `k x n` Vandermonde generator are
//!   independent, which is the classical MDS property.
//! * [`rs`] — a systematic Reed–Solomon erasure code built on the above
//!   (encode `k` data packets into `n`, recover from any `k` survivors).
//!   The protocol itself does not retransmit via RS, but the reliable
//!   broadcast layer in `thinair-netsim` can, and the code doubles as an
//!   exhaustive test vehicle for the matrix machinery.
//! * [`extractor`] — the privacy-amplification primitive packaged for
//!   direct use (and reused by `thinair-core`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cauchy;
pub mod extractor;
pub mod rs;
pub mod superregular;
pub mod vandermonde;

pub use cauchy::{cauchy_matrix, CauchyError};
pub use extractor::Extractor;
pub use rs::ReedSolomon;
pub use superregular::{is_mds_generator, is_superregular};
pub use vandermonde::vandermonde_matrix;
