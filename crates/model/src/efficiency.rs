//! The fluid-limit efficiency computations. See the crate docs for the
//! derivation.

/// Binomial coefficient as `f64` (exact for the sizes used here).
fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Expected pairwise budget as a fraction of `N`: the fraction of
/// x-packets a given terminal receives and Eve misses, `p(1−p)`.
pub fn pairwise_budget_fraction(p: f64) -> f64 {
    p * (1.0 - p)
}

/// Unicast-algorithm efficiency for `n` terminals at erasure probability
/// `p`: the group secret is one pairwise secret (`m = p(1−p)` per packet
/// transmitted), delivered to the other `n−2` terminals as padded copies.
///
/// `efficiency = m / (1 + (n−2)·m)`.
pub fn unicast_efficiency(n: usize, p: f64) -> f64 {
    assert!(n >= 2, "need at least two terminals");
    assert!((0.0..=1.0).contains(&p), "p out of range");
    let m = pairwise_budget_fraction(p);
    if m == 0.0 {
        return 0.0;
    }
    m / (1.0 + (n as f64 - 2.0) * m)
}

/// The greedy fluid allocation behind one group-efficiency evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupOperatingPoint {
    /// Target per-terminal secret fraction `L` (of `N`).
    pub l: f64,
    /// Total y-row fraction `M` (of `N`).
    pub m: f64,
    /// Rows allocated per level (index `g−1` = rows at level `g`, summed
    /// over all `C(n−1, g)` subsets).
    pub rows_per_level: Vec<f64>,
    /// Whether the target `L` was fully covered within the Hall caps.
    pub feasible: bool,
}

/// `P(Binomial(k, 1−p) ≥ g)` — the mass of packets received by at least
/// `g` of `k` terminals.
fn at_least(k: usize, p: f64, g: usize) -> f64 {
    (g..=k).map(|j| binomial(k, j) * (1.0 - p).powi(j as i32) * p.powi((k - j) as i32)).sum()
}

/// Greedy minimum-cost coverage for a target per-terminal secret fraction
/// `l`, for `n` terminals at erasure probability `p`.
///
/// Fills levels from the deepest (`g = n−1`) outward; at each level the
/// allocation is limited by every nested Hall cap
/// `Σ_{levels ≥ g} rows ≤ p·P(received by ≥ g terminals)` for all `g` at
/// or below the levels already used.
pub fn group_efficiency_at(n: usize, p: f64, l: f64) -> GroupOperatingPoint {
    assert!(n >= 2, "need at least two terminals");
    assert!((0.0..=1.0).contains(&p), "p out of range");
    let t = n - 1; // non-coordinator terminals
    let mut rows_per_level = vec![0.0; t];
    let mut covered = 0.0f64; // per-terminal coverage achieved
    let mut total_rows = 0.0f64;
    // Cumulative row mass at levels >= g is constrained by cap(g); track
    // total from the top so each new level sees the binding constraint.
    for g in (1..=t).rev() {
        if covered >= l - 1e-15 {
            break;
        }
        // Per-terminal coverage of one unit of row mass at level g:
        // a row at level g serves g of the t terminals -> g/t each on
        // average under symmetric allocation.
        let coverage_per_row = g as f64 / t as f64;
        let need_rows = (l - covered) / coverage_per_row;
        // Hall caps: the binding one for mass placed at level >= g.
        let cap_here = p * at_least(t, p, g) - total_rows;
        let take = need_rows.min(cap_here.max(0.0));
        rows_per_level[g - 1] = take;
        total_rows += take;
        covered += take * coverage_per_row;
    }
    GroupOperatingPoint {
        l: covered.min(l),
        m: total_rows,
        rows_per_level,
        feasible: covered >= l - 1e-12,
    }
}

/// The efficiency of one operating point: `L / (1 + M − L)`, zero when
/// no secret is covered.
pub fn operating_efficiency(op: &GroupOperatingPoint) -> f64 {
    if op.l <= 0.0 {
        0.0
    } else {
        op.l / (1.0 + op.m - op.l)
    }
}

/// The efficiency-maximizing operating point for `n` terminals at
/// erasure probability `p`: maximizes `L / (1 + M(L) − L)` over the
/// target `L` (grid + local refinement; the objective is unimodal in
/// `L`). Returns the all-zero point when no secrecy is minable
/// (`p ∈ {0, 1}`).
pub fn group_optimum(n: usize, p: f64) -> GroupOperatingPoint {
    let m_max = pairwise_budget_fraction(p);
    if m_max <= 0.0 {
        return GroupOperatingPoint {
            l: 0.0,
            m: 0.0,
            rows_per_level: vec![0.0; n.saturating_sub(1)],
            feasible: true,
        };
    }
    let eff = |l: f64| -> f64 { operating_efficiency(&group_efficiency_at(n, p, l)) };
    // Coarse grid, then golden-section refinement around the best cell.
    let grid = 64;
    let mut best_l = 0.0;
    let mut best = 0.0;
    for i in 1..=grid {
        let l = m_max * i as f64 / grid as f64;
        let e = eff(l);
        if e > best {
            best = e;
            best_l = l;
        }
    }
    let mut lo = (best_l - m_max / grid as f64).max(0.0);
    let mut hi = (best_l + m_max / grid as f64).min(m_max);
    for _ in 0..40 {
        let a = lo + (hi - lo) / 3.0;
        let b = hi - (hi - lo) / 3.0;
        if eff(a) < eff(b) {
            lo = a;
        } else {
            hi = b;
        }
    }
    let refined = (lo + hi) / 2.0;
    let target = if eff(refined) >= best { refined } else { best_l };
    group_efficiency_at(n, p, target)
}

/// Maximum group-algorithm efficiency for `n` terminals at erasure
/// probability `p` (the value of [`group_optimum`]'s point).
pub fn group_max_efficiency(n: usize, p: f64) -> f64 {
    operating_efficiency(&group_optimum(n, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(9, 4), 126.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(3, 5), 0.0);
    }

    #[test]
    fn at_least_is_a_survival_function() {
        let k = 7;
        let p = 0.4;
        assert!((at_least(k, p, 0) - 1.0).abs() < 1e-12);
        let mut prev = 1.0;
        for g in 1..=k {
            let v = at_least(k, p, g);
            assert!(v <= prev + 1e-12);
            assert!(v >= 0.0);
            prev = v;
        }
        // P(>= k) = (1-p)^k.
        assert!((at_least(k, p, k) - (1.0f64 - p).powi(k as i32)).abs() < 1e-12);
    }

    #[test]
    fn n2_group_equals_unicast_equals_p_one_minus_p() {
        for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let g = group_max_efficiency(2, p);
            let u = unicast_efficiency(2, p);
            let expect = p * (1.0 - p);
            assert!((g - expect).abs() < 1e-6, "group {g} vs {expect} at p={p}");
            assert!((u - expect).abs() < 1e-12, "unicast {u} vs {expect}");
        }
    }

    #[test]
    fn peak_at_half_is_one_quarter_for_n2() {
        assert!((group_max_efficiency(2, 0.5) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn n3_peak_matches_hand_derivation() {
        // Hand-computed in the crate docs: at p = 0.5, k2 = 1/8, k1 = 1/4
        // total, M = 3/8, L = 1/4, eff = 0.25/1.125 = 2/9.
        let e = group_max_efficiency(3, 0.5);
        assert!((e - 2.0 / 9.0).abs() < 5e-3, "got {e}");
    }

    #[test]
    fn group_beats_unicast_and_gap_grows_with_n() {
        let p = 0.5;
        let mut prev_gap = 0.0;
        for n in [3, 6, 10] {
            let g = group_max_efficiency(n, p);
            let u = unicast_efficiency(n, p);
            assert!(g >= u - 1e-9, "n={n}: group {g} < unicast {u}");
            let gap = g / u;
            assert!(gap >= prev_gap, "relative gap must grow with n");
            prev_gap = gap;
        }
    }

    #[test]
    fn group_efficiency_decreases_with_n() {
        let p = 0.5;
        let mut prev = f64::INFINITY;
        for n in [2, 3, 6, 10, 20] {
            let e = group_max_efficiency(n, p);
            assert!(e <= prev + 1e-9, "n={n}: {e} > {prev}");
            assert!(e > 0.0);
            prev = e;
        }
    }

    #[test]
    fn unicast_collapses_with_n_group_does_not() {
        let p = 0.5;
        let u40 = unicast_efficiency(40, p);
        let g40 = group_max_efficiency(40, p);
        assert!(u40 < 0.03, "unicast at n=40: {u40}");
        assert!(g40 > 3.0 * u40, "group {g40} should dwarf unicast {u40}");
        assert!(g40 > 0.05, "group must stay useful: {g40}");
    }

    #[test]
    fn efficiency_vanishes_at_extremes() {
        for n in [2, 6] {
            assert_eq!(group_max_efficiency(n, 0.0), 0.0);
            assert_eq!(group_max_efficiency(n, 1.0), 0.0);
            assert_eq!(unicast_efficiency(n, 0.0), 0.0);
            assert_eq!(unicast_efficiency(n, 1.0), 0.0);
        }
    }

    #[test]
    fn curves_are_bell_shaped() {
        // Efficiency rises from p=0.05 to near the peak then falls; probe
        // coarse shape.
        for n in [3usize, 6, 10] {
            let low = group_max_efficiency(n, 0.05);
            let mid = group_max_efficiency(n, 0.5);
            let high = group_max_efficiency(n, 0.95);
            assert!(mid > low, "n={n}");
            assert!(mid > high, "n={n}");
        }
    }

    #[test]
    fn operating_point_reports_feasibility() {
        // Demanding more than the budget allows must be flagged.
        let op = group_efficiency_at(3, 0.5, 0.9);
        assert!(!op.feasible);
        assert!(op.l < 0.9);
        let op = group_efficiency_at(3, 0.5, 0.01);
        assert!(op.feasible);
        assert!((op.l - 0.01).abs() < 1e-9);
    }

    #[test]
    fn deep_levels_preferred() {
        // At moderate p the deepest level must be used first.
        let op = group_efficiency_at(4, 0.5, 0.05);
        assert!(op.rows_per_level[2] > 0.0, "{:?}", op);
        // Tiny targets never touch level 1 before exhausting level 3.
        assert_eq!(op.rows_per_level[0], 0.0);
    }
}
