//! Closed-form efficiency model for Figure 1.
//!
//! The paper's Figure 1 plots the *maximum efficiency* (secret size over
//! the data Alice must transmit) of the group algorithm (continuous
//! lines) and the unicast algorithm (dashed lines) against the packet
//! erasure probability, for n ∈ {2, 3, 6, 10, ∞}, "under simplifying
//! assumptions: Alice guesses exactly the number of x-packets shared with
//! terminal Ti that are missed by Eve; the packet erasure probability
//! between Alice and each terminal, as well as Alice and Eve, is the
//! same."
//!
//! This crate derives both curves for *our* construction in the
//! large-`N` fluid limit, where every set concentrates on its expectation
//! (all quantities below are fractions of `N`):
//!
//! * a terminal receives a `1−p` fraction of the x-packets; Eve misses a
//!   `p` fraction of those, so each pairwise budget is `m = p(1−p)`;
//! * a y-row "at level g" has support inside the intersection of `g`
//!   terminals' received sets (mass `(1−p)^g`) and serves all `g` of
//!   them; its Eve-unknown capacity pools with the other rows under the
//!   nested Hall constraints
//!   `Σ_{g′≥g} C(n−1,g′)·k_{g′} ≤ p·P(received by ≥ g terminals)`;
//! * the cost per unit of per-terminal coverage at level `g` is
//!   `(n−1)/g`, strictly decreasing in `g`, so the greedy fill from the
//!   deepest level is optimal (the constraint system is a polymatroid);
//! * group efficiency = `L / (1 + M − L)` (Alice transmits the `N`
//!   x-packets plus `M − L` z-packets); unicast efficiency =
//!   `m / (1 + (n−2)·m)` (the pairwise secret plus one padded copy per
//!   extra terminal).
//!
//! For `n = 2` both curves coincide at `p(1−p)` (peak 1/4 at `p = 1/2`),
//! matching the top curve of the paper's figure; as `n → ∞` the unicast
//! efficiency collapses to 0 while the group efficiency stays bounded
//! away from it for moderate `p` — the paper's qualitative claim.
//!
//! ```
//! use thinair_model::{group_max_efficiency, predict, unicast_efficiency};
//!
//! // n = 2: both algorithms peak at p(1−p) = 1/4.
//! assert!((group_max_efficiency(2, 0.5) - 0.25).abs() < 1e-6);
//! assert!((unicast_efficiency(2, 0.5) - 0.25).abs() < 1e-12);
//!
//! // The scenario engine's lookup: one call per (n, p) point.
//! let pred = predict(6, 0.5);
//! assert!(pred.group_efficiency > pred.unicast_efficiency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod efficiency;
pub mod predict;

pub use efficiency::{
    group_efficiency_at, group_max_efficiency, group_optimum, operating_efficiency,
    pairwise_budget_fraction, unicast_efficiency, GroupOperatingPoint,
};
pub use predict::{predict, Prediction};
