//! Per-scenario prediction lookup: the bridge between the closed-form
//! model and a measured experiment.
//!
//! An experiment harness describes a scenario by two numbers the model
//! understands — the terminal count `n` and the (mean) erasure
//! probability `p` — and gets back everything Figure 1 knows about that
//! point: the maximum group and unicast efficiencies, the pairwise
//! budget, and the operating point `(L*, M*)` the optimum sits at. The
//! measured run then reports its achieved `(l, m)` alongside, and the gap
//! between the two *is* the model-vs-measurement story (finite `N`
//! instead of the fluid limit, an estimator instead of Alice's exact
//! guess, construction conservatism instead of the Hall caps).
//!
//! For a bursty channel (e.g. Gilbert-Elliott), feed the *stationary*
//! erasure rate: the fluid model only sees first-order loss mass, so the
//! residual gap between a burst-loss measurement and its iid prediction
//! quantifies what burstiness costs the construction.
//!
//! ```
//! use thinair_model::predict;
//!
//! let pred = predict(4, 0.5);
//! // Group coding always beats padded unicast copies for n > 2 ...
//! assert!(pred.group_efficiency > pred.unicast_efficiency);
//! // ... and the optimum spends more y-rows than it keeps secret.
//! assert!(pred.m_star > pred.l_star && pred.l_star > 0.0);
//! ```

use crate::efficiency::{
    group_optimum, operating_efficiency, pairwise_budget_fraction, unicast_efficiency,
    GroupOperatingPoint,
};

/// Everything the closed-form model predicts about one scenario point.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Number of terminals (coordinator included).
    pub n: usize,
    /// The (mean) packet-erasure probability the prediction assumes.
    pub p: f64,
    /// Maximum group-algorithm efficiency (secret per transmitted
    /// packet) in the fluid limit.
    pub group_efficiency: f64,
    /// The unicast baseline's efficiency at the same point.
    pub unicast_efficiency: f64,
    /// Per-pair secret budget fraction `p(1−p)`.
    pub pairwise_budget: f64,
    /// Optimal per-terminal secret fraction `L*` (of the x-pool size).
    pub l_star: f64,
    /// Total y-row fraction `M*` at the optimum.
    pub m_star: f64,
}

impl Prediction {
    /// Scales the fractional optimum to a concrete x-pool of
    /// `n_packets` packets: the `(L, M)` a measured run would ideally
    /// achieve, in packets.
    pub fn scaled(&self, n_packets: usize) -> (f64, f64) {
        (self.l_star * n_packets as f64, self.m_star * n_packets as f64)
    }

    /// The measured analogue of [`Prediction::group_efficiency`] for a
    /// finite round that extracted `l` of its planned `m` rows over an
    /// `n_packets` pool: `l / (n_packets + m − l)` (Alice transmits the
    /// pool plus the `m − l` z-packets).
    pub fn measured_efficiency(n_packets: usize, m: usize, l: usize) -> f64 {
        if l == 0 {
            return 0.0;
        }
        l as f64 / (n_packets as f64 + m as f64 - l as f64)
    }
}

/// Evaluates the closed-form model at one `(n, p)` point.
///
/// # Panics
/// Panics when `n < 2` or `p` is outside `[0, 1]`.
pub fn predict(n: usize, p: f64) -> Prediction {
    let op: GroupOperatingPoint = group_optimum(n, p);
    Prediction {
        n,
        p,
        group_efficiency: operating_efficiency(&op),
        unicast_efficiency: unicast_efficiency(n, p),
        pairwise_budget: pairwise_budget_fraction(p),
        l_star: op.l,
        m_star: op.m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_is_consistent_with_raw_curves() {
        for n in [2usize, 3, 6, 10] {
            for p in [0.2, 0.5, 0.8] {
                let pred = predict(n, p);
                let eff = crate::efficiency::group_max_efficiency(n, p);
                assert!((pred.group_efficiency - eff).abs() < 1e-12, "n={n} p={p}");
                assert!(
                    (pred.unicast_efficiency - unicast_efficiency(n, p)).abs() < 1e-12,
                    "n={n} p={p}"
                );
                // The reported (L*, M*) reproduce the reported efficiency.
                let from_point = pred.l_star / (1.0 + pred.m_star - pred.l_star);
                assert!((from_point - pred.group_efficiency).abs() < 1e-9, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn scaled_optimum_is_in_packets() {
        let pred = predict(4, 0.5);
        let (l, m) = pred.scaled(100);
        assert!(l > 1.0 && m > l && m < 100.0);
    }

    #[test]
    fn measured_efficiency_matches_definition() {
        assert_eq!(Prediction::measured_efficiency(60, 15, 9), 9.0 / 66.0);
        assert_eq!(Prediction::measured_efficiency(60, 0, 0), 0.0);
    }

    #[test]
    fn degenerate_points_predict_zero() {
        for p in [0.0, 1.0] {
            let pred = predict(3, p);
            assert_eq!(pred.group_efficiency, 0.0);
            assert_eq!(pred.l_star, 0.0);
        }
    }
}
