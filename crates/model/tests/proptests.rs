//! Property-based tests for the Figure-1 efficiency model.

use proptest::prelude::*;
use thinair_model::{
    group_efficiency_at, group_max_efficiency, pairwise_budget_fraction, unicast_efficiency,
};

proptest! {
    #[test]
    fn efficiencies_are_probability_like(n in 2usize..20, p in 0.0f64..1.0) {
        let g = group_max_efficiency(n, p);
        let u = unicast_efficiency(n, p);
        prop_assert!((0.0..=1.0).contains(&g));
        prop_assert!((0.0..=1.0).contains(&u));
        // Nothing beats the n=2 theoretical ceiling of 1/4.
        prop_assert!(g <= 0.25 + 1e-9);
        prop_assert!(u <= 0.25 + 1e-9);
    }

    #[test]
    fn group_dominates_unicast(n in 2usize..16, p in 0.05f64..0.95) {
        prop_assert!(
            group_max_efficiency(n, p) >= unicast_efficiency(n, p) - 1e-9,
            "phase 2 must never be worse than unicasting"
        );
    }

    #[test]
    fn group_efficiency_monotone_in_n(p in 0.1f64..0.9, n in 2usize..12) {
        let now = group_max_efficiency(n, p);
        let bigger = group_max_efficiency(n + 1, p);
        prop_assert!(bigger <= now + 1e-6, "n={n} p={p}: {bigger} > {now}");
    }

    #[test]
    fn budget_fraction_symmetry(p in 0.0f64..1.0) {
        // p(1-p) is symmetric about 1/2 and peaks there.
        let m = pairwise_budget_fraction(p);
        let m_sym = pairwise_budget_fraction(1.0 - p);
        prop_assert!((m - m_sym).abs() < 1e-12);
        prop_assert!(m <= 0.25 + 1e-12);
    }

    #[test]
    fn operating_point_is_consistent(n in 2usize..10, p in 0.05f64..0.95, frac in 0.0f64..1.0) {
        let l_target = pairwise_budget_fraction(p) * frac;
        let op = group_efficiency_at(n, p, l_target);
        // Achieved L never exceeds the target and M covers it.
        prop_assert!(op.l <= l_target + 1e-12);
        prop_assert!(op.m + 1e-12 >= op.l, "need at least L rows");
        prop_assert!(op.rows_per_level.iter().all(|&k| k >= 0.0));
        let total: f64 = op.rows_per_level.iter().sum();
        prop_assert!((total - op.m).abs() < 1e-9);
        if op.feasible {
            prop_assert!((op.l - l_target).abs() < 1e-9);
        }
    }
}
