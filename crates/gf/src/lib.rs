//! Finite-field arithmetic and dense linear algebra over GF(2^8).
//!
//! This crate is the numeric substrate of the `thinair` workspace. The
//! secret-agreement protocol of Safaka et al. (HotNets'12) manipulates
//! packets as vectors of GF(2^8) symbols and reasons about secrecy in terms
//! of ranks of coefficient matrices over that field:
//!
//! * the *y/z/s constructions* of the protocol are matrix products over
//!   GF(2^8) (see `thinair-mds` and `thinair-core`),
//! * a terminal decodes missing packets by solving a linear system
//!   ([`Matrix::solve`]),
//! * the evaluation metric *reliability* is a rank difference of stacked
//!   systems ([`linalg::rank_increase`]).
//!
//! The field is represented by [`Gf256`], a transparent wrapper over `u8`
//! using the `0x11D` reduction polynomial (the conventional Reed–Solomon
//! polynomial; `x^8 + x^4 + x^3 + x^2 + 1`) with generator `2`. All tables
//! are computed at compile time, so arithmetic is branch-free table lookups.
//!
//! Bulk payload work runs on the byte-plane layer: [`plane::PayloadPlane`]
//! stores payload bundles contiguously (one allocation, row-major) and
//! [`kernel`] provides the slice-of-bytes kernels — per-multiplier
//! 256-byte product tables, 8-lane-per-`u64` SWAR XOR/axpy, and shared
//! row doublings for matrix × plane products and elimination. The
//! `Gf256`-typed wrappers in [`vector`] forward to the same scheme. See
//! the repository README's "Performance" section for measured numbers.
//!
//! Everything here is `no_std`-shaped in spirit (no I/O, no global state)
//! but uses `alloc`-style `Vec` freely: the protocol runs on hosts, not
//! microcontrollers, and the guides this workspace follows (smoltcp/tokio)
//! only demand predictable, allocation-conscious behaviour in hot paths —
//! matrices are allocated once and mutated in place. `forbid(unsafe_code)`
//! holds even in the wide kernels: word views are safe `chunks_exact` +
//! `from_le_bytes`, which LLVM fuses into word loads and auto-vectorizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
pub mod kernel;
pub mod linalg;
pub mod matrix;
pub mod plane;
pub mod poly;
pub mod vector;

pub use gf256::Gf256;
pub use linalg::{rank, rank_increase, RowEchelon};
pub use matrix::Matrix;
pub use plane::PayloadPlane;
pub use poly::Poly;
pub use vector::{add_assign_scaled, dot, scale_in_place};
