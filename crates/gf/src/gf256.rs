//! The field GF(2^8) = GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1).
//!
//! Elements are bytes; addition is XOR; multiplication uses compile-time
//! exp/log tables over the primitive element `α = 2`. The reduction
//! polynomial `0x11D` is the one conventionally used by Reed–Solomon
//! implementations, for which 2 is a primitive root, so
//! `exp[i] = α^i` enumerates all 255 non-zero elements.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Reduction polynomial for the field, as the low 9 bits of `x^8 + x^4 +
/// x^3 + x^2 + 1`.
pub const POLY: u16 = 0x11D;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

/// Order of the multiplicative group (`FIELD_SIZE - 1`).
pub const GROUP_ORDER: usize = 255;

const fn build_exp() -> [u8; 512] {
    // exp is doubled in length so that `exp[log a + log b]` never needs a
    // modular reduction (log a + log b <= 508).
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 512 {
        exp[i] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    exp
}

const fn build_log(exp: &[u8; 512]) -> [u8; 256] {
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    // log[0] is never consulted by correct code paths (multiplication by
    // zero short-circuits); leave it 0.
    log
}

/// `EXP[i] = 2^i` in the field, for `i` in `0..512` (wraps at 255).
pub const EXP: [u8; 512] = build_exp();

/// `LOG[a] = log_2 a` for non-zero `a`; `LOG[0]` is unspecified.
pub const LOG: [u8; 256] = build_log(&EXP);

/// An element of GF(2^8).
///
/// The wrapper is `#[repr(transparent)]`, so slices of `Gf256` and slices
/// of `u8` have identical layout; [`Gf256::slice_from_bytes_mut`]-style
/// conversions are nevertheless done safely via iteration because this
/// crate forbids `unsafe`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The conventional primitive element (generator of the multiplicative
    /// group).
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Constructs an element from its byte representation.
    #[inline]
    pub const fn new(v: u8) -> Self {
        Gf256(v)
    }

    /// Returns the byte representation.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// True iff this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `α^i` for the primitive element α = 2. The exponent is reduced mod
    /// 255.
    #[inline]
    pub fn alpha_pow(i: usize) -> Self {
        Gf256(EXP[i % GROUP_ORDER])
    }

    /// Discrete log base α of a non-zero element.
    ///
    /// # Panics
    /// Panics in debug builds when `self` is zero (log of zero is
    /// undefined).
    #[inline]
    pub fn log(self) -> u8 {
        debug_assert!(!self.is_zero(), "log of zero");
        LOG[self.0 as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics when `self` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        assert!(!self.is_zero(), "inverse of zero in GF(256)");
        Gf256(EXP[GROUP_ORDER - LOG[self.0 as usize] as usize])
    }

    /// `self` raised to the `e`-th power (with `0^0 = 1`).
    pub fn pow(self, e: usize) -> Self {
        if e == 0 {
            return Gf256::ONE;
        }
        if self.is_zero() {
            return Gf256::ZERO;
        }
        let l = LOG[self.0 as usize] as usize;
        Gf256(EXP[(l * e) % GROUP_ORDER])
    }

    /// Iterator over all 256 field elements in byte order.
    pub fn all() -> impl Iterator<Item = Gf256> {
        (0u16..256).map(|v| Gf256(v as u8))
    }

    /// Iterator over the 255 non-zero elements in byte order.
    pub fn all_nonzero() -> impl Iterator<Item = Gf256> {
        (1u16..256).map(|v| Gf256(v as u8))
    }
}

#[inline]
fn mul_bytes(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // GF(2^8) addition IS xor
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // GF(2^8) addition IS xor
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // characteristic 2
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction is addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // characteristic 2
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(mul_bytes(self.0, rhs.0))
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        self.0 = mul_bytes(self.0, rhs.0);
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division = mul by inverse
    fn div(self, rhs: Gf256) -> Gf256 {
        self * rhs.inv()
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |a, b| a + b)
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |a, b| a * b)
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(v: Gf256) -> u8 {
        v.0
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // exp/log are mutually inverse on the non-zero elements.
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
        // exp has period 255.
        for i in 0..255 {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn generator_is_primitive() {
        // 2^i for i in 0..255 hits every non-zero element exactly once.
        let mut seen = [false; 256];
        for (i, &e) in EXP.iter().enumerate().take(255) {
            let v = e as usize;
            assert!(!seen[v], "2^{i} repeats value {v}");
            seen[v] = true;
        }
        assert!(!seen[0]);
        assert_eq!(seen.iter().filter(|s| **s).count(), 255);
    }

    #[test]
    fn add_is_xor() {
        assert_eq!(Gf256(0x53) + Gf256(0xCA), Gf256(0x53 ^ 0xCA));
        assert_eq!(Gf256(0xFF) - Gf256(0x0F), Gf256(0xF0));
    }

    #[test]
    fn known_products() {
        // Hand-checked products under 0x11D.
        assert_eq!(Gf256(2) * Gf256(2), Gf256(4));
        assert_eq!(Gf256(0x80) * Gf256(2), Gf256(0x1D));
        assert_eq!(Gf256(0xFF) * Gf256(1), Gf256(0xFF));
        assert_eq!(Gf256(0xAB) * Gf256(0), Gf256(0));
    }

    #[test]
    fn inverse_round_trip() {
        for a in Gf256::all_nonzero() {
            assert_eq!(a * a.inv(), Gf256::ONE, "a = {a:?}");
            assert_eq!(a / a, Gf256::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_has_no_inverse() {
        let _ = Gf256::ZERO.inv();
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [Gf256(0), Gf256(1), Gf256(2), Gf256(0x53), Gf256(0xFE)] {
            let mut acc = Gf256::ONE;
            for e in 0..20 {
                assert_eq!(a.pow(e), acc, "a={a:?} e={e}");
                acc *= a;
            }
        }
    }

    #[test]
    fn pow_zero_exponent_is_one_even_for_zero_base() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
    }

    #[test]
    fn pow_large_exponents_reduce_mod_group_order() {
        for a in [Gf256(3), Gf256(0x9C)] {
            assert_eq!(a.pow(255), Gf256::ONE);
            assert_eq!(a.pow(256), a);
            assert_eq!(a.pow(510), Gf256::ONE);
        }
    }

    #[test]
    fn alpha_pow_wraps() {
        assert_eq!(Gf256::alpha_pow(0), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(1), Gf256::GENERATOR);
        assert_eq!(Gf256::alpha_pow(255), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(256), Gf256::GENERATOR);
    }

    #[test]
    fn distributivity_exhaustive_slice() {
        // Spot an algebra error early with a dense (but fast) sweep over a
        // structured subset of triples.
        for a in 0..=255u8 {
            for (b, c) in [(3u8, 7u8), (0x1D, 0xF0), (0xAA, 0x55)] {
                let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
                assert_eq!(a * (b + c), a * b + a * c);
            }
        }
    }

    #[test]
    fn all_iterators() {
        assert_eq!(Gf256::all().count(), 256);
        assert_eq!(Gf256::all_nonzero().count(), 255);
        assert!(Gf256::all_nonzero().all(|x| !x.is_zero()));
    }
}
