//! Polynomials over GF(2^8).
//!
//! Used by the Reed–Solomon code in `thinair-mds`: generator-polynomial
//! construction, evaluation (Horner), and Lagrange interpolation for
//! erasure decoding.

use crate::gf256::Gf256;

/// A polynomial with coefficients in GF(2^8), lowest degree first.
///
/// The zero polynomial is represented by an empty coefficient vector;
/// non-zero polynomials keep a non-zero leading coefficient (enforced by
/// [`Poly::normalize`] after every operation).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Poly {
    coeffs: Vec<Gf256>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly { coeffs: vec![Gf256::ONE] }
    }

    /// Builds a polynomial from coefficients, lowest degree first.
    pub fn from_coeffs(coeffs: Vec<Gf256>) -> Self {
        let mut p = Poly { coeffs };
        p.normalize();
        p
    }

    /// The monomial `c * x^d`.
    pub fn monomial(c: Gf256, d: usize) -> Self {
        if c.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; d + 1];
        coeffs[d] = c;
        Poly { coeffs }
    }

    fn normalize(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Coefficients, lowest degree first (empty for zero).
    pub fn coeffs(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Coefficient of `x^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> Gf256 {
        self.coeffs.get(i).copied().unwrap_or(Gf256::ZERO)
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        let mut acc = Gf256::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = Vec::with_capacity(n);
        for i in 0..n {
            coeffs.push(self.coeff(i) + other.coeff(i));
        }
        Poly::from_coeffs(coeffs)
    }

    /// Polynomial multiplication (schoolbook; degrees here are tiny).
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Poly::from_coeffs(coeffs)
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, c: Gf256) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q * divisor + r`, `deg r < deg divisor`.
    ///
    /// # Panics
    /// Panics when `divisor` is zero.
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "division by zero polynomial");
        let dd = divisor.degree().unwrap();
        let lead_inv = divisor.coeffs[dd].inv();
        let mut rem = self.coeffs.clone();
        if rem.len() <= dd {
            return (Poly::zero(), self.clone());
        }
        let mut quot = vec![Gf256::ZERO; rem.len() - dd];
        for i in (dd..rem.len()).rev() {
            let c = rem[i];
            if c.is_zero() {
                continue;
            }
            let q = c * lead_inv;
            quot[i - dd] = q;
            for (j, &dcoef) in divisor.coeffs.iter().enumerate() {
                rem[i - dd + j] -= q * dcoef;
            }
        }
        (Poly::from_coeffs(quot), Poly::from_coeffs(rem))
    }

    /// Lagrange interpolation: the unique polynomial of degree `< points.len()`
    /// passing through all `(x, y)` pairs.
    ///
    /// # Panics
    /// Panics when two points share an x-coordinate.
    pub fn interpolate(points: &[(Gf256, Gf256)]) -> Poly {
        let mut acc = Poly::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            if yi.is_zero() {
                continue;
            }
            // Basis polynomial l_i(x) = prod_{j!=i} (x - x_j)/(x_i - x_j).
            let mut num = Poly::one();
            let mut denom = Gf256::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert!(xi != xj, "interpolation nodes must be distinct");
                num = num.mul(&Poly::from_coeffs(vec![xj, Gf256::ONE])); // (x + xj) == (x - xj)
                denom *= xi - xj;
            }
            acc = acc.add(&num.scale(yi * denom.inv()));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(coeffs: &[u8]) -> Poly {
        Poly::from_coeffs(coeffs.iter().map(|&c| Gf256(c)).collect())
    }

    #[test]
    fn normalization_strips_leading_zeros() {
        assert_eq!(p(&[1, 2, 0, 0]).degree(), Some(1));
        assert!(p(&[0, 0]).is_zero());
        assert_eq!(Poly::zero().degree(), None);
    }

    #[test]
    fn eval_horner_matches_naive() {
        let f = p(&[3, 1, 4, 1, 5]);
        for x in [Gf256(0), Gf256(1), Gf256(2), Gf256(0x53)] {
            let naive: Gf256 = f.coeffs().iter().enumerate().map(|(i, &c)| c * x.pow(i)).sum();
            assert_eq!(f.eval(x), naive);
        }
    }

    #[test]
    fn mul_degree_adds() {
        let a = p(&[1, 1]); // x + 1
        let b = p(&[2, 0, 1]); // x^2 + 2
        let c = a.mul(&b);
        assert_eq!(c.degree(), Some(3));
        // Evaluate-and-compare at several points (sound since deg < field size).
        for x in Gf256::all().take(10) {
            assert_eq!(c.eval(x), a.eval(x) * b.eval(x));
        }
    }

    #[test]
    fn div_rem_reconstructs() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..20 {
            let a_coeffs: Vec<Gf256> = (0..rng.gen_range(1..8)).map(|_| Gf256(rng.gen())).collect();
            let mut b_coeffs: Vec<Gf256> =
                (0..rng.gen_range(1..5)).map(|_| Gf256(rng.gen())).collect();
            // Force non-zero divisor.
            if b_coeffs.iter().all(|c| c.is_zero()) {
                b_coeffs[0] = Gf256::ONE;
            }
            let a = Poly::from_coeffs(a_coeffs);
            let b = Poly::from_coeffs(b_coeffs);
            let (q, r) = a.div_rem(&b);
            assert_eq!(q.mul(&b).add(&r), a);
            if let (Some(rd), Some(bd)) = (r.degree(), b.degree()) {
                assert!(rd < bd);
            }
        }
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..10 {
            let deg = rng.gen_range(0..6);
            let f = Poly::from_coeffs((0..=deg).map(|_| Gf256(rng.gen())).collect());
            // Sample at deg+1 distinct points.
            let points: Vec<(Gf256, Gf256)> = (0..=deg as u8)
                .map(|i| {
                    let x = Gf256(i + 1);
                    (x, f.eval(x))
                })
                .collect();
            let g = Poly::interpolate(&points);
            // Same evaluations everywhere => same polynomial of bounded degree.
            for x in Gf256::all().take(20) {
                assert_eq!(f.eval(x), g.eval(x));
            }
        }
    }

    #[test]
    fn monomial_shape() {
        let m = Poly::monomial(Gf256(7), 3);
        assert_eq!(m.degree(), Some(3));
        assert_eq!(m.coeff(3), Gf256(7));
        assert_eq!(m.coeff(0), Gf256::ZERO);
        assert!(Poly::monomial(Gf256::ZERO, 5).is_zero());
    }
}
