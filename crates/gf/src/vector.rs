//! Vector kernels over GF(2^8) symbol slices.
//!
//! These are thin `Gf256`-typed wrappers over the byte kernels in
//! [`crate::kernel`]: the same per-multiplier product tables and
//! 8-lane-per-word SWAR arithmetic, applied to `&[Gf256]` (which has the
//! same layout as `&[u8]`, `Gf256` being `#[repr(transparent)]`; the
//! word views are assembled with safe byte gathers that LLVM fuses into
//! word loads). Bulk payload work should prefer
//! [`crate::plane::PayloadPlane`] and the byte kernels directly.

use crate::gf256::Gf256;
use crate::kernel::{self, LaneMul};

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics when the lengths differ.
#[inline]
pub fn dot(a: &[Gf256], b: &[Gf256]) -> Gf256 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc ^= kernel::gf_mul(x.0, y.0);
    }
    Gf256(acc)
}

/// Multiplies every element of `v` by the scalar `c` in place.
#[inline]
pub fn scale_in_place(v: &mut [Gf256], c: Gf256) {
    if c == Gf256::ONE {
        return;
    }
    if c.is_zero() {
        v.fill(Gf256::ZERO);
        return;
    }
    let t = kernel::mul_table(c);
    for x in v.iter_mut() {
        x.0 = t[x.0 as usize];
    }
}

/// `dst += c * src` elementwise (the GF(2^8) "axpy" kernel).
///
/// # Panics
/// Panics when the lengths differ.
#[inline]
pub fn add_assign_scaled(dst: &mut [Gf256], src: &[Gf256], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "axpy of mismatched lengths");
    if c.is_zero() {
        return;
    }
    if c == Gf256::ONE {
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            d.0 ^= s.0;
        }
        return;
    }
    let lm = LaneMul::new(c);
    let mut dc = dst.chunks_exact_mut(8);
    let mut sc = src.chunks_exact(8);
    for (d, s) in (&mut dc).zip(&mut sc) {
        let sw =
            u64::from_le_bytes([s[0].0, s[1].0, s[2].0, s[3].0, s[4].0, s[5].0, s[6].0, s[7].0]);
        let dw =
            u64::from_le_bytes([d[0].0, d[1].0, d[2].0, d[3].0, d[4].0, d[5].0, d[6].0, d[7].0]);
        let out = (dw ^ lm.mul_word(sw)).to_le_bytes();
        for (di, &o) in d.iter_mut().zip(out.iter()) {
            di.0 = o;
        }
    }
    let t = kernel::mul_table(c);
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        d.0 ^= t[s.0 as usize];
    }
}

/// Converts a byte slice into a `Gf256` vector (copying).
pub fn from_bytes(bytes: &[u8]) -> Vec<Gf256> {
    bytes.iter().copied().map(Gf256).collect()
}

/// Converts a `Gf256` slice into bytes (copying).
pub fn to_bytes(v: &[Gf256]) -> Vec<u8> {
    v.iter().map(|x| x.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(bytes: &[u8]) -> Vec<Gf256> {
        from_bytes(bytes)
    }

    #[test]
    fn dot_matches_manual() {
        let a = v(&[1, 2, 3]);
        let b = v(&[4, 5, 6]);
        let expect = Gf256(1) * Gf256(4) + Gf256(2) * Gf256(5) + Gf256(3) * Gf256(6);
        assert_eq!(dot(&a, &b), expect);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), Gf256::ZERO);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&v(&[1]), &v(&[1, 2]));
    }

    #[test]
    fn scale_by_zero_one_and_general() {
        let mut a = v(&[1, 2, 0, 0xFF]);
        scale_in_place(&mut a, Gf256::ONE);
        assert_eq!(a, v(&[1, 2, 0, 0xFF]));

        let mut b = a.clone();
        scale_in_place(&mut b, Gf256(3));
        for (orig, scaled) in a.iter().zip(b.iter()) {
            assert_eq!(*orig * Gf256(3), *scaled);
        }

        scale_in_place(&mut b, Gf256::ZERO);
        assert!(b.iter().all(|x| x.is_zero()));
    }

    #[test]
    fn axpy_matches_scalar_ops() {
        let src = v(&[9, 0, 7, 0x80]);
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut dst = v(&[1, 2, 3, 4]);
            add_assign_scaled(&mut dst, &src, Gf256(c));
            for (i, d) in dst.iter().enumerate() {
                let expect = Gf256([1, 2, 3, 4][i]) + src[i] * Gf256(c);
                assert_eq!(*d, expect, "c={c:#x} i={i}");
            }
        }
    }

    #[test]
    fn axpy_long_vectors_cover_word_path() {
        // 8-element word chunks plus a tail.
        let src: Vec<Gf256> =
            (0..37u8).map(|i| Gf256(i.wrapping_mul(31).wrapping_add(1))).collect();
        for c in [2u8, 0x53, 0xE5] {
            let mut dst: Vec<Gf256> = (0..37u8).map(|i| Gf256(i.wrapping_mul(13))).collect();
            let expect: Vec<Gf256> =
                dst.iter().zip(src.iter()).map(|(&d, &s)| d + s * Gf256(c)).collect();
            add_assign_scaled(&mut dst, &src, Gf256(c));
            assert_eq!(dst, expect, "c={c:#x}");
        }
    }

    #[test]
    fn bytes_round_trip() {
        let bytes = [0u8, 1, 2, 254, 255];
        assert_eq!(to_bytes(&from_bytes(&bytes)), bytes.to_vec());
    }
}
