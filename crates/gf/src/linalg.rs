//! Rank bookkeeping utilities.
//!
//! The protocol's secrecy accounting asks one question over and over:
//! *given everything Eve already knows (a set of coefficient rows), how
//! many of these candidate secret rows are independent of that knowledge?*
//! [`RowEchelon`] maintains an incremental echelon basis so that rows can
//! be fed in one at a time (as Eve overhears packets) and rank queries stay
//! cheap; [`rank_increase`] is the one-shot form used by the evaluation
//! metrics.
//!
//! Basis rows live contiguously in a [`PayloadPlane`] and all reductions
//! run on the byte kernels; insertion reuses one scratch buffer, so the
//! steady state allocates only when the basis itself grows.

use crate::gf256::Gf256;
use crate::kernel;
use crate::matrix::Matrix;
use crate::plane::PayloadPlane;

/// Rank of a matrix (convenience free function).
pub fn rank(m: &Matrix) -> usize {
    m.rank()
}

/// How many extra dimensions `extra` spans beyond `base`:
/// `rank([base; extra]) - rank(base)`.
///
/// This is exactly the paper's reliability numerator: with `base` = Eve's
/// knowledge rows and `extra` = the secret's coefficient rows, the result
/// is the number of secret packets that remain uniformly distributed given
/// Eve's view.
pub fn rank_increase(base: &Matrix, extra: &Matrix) -> usize {
    if extra.rows() == 0 {
        return 0;
    }
    if base.rows() == 0 {
        return extra.rank();
    }
    let stacked = base.vstack(extra);
    stacked.rank() - base.rank()
}

/// An incremental row-echelon basis over GF(2^8).
///
/// Rows are inserted with [`RowEchelon::insert`]; the structure keeps a
/// reduced set of basis rows with strictly increasing pivot columns.
/// Insertion is `O(rank * width)`.
///
/// ```
/// use thinair_gf::{Gf256, RowEchelon};
///
/// let mut re = RowEchelon::new(3);
/// assert!(re.insert(&[Gf256(1), Gf256(2), Gf256(3)]));
/// // 2x the same row: linearly dependent, rank unchanged.
/// assert!(!re.insert(&[Gf256(2), Gf256(4), Gf256(6)]));
/// assert_eq!(re.rank(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RowEchelon {
    /// Basis rows, sorted by pivot column; each row's pivot entry is 1.
    rows: PayloadPlane,
    /// Pivot column of each basis row (parallel to `rows`).
    pivots: Vec<usize>,
    width: usize,
    /// Reusable insertion scratch (one row).
    scratch: Vec<u8>,
}

impl RowEchelon {
    /// An empty basis for rows of the given width.
    pub fn new(width: usize) -> Self {
        RowEchelon {
            rows: PayloadPlane::empty(width),
            pivots: Vec::new(),
            width,
            scratch: Vec::new(),
        }
    }

    /// Width of the rows this basis accepts.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Current rank (number of independent rows inserted so far).
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }

    /// Reduces `row` (bytes) against the basis in place; afterwards
    /// `row` is either all-zero (it was dependent) or has its leading
    /// coefficient at a column no basis row uses.
    fn reduce_bytes(&self, row: &mut [u8]) {
        for (k, &p) in self.pivots.iter().enumerate() {
            let c = row[p];
            if c != 0 {
                kernel::axpy(row, self.rows.row(k), c);
            }
        }
    }

    /// Returns true iff `row` is in the span of the inserted rows.
    pub fn contains(&self, row: &[Gf256]) -> bool {
        assert_eq!(row.len(), self.width, "row width mismatch");
        let mut r: Vec<u8> = row.iter().map(|x| x.value()).collect();
        self.reduce_bytes(&mut r);
        r.iter().all(|&x| x == 0)
    }

    /// Inserts a row. Returns `true` when the row increased the rank,
    /// `false` when it was already in the span.
    pub fn insert(&mut self, row: &[Gf256]) -> bool {
        assert_eq!(row.len(), self.width, "row width mismatch");
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(row.iter().map(|x| x.value()));
        let grew = self.insert_scratch(&mut scratch);
        self.scratch = scratch;
        grew
    }

    /// Byte-slice form of [`RowEchelon::insert`].
    pub fn insert_bytes(&mut self, row: &[u8]) -> bool {
        assert_eq!(row.len(), self.width, "row width mismatch");
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(row);
        let grew = self.insert_scratch(&mut scratch);
        self.scratch = scratch;
        grew
    }

    fn insert_scratch(&mut self, r: &mut [u8]) -> bool {
        self.reduce_bytes(r);
        let Some(pivot) = r.iter().position(|&x| x != 0) else {
            return false;
        };
        let inv = Gf256(r[pivot]).inv();
        kernel::scale_in_place(r, inv.value());
        // Back-substitute into existing basis rows to keep them reduced.
        for k in 0..self.pivots.len() {
            let c = self.rows.row(k)[pivot];
            if c != 0 {
                kernel::axpy(self.rows.row_mut(k), r, c);
            }
        }
        // Keep pivot order sorted.
        let pos = self.pivots.partition_point(|&p| p < pivot);
        self.pivots.insert(pos, pivot);
        self.rows.insert_row(pos, r);
        true
    }

    /// Inserts every row of a matrix; returns how many increased the rank.
    pub fn insert_matrix(&mut self, m: &Matrix) -> usize {
        m.rows_iter().filter(|row| self.insert(row)).count()
    }

    /// How many of the rows of `m` are jointly independent of the current
    /// span: `rank(self ∪ m) - rank(self)`. Does not modify the basis.
    ///
    /// Runs against a small side basis of the *new* dimensions only —
    /// nothing of `self` is cloned. Every probed row is first reduced
    /// against the main basis, so the side rows stay zero on the main
    /// pivot columns and the two bases together behave as one echelon.
    ///
    /// # Panics
    /// Panics when `m.cols()` differs from this basis's width.
    pub fn rank_increase(&self, m: &Matrix) -> usize {
        assert_eq!(m.cols(), self.width, "row width mismatch");
        let mut fresh = RowEchelon::new(self.width);
        let mut buf = vec![0u8; self.width];
        let mut grew = 0;
        for row in m.rows_iter() {
            for (b, x) in buf.iter_mut().zip(row.iter()) {
                *b = x.value();
            }
            self.reduce_bytes(&mut buf);
            if fresh.insert_bytes(&buf) {
                grew += 1;
            }
        }
        grew
    }

    /// The basis rows as a matrix (for interoperating with [`Matrix`]).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.pivots.len(), self.width, |r, c| Gf256(self.rows.row(r)[c]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::add_assign_scaled;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(width: usize, i: usize) -> Vec<Gf256> {
        let mut v = vec![Gf256::ZERO; width];
        v[i] = Gf256::ONE;
        v
    }

    #[test]
    fn insert_units_gives_full_rank() {
        let mut re = RowEchelon::new(4);
        for i in 0..4 {
            assert!(re.insert(&unit(4, i)));
        }
        assert_eq!(re.rank(), 4);
        // Any further row is dependent.
        let mut rng = StdRng::seed_from_u64(5);
        let row: Vec<Gf256> = (0..4).map(|_| Gf256(rng.gen())).collect();
        assert!(!re.insert(&row));
    }

    #[test]
    fn dependent_row_rejected() {
        let mut re = RowEchelon::new(3);
        let a = vec![Gf256(1), Gf256(2), Gf256(3)];
        let b = vec![Gf256(2), Gf256(4), Gf256(6)]; // 2 * a
        assert!(re.insert(&a));
        assert!(!re.insert(&b));
        assert_eq!(re.rank(), 1);
    }

    #[test]
    fn insert_bytes_matches_insert() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut a = RowEchelon::new(5);
        let mut b = RowEchelon::new(5);
        for _ in 0..8 {
            let row: Vec<u8> = (0..5).map(|_| rng.gen()).collect();
            let gf: Vec<Gf256> = row.iter().copied().map(Gf256).collect();
            assert_eq!(a.insert(&gf), b.insert_bytes(&row));
        }
        assert_eq!(a.to_matrix(), b.to_matrix());
    }

    #[test]
    fn contains_matches_insert_result() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut re = RowEchelon::new(6);
        let mut inserted: Vec<Vec<Gf256>> = Vec::new();
        for _ in 0..3 {
            let row: Vec<Gf256> = (0..6).map(|_| Gf256(rng.gen())).collect();
            re.insert(&row);
            inserted.push(row);
        }
        // Random combinations of inserted rows must be contained.
        for _ in 0..10 {
            let mut combo = vec![Gf256::ZERO; 6];
            for row in &inserted {
                add_assign_scaled(&mut combo, row, Gf256(rng.gen()));
            }
            assert!(re.contains(&combo));
        }
    }

    #[test]
    fn rank_matches_matrix_rank() {
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..20 {
            let rows = rng.gen_range(1..8);
            let cols = rng.gen_range(1..8);
            let m = Matrix::random(rows, cols, &mut rng);
            let mut re = RowEchelon::new(cols);
            re.insert_matrix(&m);
            assert_eq!(re.rank(), m.rank(), "{m:?}");
        }
    }

    #[test]
    fn rank_increase_consistency() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let cols = rng.gen_range(2..8);
            let a = Matrix::random(rng.gen_range(1..6), cols, &mut rng);
            let b = Matrix::random(rng.gen_range(1..6), cols, &mut rng);
            let expect = a.vstack(&b).rank() - a.rank();
            assert_eq!(rank_increase(&a, &b), expect);
            let mut re = RowEchelon::new(cols);
            re.insert_matrix(&a);
            assert_eq!(re.rank_increase(&b), expect);
            // rank_increase is non-mutating.
            assert_eq!(re.rank(), a.rank());
        }
    }

    #[test]
    fn rank_increase_empty_cases() {
        let a = Matrix::identity(3);
        let empty = Matrix::zero(0, 3);
        assert_eq!(rank_increase(&a, &empty), 0);
        assert_eq!(rank_increase(&empty, &a), 3);
    }

    #[test]
    fn to_matrix_spans_the_same_space() {
        let mut rng = StdRng::seed_from_u64(37);
        let m = Matrix::random(5, 7, &mut rng);
        let mut re = RowEchelon::new(7);
        re.insert_matrix(&m);
        let basis = re.to_matrix();
        assert_eq!(basis.rank(), m.rank());
        // Every original row is in the span of the basis.
        for row in m.rows_iter() {
            assert!(re.contains(row));
        }
        assert_eq!(rank_increase(&basis, &m), 0);
    }
}
