//! Contiguous payload storage: many equal-length symbol rows, one
//! allocation.
//!
//! The protocol applies every coefficient row to *bundles* of payloads
//! (x-pools, y/z/s packets, Reed–Solomon shares). Storing the bundle as
//! `Vec<Vec<Gf256>>` costs one allocation per row, scatters rows across
//! the heap, and every hot-path operation pays pointer chasing plus
//! per-row bounds setup. [`PayloadPlane`] is the replacement: a dense
//! row-major byte matrix (`rows × width`, stride = `width`) whose rows
//! are byte slices that feed the [`crate::kernel`] SWAR kernels directly.
//!
//! A `Gf256` symbol *is* its byte (`#[repr(transparent)]`), so the
//! conversions at protocol boundaries ([`PayloadPlane::from_payloads`],
//! [`PayloadPlane::to_payloads`]) are plain copies, and wire I/O can read
//! and write rows without any symbol-to-byte translation step.

use crate::gf256::Gf256;
use crate::kernel;

/// A dense `rows × width` bundle of payload rows over GF(2^8), row-major
/// in one allocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PayloadPlane {
    rows: usize,
    width: usize,
    data: Vec<u8>,
}

impl PayloadPlane {
    /// An all-zero plane of the given shape.
    pub fn zero(rows: usize, width: usize) -> Self {
        PayloadPlane { rows, width, data: vec![0; rows * width] }
    }

    /// An empty plane that accepts rows of the given width.
    pub fn empty(width: usize) -> Self {
        PayloadPlane { rows: 0, width, data: Vec::new() }
    }

    /// An empty plane with capacity reserved for `rows` rows.
    pub fn with_capacity(rows: usize, width: usize) -> Self {
        PayloadPlane { rows: 0, width, data: Vec::with_capacity(rows * width) }
    }

    /// Builds a plane from symbol-vector payloads.
    ///
    /// # Panics
    /// Panics when the payloads have inconsistent lengths.
    pub fn from_payloads(payloads: &[Vec<Gf256>]) -> Self {
        let width = payloads.first().map_or(0, |p| p.len());
        assert!(payloads.iter().all(|p| p.len() == width), "ragged payloads");
        let mut data = Vec::with_capacity(payloads.len() * width);
        for p in payloads {
            data.extend(p.iter().map(|s| s.value()));
        }
        PayloadPlane { rows: payloads.len(), width, data }
    }

    /// Builds a plane from byte rows.
    ///
    /// # Panics
    /// Panics when the rows have inconsistent lengths.
    pub fn from_byte_rows(rows: &[Vec<u8>]) -> Self {
        let width = rows.first().map_or(0, |r| r.len());
        assert!(rows.iter().all(|r| r.len() == width), "ragged rows");
        let mut data = Vec::with_capacity(rows.len() * width);
        for r in rows {
            data.extend_from_slice(r);
        }
        PayloadPlane { rows: rows.len(), width, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width in symbols (= bytes).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// True iff the plane holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.width..(r + 1) * self.width]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u8] {
        &mut self.data[r * self.width..(r + 1) * self.width]
    }

    /// Iterator over the rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[u8]> {
        // Not `chunks_exact`: a width-0 plane still has `rows` (empty) rows.
        (0..self.rows).map(move |r| self.row(r))
    }

    /// The whole backing store (rows concatenated).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Appends a byte row.
    ///
    /// # Panics
    /// Panics when the width differs (unless the plane is empty of rows
    /// and was created with width 0).
    pub fn push_row(&mut self, row: &[u8]) {
        if self.rows == 0 && self.width == 0 {
            self.width = row.len();
        }
        assert_eq!(row.len(), self.width, "pushing row of wrong width");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Inserts a byte row at position `pos`, shifting later rows down.
    ///
    /// # Panics
    /// Panics when the width differs or `pos > rows`.
    pub fn insert_row(&mut self, pos: usize, row: &[u8]) {
        if self.rows == 0 && self.width == 0 {
            self.width = row.len();
        }
        assert_eq!(row.len(), self.width, "inserting row of wrong width");
        assert!(pos <= self.rows, "insert position out of range");
        self.data.splice(pos * self.width..pos * self.width, row.iter().copied());
        self.rows += 1;
    }

    /// Appends an all-zero row and returns its index.
    pub fn push_zero_row(&mut self) -> usize {
        self.data.resize(self.data.len() + self.width, 0);
        self.rows += 1;
        self.rows - 1
    }

    /// Borrows rows `dst` and `src` simultaneously (for row updates).
    ///
    /// # Panics
    /// Panics when `dst == src` or either is out of range.
    #[inline]
    pub fn two_rows_mut(&mut self, dst: usize, src: usize) -> (&mut [u8], &[u8]) {
        assert_ne!(dst, src, "two_rows_mut needs distinct rows");
        let w = self.width;
        if dst < src {
            let (head, tail) = self.data.split_at_mut(src * w);
            (&mut head[dst * w..(dst + 1) * w], &tail[..w])
        } else {
            let (head, tail) = self.data.split_at_mut(dst * w);
            (&mut tail[..w], &head[src * w..(src + 1) * w])
        }
    }

    /// `row[dst] += c * row[src]` within the plane.
    pub fn axpy_rows(&mut self, dst: usize, src: usize, c: Gf256) {
        if c.is_zero() || dst == src {
            return;
        }
        let (d, s) = self.two_rows_mut(dst, src);
        kernel::axpy(d, s, c.value());
    }

    /// Multiplies row `r` by `c` in place.
    pub fn scale_row(&mut self, r: usize, c: Gf256) {
        kernel::scale_in_place(self.row_mut(r), c.value());
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let w = self.width;
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * w);
        head[a * w..(a + 1) * w].swap_with_slice(&mut tail[..w]);
    }

    /// A new plane keeping only the listed rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> PayloadPlane {
        let mut out = PayloadPlane::with_capacity(rows.len(), self.width);
        for &r in rows {
            out.push_row(self.row(r));
        }
        out
    }

    /// Copies row `r` out as a symbol vector.
    pub fn payload(&self, r: usize) -> Vec<Gf256> {
        self.row(r).iter().copied().map(Gf256).collect()
    }

    /// Converts the plane back to symbol-vector payloads.
    pub fn to_payloads(&self) -> Vec<Vec<Gf256>> {
        self.rows_iter().map(|r| r.iter().copied().map(Gf256).collect()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_3x4() -> PayloadPlane {
        PayloadPlane::from_byte_rows(&[vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10, 11, 12]])
    }

    #[test]
    fn shape_and_rows() {
        let p = plane_3x4();
        assert_eq!((p.rows(), p.width()), (3, 4));
        assert_eq!(p.row(1), &[5, 6, 7, 8]);
        assert_eq!(p.rows_iter().count(), 3);
        assert_eq!(p.as_bytes().len(), 12);
    }

    #[test]
    fn payload_round_trip() {
        let payloads =
            vec![vec![Gf256(1), Gf256(0), Gf256(0xFF)], vec![Gf256(9), Gf256(8), Gf256(7)]];
        let p = PayloadPlane::from_payloads(&payloads);
        assert_eq!(p.to_payloads(), payloads);
        assert_eq!(p.payload(1), payloads[1]);
    }

    #[test]
    fn row_ops_match_field_arithmetic() {
        let mut p = plane_3x4();
        let before0: Vec<u8> = p.row(0).to_vec();
        let row2: Vec<u8> = p.row(2).to_vec();
        p.axpy_rows(0, 2, Gf256(3));
        for i in 0..4 {
            assert_eq!(p.row(0)[i], before0[i] ^ kernel::gf_mul(3, row2[i]));
        }
        p.scale_row(1, Gf256(2));
        assert_eq!(p.row(1)[0], kernel::gf_mul(2, 5));
        p.swap_rows(1, 2);
        assert_eq!(p.row(2)[1], kernel::gf_mul(2, 6));
    }

    #[test]
    fn push_and_select() {
        let mut p = PayloadPlane::empty(2);
        p.push_row(&[1, 2]);
        let z = p.push_zero_row();
        assert_eq!(z, 1);
        assert_eq!(p.row(1), &[0, 0]);
        let sel = p.select_rows(&[1, 0]);
        assert_eq!(sel.row(0), &[0, 0]);
        assert_eq!(sel.row(1), &[1, 2]);
    }

    #[test]
    fn zero_width_plane_accepts_first_row() {
        let mut p = PayloadPlane::default();
        p.push_row(&[7, 7, 7]);
        assert_eq!((p.rows(), p.width()), (1, 3));
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn push_rejects_ragged() {
        let mut p = plane_3x4();
        p.push_row(&[1]);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut p = plane_3x4();
        {
            let (d, s) = p.two_rows_mut(0, 2);
            assert_eq!(d[0], 1);
            assert_eq!(s[0], 9);
        }
        let (d, s) = p.two_rows_mut(2, 0);
        assert_eq!(d[0], 9);
        assert_eq!(s[0], 1);
    }
}
