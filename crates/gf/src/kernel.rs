//! Byte-plane kernels: the innermost loops of the coding hot path.
//!
//! Payload data in this workspace is GF(2^8) symbols, one per byte, laid
//! out contiguously (see [`crate::plane::PayloadPlane`]). This module
//! provides the slice-of-bytes kernels everything else forwards to:
//!
//! * [`xor_into`] — GF(2^8) addition of whole rows, 8 lanes at a time
//!   over `u64` words (SWAR). LLVM turns the word loop into full-width
//!   vector XORs.
//! * [`axpy`] — `dst += c * src`, the workhorse of every encode, decode
//!   and elimination. The multiply is evaluated *per bit of the source
//!   byte*: `c * s = XOR over set bits i of s of (c·αⁱ)`, where the eight
//!   constants `c·αⁱ` are precomputed once per call ([`LaneMul`]) and the
//!   per-bit masks are pure shift/mask/spread word arithmetic. Unlike the
//!   textbook Russian-peasant SWAR (which doubles the *source* and drags
//!   a serial dependency chain through every word), every round here
//!   depends only on the loaded source word, so the loop pipelines and
//!   auto-vectorizes.
//! * [`scale_in_place`], [`dot`] — same schemes for in-place scaling and
//!   inner products.
//! * [`MUL_TABLE`] rows — per-multiplier 256-byte product tables, built
//!   once at compile time from the `LOG`/`EXP` tables. These are the
//!   fastest option for *short* or gather-style access (matrix entries,
//!   dot products of coefficient rows) where the SWAR set-up cost does
//!   not amortize.
//! * [`Doubles`] — a scratch holding `src·αⁱ` for `i in 0..8` as eight
//!   materialized rows, so that applying one source row to *many*
//!   destination rows (matrix × payload-plane products, elimination
//!   pivots) costs only `popcount(coeff)` vectorized XOR passes per
//!   destination instead of a full multiply.
//!
//! Everything is plain safe Rust (`#![forbid(unsafe_code)]` holds): the
//! word views are `chunks_exact(8)` + `u64::from_le_bytes`, which LLVM
//! reliably fuses into single word loads/stores, and the SWAR loops
//! auto-vectorize to the widest ALU the target CPU offers.

use crate::gf256::{Gf256, EXP, LOG};

/// Low bit of every byte lane in a `u64` word.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

/// Scalar GF(2^8) product of two bytes (table-based, branch-free).
#[inline]
pub fn gf_mul(a: u8, b: u8) -> u8 {
    MUL_TABLE[a as usize][b as usize]
}

const fn mul_const(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

const fn build_mul_table() -> [[u8; 256]; 256] {
    let mut t = [[0u8; 256]; 256];
    let mut a = 0usize;
    while a < 256 {
        let mut b = 0usize;
        while b < 256 {
            t[a][b] = mul_const(a as u8, b as u8);
            b += 1;
        }
        a += 1;
    }
    t
}

/// All 256 per-multiplier product tables: `MUL_TABLE[c][b] = c * b`.
///
/// 64 KiB, computed at compile time from `LOG`/`EXP`. Row `c` is the
/// classic "one 256-byte table per multiplier" scheme; fetch it once per
/// row operation and the inner loop is a single L1 load per byte.
pub static MUL_TABLE: [[u8; 256]; 256] = build_mul_table();

/// Borrow the 256-byte product table of one multiplier.
#[inline]
pub fn mul_table(c: Gf256) -> &'static [u8; 256] {
    &MUL_TABLE[c.value() as usize]
}

/// Doubling in the field: `c * α` for `α = 2` under the `0x11D` polynomial.
#[inline]
const fn double_byte(c: u8) -> u8 {
    ((c & 0x7F) << 1) ^ if c & 0x80 != 0 { 0x1D } else { 0 }
}

/// Replicate a byte into all 8 lanes of a word.
#[inline]
const fn splat(c: u8) -> u64 {
    (c as u64).wrapping_mul(LANE_LSB)
}

/// The eight lane-broadcast constants `c·αⁱ` used by the wide multiply.
///
/// Building one costs a handful of scalar operations; reuse it whenever
/// the same multiplier is applied to more than one word.
#[derive(Clone, Copy, Debug)]
pub struct LaneMul {
    lanes: [u64; 8],
}

impl LaneMul {
    /// Precomputes the lane constants for multiplier `c`.
    #[inline]
    pub fn new(c: Gf256) -> Self {
        let mut lanes = [0u64; 8];
        let mut cc = c.value();
        for slot in lanes.iter_mut() {
            *slot = splat(cc);
            cc = double_byte(cc);
        }
        LaneMul { lanes }
    }

    /// Multiplies all 8 byte lanes of `s` by the configured multiplier.
    ///
    /// Each round selects the lanes whose source bit `i` is set (shift,
    /// mask, spread-to-byte) and XORs in the constant `c·αⁱ`; rounds are
    /// mutually independent, so the loop pipelines and vectorizes.
    #[inline]
    pub fn mul_word(&self, s: u64) -> u64 {
        let mut p = 0u64;
        for (i, &ci) in self.lanes.iter().enumerate() {
            let m = ((s >> i) & LANE_LSB).wrapping_mul(0xFF);
            p ^= m & ci;
        }
        p
    }

    /// Scalar product `c * s` via the same constants (tail bytes).
    #[inline]
    fn mul_byte(&self, s: u8) -> u8 {
        let mut p = 0u8;
        for (i, &ci) in self.lanes.iter().enumerate() {
            if (s >> i) & 1 != 0 {
                p ^= ci as u8; // low lane of the splat is the raw constant
            }
        }
        p
    }
}

/// `dst ^= src` elementwise (GF(2^8) addition), 8 lanes per word op.
///
/// # Panics
/// Panics when the lengths differ.
#[inline]
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into of mismatched lengths");
    let mut dc = dst.chunks_exact_mut(8);
    let mut sc = src.chunks_exact(8);
    for (d, s) in (&mut dc).zip(&mut sc) {
        let sw = u64::from_le_bytes(s.try_into().expect("exact chunk"));
        let dw = u64::from_le_bytes((&d[..8]).try_into().expect("exact chunk"));
        d.copy_from_slice(&(dw ^ sw).to_le_bytes());
    }
    for (d, s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d ^= s;
    }
}

/// `dst += c * src` elementwise — the byte-plane axpy kernel.
///
/// # Panics
/// Panics when the lengths differ.
#[inline]
pub fn axpy(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "axpy of mismatched lengths");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_into(dst, src);
        return;
    }
    let lm = LaneMul::new(Gf256(c));
    let mut dc = dst.chunks_exact_mut(8);
    let mut sc = src.chunks_exact(8);
    for (d, s) in (&mut dc).zip(&mut sc) {
        let sw = u64::from_le_bytes(s.try_into().expect("exact chunk"));
        let dw = u64::from_le_bytes((&d[..8]).try_into().expect("exact chunk"));
        d.copy_from_slice(&(dw ^ lm.mul_word(sw)).to_le_bytes());
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d ^= lm.mul_byte(s);
    }
}

/// `v *= c` elementwise, in place.
#[inline]
pub fn scale_in_place(v: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        v.fill(0);
        return;
    }
    let lm = LaneMul::new(Gf256(c));
    let mut vc = v.chunks_exact_mut(8);
    for d in &mut vc {
        let dw = u64::from_le_bytes((&d[..8]).try_into().expect("exact chunk"));
        d.copy_from_slice(&lm.mul_word(dw).to_le_bytes());
    }
    for d in vc.into_remainder() {
        *d = lm.mul_byte(*d);
    }
}

/// Inner product `XOR_i a[i] * b[i]` of two byte vectors.
///
/// Both operands vary per element, so this is the one kernel where the
/// per-multiplier table wins: a single L1 load per byte, no per-element
/// constant set-up.
///
/// # Panics
/// Panics when the lengths differ.
#[inline]
pub fn dot(a: &[u8], b: &[u8]) -> u8 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc ^= MUL_TABLE[x as usize][y as usize];
    }
    acc
}

/// The eight doublings `src·αⁱ` of one row, materialized.
///
/// When a single source row feeds many destinations with different
/// coefficients (matrix × plane products, elimination below a pivot),
/// the doubling work is shared: [`Doubles::set_from`] runs the seven
/// doubling passes once, and each [`Doubles::accumulate`] is then just
/// `popcount(c)` vectorized XOR passes — about 4 on average, versus the
/// 8 select-and-XOR rounds of a standalone [`axpy`].
#[derive(Clone, Debug, Default)]
pub struct Doubles {
    width: usize,
    /// Eight rows of `width` bytes: row `i` holds `src · αⁱ`.
    data: Vec<u8>,
}

impl Doubles {
    /// An empty scratch; call [`Doubles::set_from`] before use.
    pub fn new() -> Self {
        Doubles::default()
    }

    /// Fills the scratch with the doublings of `src` (resizing as
    /// needed; the allocation is reused across calls).
    pub fn set_from(&mut self, src: &[u8]) {
        self.width = src.len();
        self.data.clear();
        self.data.resize(8 * src.len(), 0);
        self.data[..src.len()].copy_from_slice(src);
        for i in 1..8 {
            let (prev, rest) = self.data[(i - 1) * src.len()..].split_at_mut(src.len());
            let next = &mut rest[..src.len()];
            // next = prev · α, one pure shift/mask pass (vectorizes).
            let mut nc = next.chunks_exact_mut(8);
            let mut pc = prev.chunks_exact(8);
            for (n, p) in (&mut nc).zip(&mut pc) {
                let w = u64::from_le_bytes(p.try_into().expect("exact chunk"));
                let hi = w & 0x8080_8080_8080_8080;
                let red = (hi >> 7).wrapping_mul(0x1D);
                n.copy_from_slice(&((((w ^ hi) << 1) ^ red).to_le_bytes()));
            }
            for (n, p) in nc.into_remainder().iter_mut().zip(pc.remainder()) {
                *n = double_byte(*p);
            }
        }
    }

    /// Row width the scratch currently holds.
    pub fn width(&self) -> usize {
        self.width
    }

    /// `dst += c * src` using the precomputed doublings: one XOR pass per
    /// set bit of `c`.
    ///
    /// # Panics
    /// Panics when `dst.len()` differs from the configured width.
    pub fn accumulate(&self, dst: &mut [u8], c: u8) {
        assert_eq!(dst.len(), self.width, "accumulate width mismatch");
        let mut cc = c as u32;
        let mut i = 0usize;
        while cc != 0 {
            let skip = cc.trailing_zeros() as usize;
            i += skip;
            xor_into(dst, &self.data[i * self.width..(i + 1) * self.width]);
            cc >>= skip + 1;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mul_ref(a: u8, b: u8) -> u8 {
        (Gf256(a) * Gf256(b)).value()
    }

    #[test]
    fn mul_table_matches_field() {
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 3, 0x1D, 0x53, 0x80, 0xFF] {
                assert_eq!(gf_mul(a, b), mul_ref(a, b), "a={a:#x} b={b:#x}");
                assert_eq!(gf_mul(b, a), mul_ref(a, b));
            }
        }
    }

    #[test]
    fn lane_mul_matches_table_exhaustively() {
        for c in 0..=255u8 {
            let lm = LaneMul::new(Gf256(c));
            for s in 0..=255u8 {
                assert_eq!(lm.mul_byte(s), gf_mul(c, s), "c={c:#x} s={s:#x}");
            }
            // Word form on a window of all byte values.
            for base in (0..256).step_by(8) {
                let bytes: [u8; 8] = std::array::from_fn(|i| (base + i) as u8);
                let out = lm.mul_word(u64::from_le_bytes(bytes)).to_le_bytes();
                for (i, &b) in bytes.iter().enumerate() {
                    assert_eq!(out[i], gf_mul(c, b), "c={c:#x} s={b:#x}");
                }
            }
        }
    }

    #[test]
    fn axpy_matches_scalar_all_lengths() {
        // Cover the word path, the tail path, and their boundary.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 100] {
            let src: Vec<u8> =
                (0..len).map(|i| (i as u8).wrapping_mul(37).wrapping_add(1)).collect();
            for c in [0u8, 1, 2, 0x53, 0xFF] {
                let mut dst: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(11)).collect();
                let expect: Vec<u8> =
                    dst.iter().zip(src.iter()).map(|(&d, &s)| d ^ gf_mul(c, s)).collect();
                axpy(&mut dst, &src, c);
                assert_eq!(dst, expect, "len={len} c={c:#x}");
            }
        }
    }

    #[test]
    fn xor_and_scale_match_scalar() {
        let src: Vec<u8> = (0..50u8).map(|i| i.wrapping_mul(29)).collect();
        let mut dst: Vec<u8> = (0..50u8).map(|i| i.wrapping_mul(17)).collect();
        let expect: Vec<u8> = dst.iter().zip(src.iter()).map(|(&d, &s)| d ^ s).collect();
        xor_into(&mut dst, &src);
        assert_eq!(dst, expect);

        for c in [0u8, 1, 7, 0x80] {
            let mut v = src.clone();
            scale_in_place(&mut v, c);
            let expect: Vec<u8> = src.iter().map(|&s| gf_mul(c, s)).collect();
            assert_eq!(v, expect, "c={c:#x}");
        }
    }

    #[test]
    fn dot_matches_scalar() {
        let a: Vec<u8> = (0..33u8).map(|i| i.wrapping_mul(41)).collect();
        let b: Vec<u8> = (0..33u8).map(|i| i.wrapping_mul(23).wrapping_add(5)).collect();
        let expect = a.iter().zip(b.iter()).fold(0u8, |acc, (&x, &y)| acc ^ gf_mul(x, y));
        assert_eq!(dot(&a, &b), expect);
        assert_eq!(dot(&[], &[]), 0);
    }

    #[test]
    fn doubles_accumulate_equals_axpy() {
        let src: Vec<u8> = (0..45u8).map(|i| i.wrapping_mul(91).wrapping_add(3)).collect();
        let mut doubles = Doubles::new();
        doubles.set_from(&src);
        assert_eq!(doubles.width(), src.len());
        for c in 0..=255u8 {
            let mut a: Vec<u8> = (0..45u8).map(|i| i.wrapping_mul(7)).collect();
            let mut b = a.clone();
            axpy(&mut a, &src, c);
            doubles.accumulate(&mut b, c);
            assert_eq!(a, b, "c={c:#x}");
        }
    }

    #[test]
    fn doubles_scratch_is_reusable() {
        let mut doubles = Doubles::new();
        doubles.set_from(&[1, 2, 3]);
        doubles.set_from(&[5; 10]);
        let mut dst = vec![0u8; 10];
        doubles.accumulate(&mut dst, 1);
        assert_eq!(dst, vec![5; 10]);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn axpy_length_mismatch_panics() {
        axpy(&mut [0, 0], &[1], 3);
    }
}
