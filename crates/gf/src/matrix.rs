//! Dense row-major matrices over GF(2^8).
//!
//! The protocol's coefficient matrices are small (tens to a few hundred
//! rows), so a straightforward dense representation with in-place Gaussian
//! elimination is both the simplest and the fastest reasonable choice.
//! Elimination is fraction-free in spirit — every operation is exact field
//! arithmetic, there is no pivoting-for-stability concern, only
//! pivoting-for-nonzero.

use crate::gf256::Gf256;
use crate::kernel::Doubles;
use crate::plane::PayloadPlane;
use crate::vector::{add_assign_scaled, dot, scale_in_place};
use rand::Rng;
use std::fmt;
use std::ops::{Index, IndexMut, Mul};

/// A dense `rows x cols` matrix over GF(2^8), stored row-major.
///
/// ```
/// use thinair_gf::{Gf256, Matrix};
///
/// let a = Matrix::from_rows(&[
///     vec![Gf256(1), Gf256(2)],
///     vec![Gf256(3), Gf256(4)],
/// ]);
/// let inv = a.inverse().expect("non-singular");
/// assert_eq!(&a * &inv, Matrix::identity(2));
/// let x = vec![Gf256(7), Gf256(9)];
/// assert_eq!(a.solve(&a.mul_vec(&x)), Some(x));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// The all-zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![Gf256::ZERO; rows * cols] }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Gf256) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from complete rows.
    ///
    /// # Panics
    /// Panics when the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<Gf256>]) -> Self {
        if rows.is_empty() {
            return Matrix::zero(0, 0);
        }
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// A matrix with independently uniform entries, drawn from `rng`.
    pub fn random(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| Gf256(rng.gen::<u8>()))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True iff the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Gf256] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [Gf256] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over the rows, each as a slice.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[Gf256]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Copies column `c` out into a vector.
    pub fn col(&self, c: usize) -> Vec<Gf256> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Appends a row; the matrix must be empty or have matching width.
    pub fn push_row(&mut self, row: &[Gf256]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "pushing row of wrong width");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// A new matrix keeping only the listed columns, in order.
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, cols.len(), |r, c| self[(r, cols[c])])
    }

    /// A new matrix keeping only the listed rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        Matrix::from_fn(rows.len(), self.cols, |r, c| self[(rows[r], c)])
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics when the widths differ (unless one side is empty).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        if self.rows == 0 {
            return other.clone();
        }
        if other.rows == 0 {
            return self.clone();
        }
        assert_eq!(self.cols, other.cols, "vstack of mismatched widths");
        let mut out = self.clone();
        out.data.extend_from_slice(&other.data);
        out.rows += other.rows;
        out
    }

    /// Matrix–vector product `self * v`.
    pub fn mul_vec(&self, v: &[Gf256]) -> Vec<Gf256> {
        assert_eq!(v.len(), self.cols, "mul_vec dimension mismatch");
        self.rows_iter().map(|row| dot(row, v)).collect()
    }

    /// Applies `self` to a bundle of payload rows: returns
    /// `self * payloads` where `payloads` is `cols x payload_len`.
    ///
    /// This is how y/z/s-packets are produced from x-packets: the same
    /// coefficient row acts on every symbol position of the payloads.
    ///
    /// Compatibility wrapper over [`Matrix::mul_plane`]; bulk callers
    /// should hold a [`PayloadPlane`] and call that directly.
    pub fn mul_payloads(&self, payloads: &[Vec<Gf256>]) -> Vec<Vec<Gf256>> {
        assert_eq!(payloads.len(), self.cols, "payload count mismatch");
        self.mul_plane(&PayloadPlane::from_payloads(payloads)).to_payloads()
    }

    /// `self * payloads` over a contiguous payload plane
    /// (`cols × width` in, `rows × width` out).
    ///
    /// Each input row's eight doublings are materialized once
    /// ([`Doubles`]) and shared by every output row, so one coefficient
    /// costs `popcount` vectorized XOR passes instead of a full
    /// multiply.
    ///
    /// # Panics
    /// Panics when `payloads.rows() != self.cols()`.
    pub fn mul_plane(&self, payloads: &PayloadPlane) -> PayloadPlane {
        assert_eq!(payloads.rows(), self.cols, "payload count mismatch");
        let mut out = PayloadPlane::zero(self.rows, payloads.width());
        let mut doubles = Doubles::new();
        for c in 0..self.cols {
            if (0..self.rows).all(|r| self[(r, c)].is_zero()) {
                continue;
            }
            doubles.set_from(payloads.row(c));
            for r in 0..self.rows {
                let coeff = self[(r, c)];
                if !coeff.is_zero() {
                    doubles.accumulate(out.row_mut(r), coeff.value());
                }
            }
        }
        out
    }

    /// Reduces `self` in place to *reduced row echelon form* and returns
    /// the pivot column of each pivot row (so `pivots.len()` is the rank).
    pub fn rref_in_place(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pr = 0; // next pivot row
        for pc in 0..self.cols {
            // Find a row at or below pr with a non-zero entry in column pc.
            let Some(sel) = (pr..self.rows).find(|&r| !self[(r, pc)].is_zero()) else {
                continue;
            };
            self.swap_rows(pr, sel);
            let inv = self[(pr, pc)].inv();
            scale_in_place(self.row_mut(pr), inv);
            for r in 0..self.rows {
                if r != pr {
                    let factor = self[(r, pc)];
                    if !factor.is_zero() {
                        // row_r -= factor * row_pr, via split borrows.
                        let (dst, src) = self.two_rows_mut(r, pr);
                        add_assign_scaled(dst, src, factor);
                    }
                }
            }
            pivots.push(pc);
            pr += 1;
            if pr == self.rows {
                break;
            }
        }
        pivots
    }

    /// The rank of the matrix (leaves `self` untouched).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.rref_in_place().len()
    }

    /// The inverse of a square matrix, or `None` when singular.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        // Augment with the identity and row-reduce.
        let mut aug = Matrix::zero(n, 2 * n);
        for r in 0..n {
            for c in 0..n {
                aug[(r, c)] = self[(r, c)];
            }
            aug[(r, n + r)] = Gf256::ONE;
        }
        let pivots = aug.rref_in_place();
        if pivots.len() < n || pivots.iter().enumerate().any(|(i, &p)| p != i) {
            return None;
        }
        Some(Matrix::from_fn(n, n, |r, c| aug[(r, n + c)]))
    }

    /// Solves `self * x = b` for a *uniquely determined* `x`.
    ///
    /// Returns `None` when the system is inconsistent or under-determined.
    /// `self` may be rectangular (over-determined systems are fine as long
    /// as they are consistent and have full column rank).
    pub fn solve(&self, b: &[Gf256]) -> Option<Vec<Gf256>> {
        assert_eq!(b.len(), self.rows, "solve rhs length mismatch");
        let mut aug = Matrix::zero(self.rows, self.cols + 1);
        for r in 0..self.rows {
            for c in 0..self.cols {
                aug[(r, c)] = self[(r, c)];
            }
            aug[(r, self.cols)] = b[r];
        }
        let pivots = aug.rref_in_place();
        // Inconsistent if some pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        // Under-determined if fewer pivots than unknowns.
        if pivots.len() < self.cols {
            return None;
        }
        let mut x = vec![Gf256::ZERO; self.cols];
        for (r, &p) in pivots.iter().enumerate() {
            x[p] = aug[(r, self.cols)];
        }
        Some(x)
    }

    /// Solves `self * X = B` for a matrix of right-hand sides (columns of
    /// `B` are independent systems). Payload-shaped: `B` is given as rows
    /// of length `payload_len` matching `self.rows()` entries.
    ///
    /// Returns `None` under the same conditions as [`Matrix::solve`].
    ///
    /// Compatibility wrapper over [`Matrix::solve_plane`].
    pub fn solve_payloads(&self, b: &[Vec<Gf256>]) -> Option<Vec<Vec<Gf256>>> {
        assert_eq!(b.len(), self.rows, "solve_payloads rhs count mismatch");
        let plen = b.first().map_or(0, |p| p.len());
        assert!(b.iter().all(|p| p.len() == plen), "ragged rhs payloads");
        Some(self.solve_plane(&PayloadPlane::from_payloads(b))?.to_payloads())
    }

    /// Solves `self * X = B` where `B` is a payload plane with one row
    /// per equation; returns the `cols × width` solution plane, or
    /// `None` when the system is inconsistent or under-determined.
    ///
    /// Elimination runs in place on a scratch copy of the coefficients
    /// with the row operations mirrored onto a scratch copy of the
    /// plane — no per-row clones, and the pivot row's doublings are
    /// shared across all eliminations below and above it.
    ///
    /// # Panics
    /// Panics when `b.rows() != self.rows()`.
    pub fn solve_plane(&self, b: &PayloadPlane) -> Option<PayloadPlane> {
        assert_eq!(b.rows(), self.rows, "solve_plane rhs count mismatch");
        let mut a = self.clone();
        let mut rhs = b.clone();
        let mut pivots: Vec<usize> = Vec::new();
        let mut doubles = Doubles::new();
        let mut pr = 0usize;
        for pc in 0..a.cols {
            let Some(sel) = (pr..a.rows).find(|&r| !a[(r, pc)].is_zero()) else {
                continue;
            };
            a.swap_rows(pr, sel);
            rhs.swap_rows(pr, sel);
            let inv = a[(pr, pc)].inv();
            scale_in_place(a.row_mut(pr), inv);
            rhs.scale_row(pr, inv);
            // The doublings hold a copy of the pivot's rhs row, so the
            // mirrored update borrows the plane mutably without splits.
            doubles.set_from(rhs.row(pr));
            for r in 0..a.rows {
                if r == pr {
                    continue;
                }
                let factor = a[(r, pc)];
                if factor.is_zero() {
                    continue;
                }
                let (dst, src) = a.two_rows_mut(r, pr);
                add_assign_scaled(dst, src, factor);
                doubles.accumulate(rhs.row_mut(r), factor.value());
            }
            pivots.push(pc);
            pr += 1;
            if pr == a.rows {
                break;
            }
        }
        if pivots.len() < self.cols {
            return None; // under-determined
        }
        // Inconsistent if any eliminated (all-zero) row keeps a nonzero
        // right-hand side in some symbol position.
        for r in pr..a.rows {
            if rhs.row(r).iter().any(|&x| x != 0) {
                return None;
            }
        }
        let mut x = PayloadPlane::zero(self.cols, b.width());
        for (r, &p) in pivots.iter().enumerate() {
            x.row_mut(p).copy_from_slice(rhs.row(r));
        }
        Some(x)
    }

    /// Borrows rows `dst` and `src` simultaneously as slices.
    ///
    /// # Panics
    /// Panics when `dst == src`.
    #[inline]
    pub(crate) fn two_rows_mut(&mut self, dst: usize, src: usize) -> (&mut [Gf256], &[Gf256]) {
        assert_ne!(dst, src, "two_rows_mut needs distinct rows");
        let w = self.cols;
        if dst < src {
            let (head, tail) = self.data.split_at_mut(src * w);
            (&mut head[dst * w..(dst + 1) * w], &tail[..w])
        } else {
            let (head, tail) = self.data.split_at_mut(dst * w);
            (&mut tail[..w], &head[src * w..(src + 1) * w])
        }
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let cols = self.cols;
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * cols);
        head[a * cols..(a + 1) * cols].swap_with_slice(&mut tail[..cols]);
    }

    /// True iff every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|x| x.is_zero())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matrix product dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if !a.is_zero() {
                    let dst = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                    add_assign_scaled(dst, rhs.row(k), a);
                }
            }
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self[(r, c)].value())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(rows: &[&[u8]]) -> Matrix {
        Matrix::from_rows(
            &rows.iter().map(|r| r.iter().map(|&v| Gf256(v)).collect()).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random(4, 4, &mut rng);
        let i = Matrix::identity(4);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn product_matches_manual_small() {
        let a = m(&[&[1, 2], &[3, 4]]);
        let b = m(&[&[5, 6], &[7, 8]]);
        let c = &a * &b;
        for r in 0..2 {
            for col in 0..2 {
                let expect = a[(r, 0)] * b[(0, col)] + a[(r, 1)] * b[(1, col)];
                assert_eq!(c[(r, col)], expect);
            }
        }
    }

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(Matrix::identity(5).rank(), 5);
        assert_eq!(Matrix::zero(3, 7).rank(), 0);
    }

    #[test]
    fn rank_detects_dependent_rows() {
        // Third row = first + second.
        let a = m(&[&[1, 2, 3], &[4, 5, 6], &[1 ^ 4, 2 ^ 5, 3 ^ 6]]);
        assert_eq!(a.rank(), 2);
    }

    #[test]
    fn inverse_round_trip_random() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut found = 0;
        while found < 5 {
            let a = Matrix::random(6, 6, &mut rng);
            if let Some(inv) = a.inverse() {
                assert_eq!(&a * &inv, Matrix::identity(6));
                assert_eq!(&inv * &a, Matrix::identity(6));
                found += 1;
            }
        }
    }

    #[test]
    fn singular_has_no_inverse() {
        let a = m(&[&[1, 2], &[1, 2]]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn solve_unique_system() {
        let mut rng = StdRng::seed_from_u64(3);
        loop {
            let a = Matrix::random(5, 5, &mut rng);
            if a.rank() < 5 {
                continue;
            }
            let x: Vec<Gf256> = (0..5).map(|_| Gf256(rng.gen())).collect();
            let b = a.mul_vec(&x);
            assert_eq!(a.solve(&b), Some(x));
            break;
        }
    }

    #[test]
    fn solve_underdetermined_returns_none() {
        let a = m(&[&[1, 2, 3]]);
        assert!(a.solve(&[Gf256(9)]).is_none());
    }

    #[test]
    fn solve_inconsistent_returns_none() {
        let a = m(&[&[1, 0], &[1, 0]]);
        assert!(a.solve(&[Gf256(1), Gf256(2)]).is_none());
    }

    #[test]
    fn solve_overdetermined_consistent() {
        // 3 equations, 2 unknowns, consistent.
        let a = m(&[&[1, 0], &[0, 1], &[1, 1]]);
        let x = vec![Gf256(5), Gf256(9)];
        let b = a.mul_vec(&x);
        assert_eq!(a.solve(&b), Some(x));
    }

    #[test]
    fn mul_payloads_matches_mul_vec_per_symbol() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Matrix::random(3, 4, &mut rng);
        let payloads: Vec<Vec<Gf256>> =
            (0..4).map(|_| (0..6).map(|_| Gf256(rng.gen())).collect()).collect();
        let out = a.mul_payloads(&payloads);
        for k in 0..6 {
            let col: Vec<Gf256> = payloads.iter().map(|p| p[k]).collect();
            let expect = a.mul_vec(&col);
            let got: Vec<Gf256> = out.iter().map(|o| o[k]).collect();
            assert_eq!(got, expect, "symbol position {k}");
        }
    }

    #[test]
    fn solve_payloads_round_trip() {
        let mut rng = StdRng::seed_from_u64(13);
        loop {
            let a = Matrix::random(4, 4, &mut rng);
            if a.rank() < 4 {
                continue;
            }
            let x: Vec<Vec<Gf256>> =
                (0..4).map(|_| (0..5).map(|_| Gf256(rng.gen())).collect()).collect();
            let b = a.mul_payloads(&x);
            assert_eq!(a.solve_payloads(&b), Some(x));
            break;
        }
    }

    #[test]
    fn select_and_stack() {
        let a = m(&[&[1, 2, 3], &[4, 5, 6]]);
        let cols = a.select_columns(&[2, 0]);
        assert_eq!(cols, m(&[&[3, 1], &[6, 4]]));
        let rows = a.select_rows(&[1]);
        assert_eq!(rows, m(&[&[4, 5, 6]]));
        let stacked = a.vstack(&rows);
        assert_eq!(stacked.rows(), 3);
        assert_eq!(stacked.row(2), a.row(1));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = Matrix::random(3, 5, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn rref_idempotent() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut a = Matrix::random(4, 6, &mut rng);
        let p1 = a.rref_in_place();
        let snapshot = a.clone();
        let p2 = a.rref_in_place();
        assert_eq!(p1, p2);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn push_row_grows() {
        let mut a = Matrix::zero(0, 0);
        a.push_row(&[Gf256(1), Gf256(2)]);
        a.push_row(&[Gf256(3), Gf256(4)]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
        assert_eq!(a[(1, 0)], Gf256(3));
    }

    #[test]
    fn swap_rows_works() {
        let mut a = m(&[&[1, 2], &[3, 4], &[5, 6]]);
        a.swap_rows(0, 2);
        assert_eq!(a, m(&[&[5, 6], &[3, 4], &[1, 2]]));
        a.swap_rows(1, 1);
        assert_eq!(a.row(1), &[Gf256(3), Gf256(4)]);
    }
}
