//! Property-based tests for the GF(2^8) field and its linear algebra.

use proptest::prelude::*;
use thinair_gf::{rank_increase, Gf256, Matrix, Poly, RowEchelon};

fn gf() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256)
}

fn gf_nonzero() -> impl Strategy<Value = Gf256> {
    (1u8..=255).prop_map(Gf256)
}

fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(any::<u8>(), r * c)
            .prop_map(move |data| Matrix::from_fn(r, c, |i, j| Gf256(data[i * c + j])))
    })
}

proptest! {
    // --- field axioms -----------------------------------------------------

    #[test]
    fn add_commutative(a in gf(), b in gf()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in gf(), b in gf()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributive(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse_is_self(a in gf()) {
        prop_assert_eq!(a + a, Gf256::ZERO);
        prop_assert_eq!(-a, a);
    }

    #[test]
    fn multiplicative_inverse(a in gf_nonzero()) {
        prop_assert_eq!(a * a.inv(), Gf256::ONE);
    }

    #[test]
    fn division_consistent(a in gf(), b in gf_nonzero()) {
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn pow_adds_exponents(a in gf_nonzero(), e1 in 0usize..600, e2 in 0usize..600) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn frobenius_is_additive(a in gf(), b in gf()) {
        // In characteristic 2, squaring is a field automorphism.
        prop_assert_eq!((a + b).pow(2), a.pow(2) + b.pow(2));
    }

    // --- matrices ----------------------------------------------------------

    #[test]
    fn rank_bounded_by_dims(m in matrix(8)) {
        let r = m.rank();
        prop_assert!(r <= m.rows().min(m.cols()));
    }

    #[test]
    fn rank_invariant_under_transpose(m in matrix(7)) {
        prop_assert_eq!(m.rank(), m.transpose().rank());
    }

    #[test]
    fn product_rank_bounded(
        (a, b) in (1usize..=6, 1usize..=6, 1usize..=6).prop_flat_map(|(r, k, c)| {
            (
                proptest::collection::vec(any::<u8>(), r * k)
                    .prop_map(move |d| Matrix::from_fn(r, k, |i, j| Gf256(d[i * k + j]))),
                proptest::collection::vec(any::<u8>(), k * c)
                    .prop_map(move |d| Matrix::from_fn(k, c, |i, j| Gf256(d[i * c + j]))),
            )
        })
    ) {
        let p = &a * &b;
        prop_assert!(p.rank() <= a.rank().min(b.rank()));
    }

    #[test]
    fn inverse_round_trips(seed in any::<u64>()) {
        use rand::{SeedableRng, rngs::StdRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::random(5, 5, &mut rng);
        if let Some(inv) = m.inverse() {
            prop_assert_eq!(&m * &inv, Matrix::identity(5));
        } else {
            prop_assert!(m.rank() < 5);
        }
    }

    #[test]
    fn solve_recovers_solution(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng, rngs::StdRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::random(6, 6, &mut rng);
        let x: Vec<Gf256> = (0..6).map(|_| Gf256(rng.gen())).collect();
        let b = m.mul_vec(&x);
        match m.solve(&b) {
            Some(got) => prop_assert_eq!(got, x),
            None => prop_assert!(m.rank() < 6),
        }
    }

    #[test]
    fn echelon_rank_matches_dense(m in matrix(8)) {
        let mut re = RowEchelon::new(m.cols());
        re.insert_matrix(&m);
        prop_assert_eq!(re.rank(), m.rank());
    }

    #[test]
    fn rank_increase_subadditive(
        (a, b) in (1usize..=6, 1usize..=6, 1usize..=6).prop_flat_map(|(ra, rb, c)| {
            (
                proptest::collection::vec(any::<u8>(), ra * c)
                    .prop_map(move |d| Matrix::from_fn(ra, c, |i, j| Gf256(d[i * c + j]))),
                proptest::collection::vec(any::<u8>(), rb * c)
                    .prop_map(move |d| Matrix::from_fn(rb, c, |i, j| Gf256(d[i * c + j]))),
            )
        })
    ) {
        let inc = rank_increase(&a, &b);
        prop_assert!(inc <= b.rank());
        prop_assert_eq!(a.vstack(&b).rank(), a.rank() + inc);
    }

    // --- polynomials -------------------------------------------------------

    #[test]
    fn poly_eval_is_ring_hom(
        a in proptest::collection::vec(any::<u8>(), 0..8),
        b in proptest::collection::vec(any::<u8>(), 0..8),
        x in gf(),
    ) {
        let pa = Poly::from_coeffs(a.into_iter().map(Gf256).collect());
        let pb = Poly::from_coeffs(b.into_iter().map(Gf256).collect());
        prop_assert_eq!(pa.add(&pb).eval(x), pa.eval(x) + pb.eval(x));
        prop_assert_eq!(pa.mul(&pb).eval(x), pa.eval(x) * pb.eval(x));
    }

    #[test]
    fn poly_div_rem_invariant(
        a in proptest::collection::vec(any::<u8>(), 0..10),
        b in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        let pa = Poly::from_coeffs(a.into_iter().map(Gf256).collect());
        let pb = Poly::from_coeffs(b.into_iter().map(Gf256).collect());
        prop_assume!(!pb.is_zero());
        let (q, r) = pa.div_rem(&pb);
        prop_assert_eq!(q.mul(&pb).add(&r), pa);
    }

    #[test]
    fn interpolation_round_trip(coeffs in proptest::collection::vec(any::<u8>(), 1..8)) {
        let f = Poly::from_coeffs(coeffs.into_iter().map(Gf256).collect());
        let n = f.coeffs().len().max(1);
        let pts: Vec<(Gf256, Gf256)> =
            (0..n as u8).map(|i| (Gf256(i), f.eval(Gf256(i)))).collect();
        let g = Poly::interpolate(&pts);
        for x in Gf256::all().take(32) {
            prop_assert_eq!(f.eval(x), g.eval(x));
        }
    }
}
