//! Property tests pinning the byte-plane kernels and `PayloadPlane`
//! operations to the scalar `Gf256` reference arithmetic: the wide
//! kernels are pure refactors of the same field math, so every output
//! must be bit-identical to the one-symbol-at-a-time computation.

use proptest::prelude::*;
use thinair_gf::{kernel, Gf256, Matrix, PayloadPlane};

/// Scalar reference product straight from the field's operator impl
/// (log/exp tables), independent of the kernel tables.
fn mul_ref(a: u8, b: u8) -> u8 {
    (Gf256(a) * Gf256(b)).value()
}

fn bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max_len)
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(any::<u8>(), rows * cols)
        .prop_map(move |d| Matrix::from_fn(rows, cols, |i, j| Gf256(d[i * cols + j])))
}

proptest! {
    // --- kernels vs scalar reference ---------------------------------------

    #[test]
    fn gf_mul_matches_field(a in any::<u8>(), b in any::<u8>()) {
        prop_assert_eq!(kernel::gf_mul(a, b), mul_ref(a, b));
    }

    #[test]
    fn axpy_matches_scalar(dst in bytes(70), c in any::<u8>(), seed in any::<u8>()) {
        let src: Vec<u8> =
            (0..dst.len()).map(|i| (i as u8).wrapping_mul(163).wrapping_add(seed)).collect();
        let expect: Vec<u8> =
            dst.iter().zip(src.iter()).map(|(&d, &s)| d ^ mul_ref(c, s)).collect();
        let mut got = dst.clone();
        kernel::axpy(&mut got, &src, c);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn xor_into_matches_scalar(dst in bytes(70), seed in any::<u8>()) {
        let src: Vec<u8> =
            (0..dst.len()).map(|i| (i as u8).wrapping_mul(59).wrapping_add(seed)).collect();
        let expect: Vec<u8> = dst.iter().zip(src.iter()).map(|(&d, &s)| d ^ s).collect();
        let mut got = dst.clone();
        kernel::xor_into(&mut got, &src);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn scale_matches_scalar(v in bytes(70), c in any::<u8>()) {
        let expect: Vec<u8> = v.iter().map(|&x| mul_ref(c, x)).collect();
        let mut got = v.clone();
        kernel::scale_in_place(&mut got, c);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn dot_matches_scalar(a in bytes(70), seed in any::<u8>()) {
        let b: Vec<u8> =
            (0..a.len()).map(|i| (i as u8).wrapping_mul(101).wrapping_add(seed)).collect();
        let expect = a.iter().zip(b.iter()).fold(0u8, |acc, (&x, &y)| acc ^ mul_ref(x, y));
        prop_assert_eq!(kernel::dot(&a, &b), expect);
    }

    #[test]
    fn doubles_equal_axpy_for_every_coeff(src in bytes(40), c in any::<u8>()) {
        let mut doubles = kernel::Doubles::new();
        doubles.set_from(&src);
        let mut via_axpy = vec![0x5Au8; src.len()];
        let mut via_doubles = via_axpy.clone();
        kernel::axpy(&mut via_axpy, &src, c);
        doubles.accumulate(&mut via_doubles, c);
        prop_assert_eq!(via_axpy, via_doubles);
    }

    // --- plane ops vs per-symbol reference ---------------------------------

    #[test]
    fn mul_plane_matches_per_symbol_mul_vec(
        (m, p) in (1usize..=5, 1usize..=5).prop_flat_map(|(r, c)| {
            (matrix(r, c), plane_exact(c, 9))
        })
    ) {
        let out = m.mul_plane(&p);
        prop_assert_eq!(out.rows(), m.rows());
        prop_assert_eq!(out.width(), p.width());
        for k in 0..p.width() {
            let col: Vec<Gf256> = (0..p.rows()).map(|r| Gf256(p.row(r)[k])).collect();
            let expect = m.mul_vec(&col);
            for (r, want) in expect.iter().enumerate() {
                prop_assert_eq!(Gf256(out.row(r)[k]), *want, "row {} sym {}", r, k);
            }
        }
    }

    #[test]
    fn mul_payloads_wrapper_equals_mul_plane(
        (m, p) in (1usize..=5, 1usize..=5).prop_flat_map(|(r, c)| {
            (matrix(r, c), plane_exact(c, 9))
        })
    ) {
        let via_plane = m.mul_plane(&p).to_payloads();
        let via_wrapper = m.mul_payloads(&p.to_payloads());
        prop_assert_eq!(via_plane, via_wrapper);
    }

    #[test]
    fn solve_plane_round_trips(seed in any::<u64>(), width in 0usize..9) {
        use rand::{Rng, SeedableRng, rngs::StdRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..6);
        let m = Matrix::random(n, n, &mut rng);
        let mut x = PayloadPlane::zero(n, width);
        for r in 0..n {
            for k in 0..width {
                x.row_mut(r)[k] = rng.gen();
            }
        }
        let b = m.mul_plane(&x);
        match m.solve_plane(&b) {
            Some(got) => prop_assert_eq!(got, x),
            None => prop_assert!(m.rank() < n),
        }
    }

    #[test]
    fn solve_plane_matches_scalar_solve_per_symbol(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng, rngs::StdRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51CE);
        let n = rng.gen_range(1..6);
        let m = Matrix::random(n, n, &mut rng);
        let width = rng.gen_range(1..6);
        let mut b = PayloadPlane::zero(n, width);
        for r in 0..n {
            for k in 0..width {
                b.row_mut(r)[k] = rng.gen();
            }
        }
        let plane_solution = m.solve_plane(&b);
        // Column-by-column scalar solves must agree exactly.
        for k in 0..width {
            let col: Vec<Gf256> = (0..n).map(|r| Gf256(b.row(r)[k])).collect();
            let scalar = m.solve(&col);
            match (&plane_solution, scalar) {
                (Some(p), Some(s)) => {
                    for (r, want) in s.iter().enumerate() {
                        prop_assert_eq!(Gf256(p.row(r)[k]), *want);
                    }
                }
                (None, None) => {}
                (p, s) => prop_assert!(
                    false,
                    "solver disagreement at symbol {}: plane {:?} scalar {:?}",
                    k, p.is_some(), s.is_some()
                ),
            }
        }
    }
}

/// An exact-shape random plane strategy (proptest helper).
fn plane_exact(rows: usize, max_width: usize) -> impl Strategy<Value = PayloadPlane> {
    (0..=max_width).prop_flat_map(move |w| {
        proptest::collection::vec(any::<u8>(), rows * w).prop_map(move |data| {
            let mut p = PayloadPlane::zero(rows, w);
            for (r, chunk) in data.chunks(w.max(1)).take(rows).enumerate() {
                if w > 0 {
                    p.row_mut(r).copy_from_slice(chunk);
                }
            }
            p
        })
    })
}
