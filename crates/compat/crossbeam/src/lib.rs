//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided, implemented over
//! `std::thread::scope` (stable since Rust 1.63, which postdates
//! crossbeam's API design). A child-thread panic propagates as a panic
//! from `scope` itself rather than as an `Err` — the workspace's only
//! caller immediately `.expect()`s the result, so the observable
//! behaviour is identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads, mirroring `crossbeam::thread`.

    /// A scope handle passed to [`scope`]'s closure and to spawned
    /// children.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so it
        /// can spawn further children), like crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing spawned threads can be
    /// created; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut sums = vec![0u64; 2];
        thread::scope(|s| {
            for (slot, chunk) in sums.iter_mut().zip(data.chunks(2)) {
                s.spawn(move |_| {
                    *slot = chunk.iter().sum();
                });
            }
        })
        .expect("no panics");
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
