//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter`, [`arbitrary::any`], [`collection::vec`], the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_assume!`] macros, and
//! [`test_runner::Config`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed, and failing cases are **not shrunk** — the failing
//! values are printed as-is. That keeps the implementation small while
//! preserving the tests' semantics (random exploration + assertion).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 128 }
        }
    }
}

/// Why a single generated case did not complete normally.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Result type the generated test bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a second-stage strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing `pred` (resamples, bounded retries).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason, pred }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe sampling, for boxed strategies.
    trait DynStrategy {
        type Value;
        fn sample_dyn(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            self.0.sample_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 straight samples: {}", self.reason);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn sample(&self, _rng: &mut StdRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            use rand::Rng;
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    // Ranges are strategies.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    // Tuples of strategies are strategies over tuples of values.
    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Finite floats over a wide range (upstream proptest also
            // avoids NaN/inf by default).
            let mantissa: f64 = rng.gen();
            let exp: i32 = rng.gen_range(-64..64);
            (mantissa - 0.5) * (2.0f64).powi(exp)
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Acceptable size arguments for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `elem` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[doc(hidden)]
pub use rand as __rand;

/// FNV-1a over the test name: a stable per-test seed.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::test_runner::Config = $cfg;
            let __strats = ( $( $strat, )+ );
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__cfg.cases {
                let __vals = __strats.sample(&mut __rng);
                let __dbg = format!("{:?}", __vals);
                #[allow(irrefutable_let_patterns)]
                let ( $( $arg, )+ ) = __vals;
                let __run = move || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                match __run() {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1,
                            __cfg.cases,
                            __msg,
                            __dbg
                        );
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports the generated inputs instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in any::<u16>(), b in any::<u16>()) {
            prop_assert_eq!(a as u32 + b as u32, b as u32 + a as u32);
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_map(|v| v),
        ]) {
            prop_assert!(x < 20 || (100..110).contains(&x));
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            collection::vec(any::<u8>(), n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_respected(_x in any::<u8>()) {
            // Just exercises the config path.
        }
    }
}
