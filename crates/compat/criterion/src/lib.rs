//! Offline stand-in for the `criterion` crate.
//!
//! Runs each registered benchmark a configured number of iterations and
//! prints mean wall-clock time per iteration. No statistics, plots, or
//! regression baselines — the workspace uses this for smoke-level latency
//! numbers; publication-grade measurement would need the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not acted on: the
/// stand-in always runs setup outside the timed section).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

/// Benchmark registry and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps how long one benchmark may run.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up / calibration pass with one iteration.
        let mut calib = Bencher { iters: 1, total: Duration::ZERO };
        f(&mut calib);
        let per_iter = calib.total.max(Duration::from_nanos(1));
        // Fit the configured sample count into the measurement budget.
        let fit = (self.measurement_time.as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters = (self.sample_size as u64).min(fit.max(1));
        let mut b = Bencher { iters, total: Duration::ZERO };
        f(&mut b);
        let mean = b.total.as_nanos() as f64 / iters as f64;
        println!("bench {id:<40} {:>12.0} ns/iter ({} iters)", mean, iters);
        self
    }

    /// Compatibility no-op (the stand-in has no CLI filtering).
    pub fn final_summary(&self) {}
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().sample_size(3).bench_function("t", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= 3, "calls {calls}");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        Criterion::default().sample_size(4).bench_function("t", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 4, "setups {setups}");
    }
}
