//! Offline stand-in for the `criterion` crate.
//!
//! Runs each registered benchmark a configured number of iterations and
//! prints mean wall-clock time per iteration. No statistics, plots, or
//! regression baselines — the workspace uses this for smoke-level latency
//! numbers; publication-grade measurement would need the real crate.
//!
//! Two extensions the workspace relies on:
//!
//! * **Machine-readable results.** Every completed benchmark is recorded
//!   in a process-wide registry; when the `THINAIR_BENCH_JSON`
//!   environment variable names a path, [`write_json_summary`] (called
//!   by the `criterion_main!` expansion) writes a
//!   `{schema, results: [{name, mean_ns, iters}]}` artifact there, so
//!   perf trajectories can be committed and diffed (`scripts/bench.sh`).
//! * **Smoke mode.** `THINAIR_BENCH_FAST=1` clamps every benchmark to a
//!   few iterations so CI can prove the suite runs without paying the
//!   full measurement budget.
//!
//! Timing is batched: one `Instant` pair brackets the whole iteration
//! loop (`iter_batched` pre-builds its inputs first), so per-iteration
//! clock-read overhead does not pollute sub-microsecond kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not acted on: the
/// stand-in always runs setup outside the timed section).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// One completed benchmark measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id as passed to `bench_function`.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Times one benchmark routine.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup`. All inputs are
    /// materialized up front so the timed section is one tight loop with
    /// a single clock-read pair around it.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std::hint::black_box(routine(input));
        }
        self.total = start.elapsed();
    }
}

fn fast_mode() -> bool {
    std::env::var("THINAIR_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Benchmark registry and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps how long one benchmark may run.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, budget) = if fast_mode() {
            (2, Duration::from_millis(100))
        } else {
            (self.sample_size, self.measurement_time)
        };
        // Warm-up / calibration pass with one iteration.
        let mut calib = Bencher { iters: 1, total: Duration::ZERO };
        f(&mut calib);
        let per_iter = calib.total.max(Duration::from_nanos(1));
        // Fit the configured sample count into the measurement budget.
        let fit = (budget.as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters = (sample_size as u64).min(fit.max(1));
        let mut b = Bencher { iters, total: Duration::ZERO };
        f(&mut b);
        let mean = b.total.as_nanos() as f64 / iters as f64;
        println!("bench {id:<40} {:>12.0} ns/iter ({} iters)", mean, iters);
        RESULTS.lock().expect("bench registry poisoned").push(BenchResult {
            name: id.to_string(),
            mean_ns: mean,
            iters,
        });
        self
    }

    /// Compatibility no-op (the stand-in has no CLI filtering).
    pub fn final_summary(&self) {}
}

/// Drains the recorded results (for tests and custom reporters).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().expect("bench registry poisoned"))
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serializes results into the committed `BENCH_micro.json` shape.
pub fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"thinair-bench/1\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{}\n",
            json_escape(&r.name),
            r.mean_ns,
            r.iters,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the JSON artifact when `THINAIR_BENCH_JSON` names a path.
/// Called by the `criterion_main!` expansion after all groups ran; safe
/// to call manually. Errors are reported, not fatal — benches still
/// count as run when the artifact directory is missing.
pub fn write_json_summary() {
    let Ok(path) = std::env::var("THINAIR_BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("bench registry poisoned");
    let json = results_to_json(&results);
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write bench JSON to {path}: {e}");
    } else {
        println!("bench JSON written to {path}");
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine_and_records() {
        let mut calls = 0u64;
        Criterion::default().sample_size(3).bench_function("t/records", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= 3, "calls {calls}");
        let recorded = take_results();
        let r = recorded.iter().find(|r| r.name == "t/records").expect("result recorded");
        assert!(r.iters >= 1);
        assert!(r.mean_ns >= 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        Criterion::default().sample_size(4).bench_function("t/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 4, "setups {setups}");
    }

    #[test]
    fn json_shape_is_stable() {
        let json = results_to_json(&[
            BenchResult { name: "a/b".into(), mean_ns: 12.34, iters: 5 },
            BenchResult { name: "c \"q\"".into(), mean_ns: 1.0, iters: 1 },
        ]);
        assert!(json.contains("\"schema\": \"thinair-bench/1\""));
        assert!(json.contains("{\"name\": \"a/b\", \"mean_ns\": 12.3, \"iters\": 5},"));
        assert!(json.contains("\\\"q\\\""));
        assert!(json.trim_end().ends_with('}'));
    }
}
