//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] traits
//! with the subset of methods this workspace uses (big-endian integer
//! put/get, slices, freezing). Backed by plain `Vec<u8>` — no shared
//! ownership or refcounting, which the workspace never relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Consumes the buffer into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read access to a byte cursor, mirroring `bytes::Buf`.
///
/// Getters consume from the front and **panic** when the buffer is too
/// short — callers must check [`Buf::remaining`] first (as the upstream
/// crate documents).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self[0], self[1]]);
        *self = &self[2..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes([self[0], self[1], self[2], self[3]]);
        *self = &self[4..];
        v
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self[..8]);
        *self = &self[8..];
        u64::from_be_bytes(b)
    }
}

/// Write access to a byte buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_slice(&[9, 9]);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.remaining(), 17);
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16(), 0x1234);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64(), 0x0102_0304_0506_0708);
        cur.advance(1);
        assert_eq!(cur, &[9]);
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
