//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the exact API subset the workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits and [`rngs::StdRng`], a
//! deterministic xoshiro256++ generator seeded via SplitMix64.
//!
//! It is **not** the upstream `rand` crate: the stream of values for a
//! given seed differs, and only the methods this workspace calls are
//! implemented. No code here is security-sensitive — the protocol's
//! secrecy rests on erasures, not on RNG quality — but the generator is
//! a full-period xoshiro256++, which is more than adequate for
//! simulation and coefficient drawing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::sample_standard(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full u128 span is impossible for <= 64-bit types.
                    unreachable!("span overflow");
                }
                let v = u128::sample_standard(rng) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniformly random value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public for in-tree hashing helpers).
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output (not an `Iterator`: infinite, never `None`).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // A xoshiro state of all zeros is a fixed point; perturb.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
