//! `thinaird` exit-code contract, end to end on the real binary.
//!
//! Usage errors (malformed flags, unknown options, missing values)
//! exit **2** with the usage text on stderr; runtime failures exit 1;
//! `--help` exits 0. Scripts and CI gates rely on the distinction —
//! a typo'd flag must not be mistaken for a failed round.

use std::process::{Command, Output};

fn thinaird(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_thinaird")).args(args).output().expect("spawn thinaird")
}

#[test]
fn malformed_numeric_flags_exit_2_with_usage() {
    // One representative numeric flag per subcommand family (the full
    // per-flag matrix is unit-tested against `parse_args` in the bin).
    let cases = [
        ["serve", "--max-sessions", "abc"],
        ["serve", "--workers", "4x"],
        ["serve", "--idle-ms", "-5"],
        ["bench-serve", "--seed", "1.5"],
        ["bench-serve", "--max-p99-ms", "abc"],
        ["explore", "--depth", "deep"],
        ["explore", "--terminals", ""],
        ["explore", "--seed-range", "9..3"],
    ];
    for case in &cases {
        let out = thinaird(case);
        assert_eq!(out.status.code(), Some(2), "{case:?} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("bad "), "{case:?}: diagnostic missing: {err}");
        assert!(err.contains("USAGE"), "{case:?}: usage text missing");
    }
}

#[test]
fn missing_value_and_unknown_option_exit_2() {
    let dangling = thinaird(&["serve", "--max-sessions"]);
    assert_eq!(dangling.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&dangling.stderr).contains("missing value"));

    let unknown = thinaird(&["serve", "--bogus"]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("unknown option"));
}

#[test]
fn runtime_failures_still_exit_1() {
    // Parses fine, then fails in run_serve: node 0 is the coordinator
    // id, and serve runs terminals. No socket is ever bound.
    let out = thinaird(&["serve", "--node", "0", "--peers", "127.0.0.1:7610,127.0.0.1:7611"]);
    assert_eq!(out.status.code(), Some(1), "runtime errors keep exiting 1");
}

#[test]
fn help_exits_0() {
    let out = thinaird(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
