//! The determinism contract of the explore artifact: the same specs
//! must render a byte-identical `BENCH_explore.json` modulo the one
//! timing-class field (`wall_ms`), which `render_explore_json(_, false)`
//! excludes — the same pattern `soak_determinism.rs` pins for
//! `BENCH_soak.json`.
//!
//! This is the load-bearing property of the explorer: executions run
//! under the virtual clock with a stepped transport, so the schedule
//! tree, the behavior fingerprints, every prune decision, and — when a
//! bug is planted — the shrunk counterexample are pure functions of
//! the spec. A flaky explorer could not serve as a regression gate.

use thinair_scenario::{
    explore_bug_spec, explore_smoke_spec, render_explore_json, run_explore_specs, ExploreResult,
    ExploreSpec,
};

fn sweep() -> Vec<ExploreSpec> {
    // One clean exhaustive cell (kept shallow so debug builds stay
    // fast) and one seeded-bug cell that must find and shrink a
    // violation.
    vec![ExploreSpec { depth: 10, ..explore_smoke_spec(5) }, explore_bug_spec(5)]
}

fn explore_once(specs: &[ExploreSpec]) -> Vec<ExploreResult> {
    run_explore_specs(specs)
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("every exploration completes")
}

#[test]
fn same_specs_render_byte_identical_explore_json() {
    let specs = sweep();
    let first = explore_once(&specs);
    let second = explore_once(&specs);
    assert_eq!(
        render_explore_json(&first, false),
        render_explore_json(&second, false),
        "deterministic explore render must be byte-identical across runs"
    );
    // The sweep must exercise both outcome classes.
    let clean = &first[0];
    assert!(clean.exhausted, "the clean cell must enumerate its whole tree");
    assert!(clean.violations.is_empty(), "clean cell must not violate");
    assert!(clean.distinct_schedules > 100, "the cell must actually branch");
    let buggy = &first[1];
    assert!(!buggy.violations.is_empty(), "the seeded bug must surface");
    // The shrinker's output is part of the contract too — the minimal
    // trace and its renderings, not just the counts. The telemetry
    // trace's `ts_us` stamps are timing-class (the virtual clock is
    // anchored at launch wall time); the event *sequence* is not.
    let (a, b) = (&buggy.violations[0], &second[1].violations[0]);
    assert_eq!(a.explanation, b.explanation, "shrunk explanation must be replayable");
    assert_eq!(
        strip_ts(&a.trace_jsonl),
        strip_ts(&b.trace_jsonl),
        "telemetry trace must be byte-identical modulo ts_us"
    );
}

/// Drops the leading `"ts_us": N` field from every trace line.
fn strip_ts(jsonl: &str) -> String {
    jsonl
        .lines()
        .map(|l| match l.find(", \"session\"") {
            Some(i) => format!("{{{}", &l[i + 2..]),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn timing_fields_are_separable_from_the_explore_contract() {
    let results = explore_once(&[ExploreSpec { depth: 8, ..explore_smoke_spec(2) }]);
    let with = render_explore_json(&results, true);
    let without = render_explore_json(&results, false);
    assert!(with.contains("wall_ms"), "wall_ms missing from timing render");
    assert!(!without.contains("wall_ms"), "wall_ms leaked into deterministic render");
    for field in [
        "executions",
        "distinct_schedules",
        "states_visited",
        "por_pruned",
        "fp_pruned",
        "reduction_factor",
        "exhausted",
        "violations",
        "counterexamples",
    ] {
        assert!(without.contains(field), "deterministic render missing {field}");
    }
}

#[test]
fn a_different_seed_changes_the_exploration() {
    let a = explore_once(&[ExploreSpec { depth: 8, ..explore_smoke_spec(2) }]);
    let b = explore_once(&[ExploreSpec { depth: 8, ..explore_smoke_spec(3) }]);
    assert_ne!(render_explore_json(&a, false), render_explore_json(&b, false));
}
