//! The pinned golden scenario: one config whose measured efficiency must
//! track the closed-form model's prediction.
//!
//! The config deliberately matches the model's Figure-1 assumptions as
//! closely as a finite run can: symmetric iid erasures at `p = 0.5`, Eve
//! on the same channel, and the `FixedFraction(p)` estimator ("Alice
//! guesses exactly the number of x-packets ... missed by Eve"). The
//! remaining gap to the fluid-limit optimum is finite-`N` concentration
//! plus construction conservatism (support floor/slack); empirically it
//! sits near 8% at `N = 200`, so the **documented tolerance is 15%
//! relative**: `|measured − predicted| ≤ 0.15 · predicted`. The run is
//! fully deterministic, so the tolerance absorbs model error, not noise.

use thinair_scenario::{golden_spec, run_scenario, ScenarioResult};

/// Relative tolerance between measured and model-predicted efficiency.
const TOLERANCE: f64 = 0.15;

fn golden_run() -> ScenarioResult {
    run_scenario(&golden_spec()).expect("golden scenario completes")
}

#[test]
fn golden_scenario_matches_model_prediction_within_tolerance() {
    let r = golden_run();
    let measured = r.measured_efficiency();
    let predicted = r.prediction.group_efficiency;
    assert!(predicted > 0.0);
    let rel = (measured - predicted).abs() / predicted;
    assert!(
        rel <= TOLERANCE,
        "measured {measured:.4} vs predicted {predicted:.4}: {:.1}% off (tolerance {:.0}%)",
        rel * 100.0,
        TOLERANCE * 100.0
    );
}

#[test]
fn golden_scenario_exact_pin() {
    // Regression pin of the deterministic measurement (recorded via
    // `examples/golden_probe.rs`). A diff here means protocol behavior
    // changed — intentional changes must re-record these values AND
    // re-check the tolerance above still holds.
    let r = golden_run();
    let lm: Vec<(usize, usize)> = r.per_session.iter().map(|s| (s.l, s.m)).collect();
    assert_eq!(lm, vec![(45, 67), (42, 64), (46, 72), (48, 67)]);
    assert_eq!(r.secret_bits, 23_168);
}

#[test]
fn golden_secret_stays_mostly_secret() {
    // Ground truth, not an estimate: Eve reconstructs under 20% of the
    // golden secrets (deterministic; empirically ~10%).
    let r = golden_run();
    assert!(
        r.mean_eve_reliability() > 0.8,
        "eve reliability collapsed: {}",
        r.mean_eve_reliability()
    );
}
