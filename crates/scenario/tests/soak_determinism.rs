//! The determinism contract of the soak artifact: the same specs +
//! seeds must render a byte-identical `BENCH_soak.json` modulo the
//! timing-class fields (`wall_ms`, `frames_sent`, `bits_transmitted`,
//! `faults_injected`), which `render_soak_json(_, false)` excludes —
//! the same pattern `BENCH_scenarios.json` pins in `determinism.rs`.
//!
//! This is the load-bearing property of the chaos layer: fault verdicts
//! are keyed by frame identity, crashes by protocol milestones, and
//! erasures by packet id, so *which* sessions agree, *which* abort (and
//! why), and every secret byte are pure functions of the spec.

use thinair_netsim::{CrashSpec, DelaySpec, FaultPlan};
use thinair_scenario::{render_soak_json, run_soak_specs, ScenarioSpec, SoakResult};

fn sweep() -> Vec<ScenarioSpec> {
    // A miniature fault grid: one survivable cell, one aborting cell.
    let base = ScenarioSpec {
        terminals: 3,
        x_packets: 30,
        payload_len: 8,
        sessions: 4,
        deadline_ms: 2_000,
        ..Default::default()
    };
    vec![
        ScenarioSpec {
            name: "chaos-survivable".into(),
            faults: FaultPlan {
                reorder: 0.25,
                duplicate: 0.25,
                delay: Some(DelaySpec { prob: 0.2, max_frames: 4 }),
                ..FaultPlan::none()
            },
            seed: 31,
            ..base.clone()
        },
        ScenarioSpec {
            name: "chaos-crash".into(),
            faults: FaultPlan {
                crash: Some(CrashSpec { prob: 0.5, node: None, after_seq: 1 }),
                ..FaultPlan::none()
            },
            seed: 32,
            ..base
        },
    ]
}

fn soak_once() -> Vec<SoakResult> {
    run_soak_specs(&sweep()).into_iter().collect::<Result<_, _>>().expect("every cell completes")
}

#[test]
fn same_specs_same_seed_render_byte_identical_soak_json() {
    let first = soak_once();
    let second = soak_once();
    assert_eq!(
        render_soak_json(&first, false),
        render_soak_json(&second, false),
        "deterministic soak render must be byte-identical across runs"
    );
    // The grid must exercise both outcome classes, and the invariant
    // must hold.
    let survivable = &first[0];
    assert_eq!(survivable.agreed, survivable.spec.sessions, "survivable cell agrees everywhere");
    let crashy = &first[1];
    assert!(crashy.aborted > 0, "crash cell must produce aborted sessions");
    assert_eq!(crashy.agreed + crashy.aborted, crashy.spec.sessions, "every session classified");
    for r in &first {
        assert_eq!(r.violations, 0, "{}: safety invariant violated", r.spec.name);
    }
    // Abort reasons are part of the deterministic contract — at both
    // granularities (node counts and sessions affected).
    assert!(!crashy.abort_reasons.is_empty());
    assert!(!crashy.abort_sessions.is_empty());
    assert!(crashy.abort_sessions.values().sum::<u32>() >= crashy.aborted);
}

#[test]
fn timing_fields_are_separable_from_the_soak_contract() {
    let results = soak_once();
    let with = render_soak_json(&results, true);
    let without = render_soak_json(&results, false);
    for field in ["wall_ms", "frames_sent", "bits_transmitted", "faults_injected"] {
        assert!(with.contains(field), "{field} missing from timing render");
        assert!(!without.contains(field), "{field} leaked into deterministic render");
    }
    for field in ["agreed", "aborted", "violations", "abort_reasons", "abort_sessions", "mean_l"] {
        assert!(without.contains(field), "deterministic render missing {field}");
    }
}

#[test]
fn a_different_fault_seed_reshuffles_the_schedule() {
    let specs = sweep();
    let reseeded: Vec<ScenarioSpec> =
        specs.iter().map(|s| ScenarioSpec { seed: s.seed ^ 0xBEEF, ..s.clone() }).collect();
    let a: Vec<_> = run_soak_specs(&specs).into_iter().collect::<Result<_, _>>().expect("baseline");
    let b: Vec<_> =
        run_soak_specs(&reseeded).into_iter().collect::<Result<_, _>>().expect("reseed");
    assert_ne!(render_soak_json(&a, false), render_soak_json(&b, false));
}
