//! The determinism contract of the scenario artifact: the same specs +
//! seeds must render a byte-identical `BENCH_scenarios.json`, modulo the
//! timing-class fields (`wall_ms`, `frames_sent`, `bits_transmitted`,
//! `z_sent`), which `render_json(_, false)` excludes.

use thinair_netsim::ErasureModel;
use thinair_scenario::{render_json, run_specs, ScenarioSpec};

fn sweep() -> Vec<ScenarioSpec> {
    // A miniature sweep spanning both erasure-model kinds and two
    // terminal counts — small enough for a debug-profile test run.
    let base = ScenarioSpec { x_packets: 40, payload_len: 8, sessions: 2, ..Default::default() };
    vec![
        ScenarioSpec {
            name: "iid".into(),
            terminals: 3,
            erasure: ErasureModel::Iid { p: 0.5 },
            seed: 21,
            ..base.clone()
        },
        ScenarioSpec {
            name: "burst".into(),
            terminals: 4,
            erasure: ErasureModel::GilbertElliott {
                p_good: 0.1,
                p_bad: 0.9,
                good_to_bad: 0.15,
                bad_to_good: 0.3,
            },
            seed: 22,
            ..base
        },
    ]
}

fn render_once() -> String {
    let specs = sweep();
    let results: Vec<_> =
        run_specs(&specs).into_iter().collect::<Result<_, _>>().expect("every scenario completes");
    render_json(&results, false)
}

#[test]
fn same_specs_same_seed_render_byte_identical_json() {
    let first = render_once();
    let second = render_once();
    assert_eq!(first, second, "deterministic render must be byte-identical across runs");
    // And the artifact carries the measurement story it promises.
    for field in
        ["measured_efficiency", "predicted_efficiency", "efficiency_ratio", "eve_reliability"]
    {
        assert!(first.contains(field), "artifact missing {field}");
    }
}

#[test]
fn different_seed_changes_the_measurement() {
    let specs = sweep();
    let reseeded: Vec<ScenarioSpec> =
        specs.iter().map(|s| ScenarioSpec { seed: s.seed ^ 0xDEAD_BEEF, ..s.clone() }).collect();
    let a: Vec<_> =
        run_specs(&specs).into_iter().collect::<Result<_, _>>().expect("baseline completes");
    let b: Vec<_> =
        run_specs(&reseeded).into_iter().collect::<Result<_, _>>().expect("reseed completes");
    // Erasure chains and payloads all re-derive from the seed, so at
    // least one measured quantity must move.
    assert_ne!(render_json(&a, false), render_json(&b, false));
}
