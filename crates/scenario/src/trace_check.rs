//! JSONL trace-schema validation: the consumer-side contract of
//! [`thinair_net::telemetry`]'s trace export.
//!
//! A trace file is one JSON object per line, flat (no nesting), with
//! the required fields `ts_us`, `session`, `node`, `event` on every
//! line plus the event-kind-specific tail
//! ([`thinair_net::TraceEvent::to_jsonl`] is the producer). The
//! validator re-parses every line with a hand-rolled scanner (the
//! offline build has no `serde_json`), checks the per-kind schema, and
//! checks the span property the serve acceptance cares about: every
//! `(session, node)` pair that appears in the trace carries a
//! `session_start` line — a session the daemon admitted but whose span
//! never opened is a violation.
//!
//! Missing `session_end` lines are *counted but not violations*: a
//! daemon stopped mid-session (or a ring overflow, reported by the
//! producer) legitimately truncates span tails, while a missing start
//! means the recorder itself is broken.

use std::collections::{BTreeMap, BTreeSet};

/// A scalar JSON value on a trace line (traces are flat by contract).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A JSON number (trace fields all fit f64's integer range).
    Num(f64),
    /// A JSON string, unescaped.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Bool(_) => "bool",
            JsonValue::Null => "null",
        }
    }
}

/// Parses one flat JSON object line into its fields. Rejects nested
/// objects/arrays (trace lines are flat by contract), trailing junk,
/// and malformed escapes.
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.value()?;
            out.insert(key, val);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                got => return Err(format!("expected ',' or '}}', got {got:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after object at offset {}", p.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            got => Err(format!("expected {:?}, got {got:?}", want as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
                        let hex = end
                            .and_then(|e| std::str::from_utf8(&self.bytes[self.pos..e]).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        self.pos += 4;
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                // Multi-byte UTF-8: copy the char through verbatim.
                Some(b) if b >= 0x80 => {
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
                Some(b) if b < 0x20 => return Err("raw control byte in string".into()),
                Some(b) => out.push(b as char),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{' | b'[') => Err("nested values are not allowed on trace lines".into()),
            Some(_) => {
                let start = self.pos;
                while matches!(self.peek(), Some(b) if !matches!(b, b',' | b'}' | b' ' | b'\t')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in number")?;
                text.parse::<f64>().map(JsonValue::Num).map_err(|_| format!("bad number {text:?}"))
            }
            None => Err("unexpected end of line".into()),
        }
    }

    fn literal(&mut self, word: &str, val: JsonValue) -> Result<JsonValue, String> {
        let end = self.pos + word.len();
        if self.bytes.len() >= end && &self.bytes[self.pos..end] == word.as_bytes() {
            self.pos = end;
            Ok(val)
        } else {
            Err(format!("bad literal (expected {word})"))
        }
    }
}

/// Aggregated validation result over one JSONL trace.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Non-empty lines examined.
    pub lines: usize,
    /// Lines that parsed and passed the schema.
    pub events: usize,
    /// Distinct session ids observed.
    pub sessions: usize,
    /// Event kind → line count.
    pub events_by_kind: BTreeMap<String, usize>,
    /// `(session, node)` spans with no `session_end` (truncation —
    /// informational, not a violation).
    pub spans_without_end: usize,
    /// Schema violations, capped at [`MAX_REPORTED_VIOLATIONS`]
    /// messages; `violation_count` has the true total.
    pub violations: Vec<String>,
    /// Total violations, including ones past the reporting cap.
    pub violation_count: usize,
}

/// Cap on individually-reported violation messages.
pub const MAX_REPORTED_VIOLATIONS: usize = 20;

impl TraceReport {
    /// Whether the trace is schema-valid (zero violations).
    pub fn ok(&self) -> bool {
        self.violation_count == 0
    }

    /// A one-line human summary.
    pub fn summary(&self) -> String {
        let kinds = self
            .events_by_kind
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "{} line(s), {} event(s), {} session(s), {} span(s) without end, {} violation(s) [{}]",
            self.lines,
            self.events,
            self.sessions,
            self.spans_without_end,
            self.violation_count,
            kinds
        )
    }

    fn violate(&mut self, msg: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_REPORTED_VIOLATIONS {
            self.violations.push(msg);
        }
    }
}

fn require<'a>(
    fields: &'a BTreeMap<String, JsonValue>,
    name: &str,
) -> Result<&'a JsonValue, String> {
    fields.get(name).ok_or_else(|| format!("missing required field {name:?}"))
}

fn require_num(fields: &BTreeMap<String, JsonValue>, name: &str) -> Result<f64, String> {
    match require(fields, name)? {
        JsonValue::Num(v) => Ok(*v),
        other => Err(format!("field {name:?} must be a number, got {}", other.type_name())),
    }
}

fn require_str<'a>(fields: &'a BTreeMap<String, JsonValue>, name: &str) -> Result<&'a str, String> {
    match require(fields, name)? {
        JsonValue::Str(s) => Ok(s),
        other => Err(format!("field {name:?} must be a string, got {}", other.type_name())),
    }
}

fn require_bool(fields: &BTreeMap<String, JsonValue>, name: &str) -> Result<bool, String> {
    match require(fields, name)? {
        JsonValue::Bool(b) => Ok(*b),
        other => Err(format!("field {name:?} must be a bool, got {}", other.type_name())),
    }
}

/// Per-kind tail schema on top of the required head fields.
fn check_kind(event: &str, fields: &BTreeMap<String, JsonValue>) -> Result<(), String> {
    match event {
        "session_start" => require_str(fields, "role").map(|_| ()),
        "phase" => require_str(fields, "phase").map(|_| ()),
        "retransmit" => {
            require_num(fields, "seq")?;
            require_num(fields, "attempt").map(|_| ())
        }
        "abort" => require_str(fields, "kind").map(|_| ()),
        "session_end" => {
            require_bool(fields, "completed")?;
            require_num(fields, "l").map(|_| ())
        }
        other => Err(format!("unknown event kind {other:?}")),
    }
}

/// Validates a whole JSONL trace (newline-separated; blank lines are
/// skipped). Checks, per line: it parses as a flat JSON object, the
/// required head fields `ts_us` / `session` / `node` / `event` are
/// present with the right types, and the kind-specific tail matches.
/// Checks, per `(session, node)` span: a `session_start` line exists.
pub fn check_trace(input: &str) -> TraceReport {
    let mut report = TraceReport::default();
    let mut started: BTreeSet<(u64, u8)> = BTreeSet::new();
    let mut ended: BTreeSet<(u64, u8)> = BTreeSet::new();
    let mut seen: BTreeSet<(u64, u8)> = BTreeSet::new();
    let mut session_ids: BTreeSet<u64> = BTreeSet::new();

    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        let checked = parse_flat_object(line).and_then(|fields| {
            require_num(&fields, "ts_us")?;
            let session = require_num(&fields, "session")? as u64;
            let node = require_num(&fields, "node")? as u8;
            let event = require_str(&fields, "event")?.to_string();
            check_kind(&event, &fields)?;
            Ok((session, node, event))
        });
        match checked {
            Ok((session, node, event)) => {
                report.events += 1;
                *report.events_by_kind.entry(event.clone()).or_insert(0) += 1;
                session_ids.insert(session);
                seen.insert((session, node));
                match event.as_str() {
                    "session_start" => {
                        started.insert((session, node));
                    }
                    "session_end" => {
                        ended.insert((session, node));
                    }
                    _ => {}
                }
            }
            Err(e) => report.violate(format!("line {}: {e}", lineno + 1)),
        }
    }

    report.sessions = session_ids.len();
    for &(session, node) in &seen {
        if !started.contains(&(session, node)) {
            report.violate(format!(
                "session {session:#x} node {node}: events without a session_start span"
            ));
        }
    }
    report.spans_without_end = seen.iter().filter(|k| !ended.contains(k)).count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinair_net::{TraceEvent, TraceKind};

    #[test]
    fn producer_lines_round_trip_through_the_validator() {
        let kinds = [
            TraceKind::SessionStart { role: "terminal" },
            TraceKind::Phase { phase: "z fountain" },
            TraceKind::Retransmit { seq: 5, attempt: 2 },
            TraceKind::Abort { kind: "deadline:\"x settle\"".into() },
            TraceKind::SessionEnd { completed: true, l: 3 },
        ];
        let trace: String = kinds
            .into_iter()
            .map(|kind| TraceEvent { ts_us: 1, session: 9, node: 2, kind }.to_jsonl() + "\n")
            .collect();
        let report = check_trace(&trace);
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.events, 5);
        assert_eq!(report.sessions, 1);
        assert_eq!(report.spans_without_end, 0);
        assert_eq!(report.events_by_kind["phase"], 1);
    }

    #[test]
    fn schema_violations_are_caught() {
        let bad = "\
{\"ts_us\": 1, \"session\": 2, \"node\": 0, \"event\": \"phase\"}
not json at all
{\"ts_us\": 1, \"session\": 2, \"node\": 0, \"event\": \"warp\"}
{\"session\": 2, \"node\": 0, \"event\": \"phase\", \"phase\": \"x settle\"}
{\"ts_us\": 1, \"session\": 2, \"node\": 0, \"event\": \"session_end\", \"completed\": \"yes\", \"l\": 0}
";
        let report = check_trace(bad);
        assert!(!report.ok());
        // Every line fails its own check: 1 lacks the phase tail, 2 is
        // not JSON, 3 has an unknown kind, 4 misses ts_us, 5 types
        // `completed` wrong. (No line passes, so no span is tracked.)
        assert_eq!(report.violation_count, 5, "got {:?}", report.violations);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn missing_end_is_informational_missing_start_is_not() {
        let truncated = "\
{\"ts_us\": 1, \"session\": 2, \"node\": 0, \"event\": \"session_start\", \"role\": \"terminal\"}
{\"ts_us\": 2, \"session\": 2, \"node\": 0, \"event\": \"phase\", \"phase\": \"x settle\"}
";
        let report = check_trace(truncated);
        assert!(report.ok(), "truncated tail must not violate: {:?}", report.violations);
        assert_eq!(report.spans_without_end, 1);

        let headless = "\
{\"ts_us\": 2, \"session\": 3, \"node\": 1, \"event\": \"phase\", \"phase\": \"x settle\"}
";
        assert!(!check_trace(headless).ok(), "span without start must violate");
    }

    #[test]
    fn parser_handles_escapes_and_rejects_nesting() {
        let obj = parse_flat_object(
            "{\"kind\": \"deadline:\\\"x\\\"\\u0021\", \"n\": -3.5, \"b\": false}",
        )
        .expect("parses");
        assert_eq!(obj["kind"], JsonValue::Str("deadline:\"x\"!".into()));
        assert_eq!(obj["n"], JsonValue::Num(-3.5));
        assert_eq!(obj["b"], JsonValue::Bool(false));
        assert!(parse_flat_object("{\"a\": {\"b\": 1}}").is_err());
        assert!(parse_flat_object("{\"a\": 1} trailing").is_err());
        assert!(parse_flat_object("{\"a\": 1").is_err());
    }
}
